//! The **Vertex–Edge (VE)** representation: a nested temporal relational
//! encoding with one distributed relation for vertices and one for edges
//! (§3, Figure 5).
//!
//! VE is compact (both relations are kept temporally coalesced) but stores
//! tuples in unordered collections, so it has no temporal locality by
//! default: the two states of *Bob* may land on different workers, and the
//! operators below re-establish co-location at runtime via shuffles.

use crate::common::{
    aggregate_group_history, coalesce_states, resolve_edge_states, resolve_vertex_states,
    window_reduce, State,
};
use std::sync::Arc;
use tgraph_core::coalesce::{coalesce_edges, coalesce_vertices};
use tgraph_core::graph::{EdgeId, EdgeRecord, TGraph, VertexId, VertexRecord};
use tgraph_core::props::Props;
use tgraph_core::time::Interval;
use tgraph_core::zoom::azoom::AZoomSpec;
use tgraph_core::zoom::wzoom::{window_relation, windows_of, WZoomSpec};
use tgraph_dataflow::{Dataset, KeyedDataset, Runtime};

/// A TGraph stored as two distributed temporal relations.
#[derive(Clone, Debug)]
pub struct VeGraph {
    /// The graph's recorded lifetime.
    pub lifespan: Interval,
    /// Vertex tuples `(vid, attributes, T)`.
    pub vertices: Dataset<VertexRecord>,
    /// Edge tuples `(eid, vid1, vid2, attributes, T)`; `vid1`/`vid2` are
    /// foreign keys into the vertex relation.
    pub edges: Dataset<EdgeRecord>,
    /// Whether the relations are known to be temporally coalesced. Tracked
    /// for the lazy-coalescing optimization of §4.
    pub coalesced: bool,
}

impl VeGraph {
    /// Loads a VE graph from the logical representation, partitioning both
    /// relations across the runtime.
    pub fn from_tgraph(rt: &Runtime, g: &TGraph) -> Self {
        Self::from_tgraph_at(rt, g, 0)
    }

    /// [`VeGraph::from_tgraph`] with the source lineage leaves stamped with
    /// the ingest epoch the records were loaded at (0 = base snapshot).
    pub fn from_tgraph_at(rt: &Runtime, g: &TGraph, epoch: u64) -> Self {
        VeGraph {
            lifespan: g.lifespan,
            vertices: Dataset::from_vec_tagged(rt, g.vertices.clone(), epoch),
            edges: Dataset::from_vec_tagged(rt, g.edges.clone(), epoch),
            coalesced: tgraph_core::coalesce::graph_is_coalesced(g),
        }
    }

    /// Materializes the logical graph (sorted deterministically).
    pub fn to_tgraph(&self, rt: &Runtime) -> TGraph {
        let mut vertices = self.vertices.collect(rt);
        let mut edges = self.edges.collect(rt);
        vertices.sort_by_key(|v| (v.vid, v.interval.start));
        edges.sort_by_key(|e| (e.eid, e.src, e.dst, e.interval.start));
        let mut g = TGraph {
            lifespan: self.lifespan,
            vertices,
            edges,
        };
        if g.lifespan.is_empty() {
            g = TGraph::from_records(g.vertices, g.edges);
        }
        g
    }

    /// Number of vertex tuples.
    pub fn vertex_tuple_count(&self, rt: &Runtime) -> usize {
        self.vertices.count(rt)
    }

    /// Number of edge tuples.
    pub fn edge_tuple_count(&self, rt: &Runtime) -> usize {
        self.edges.count(rt)
    }

    /// Temporally coalesces both relations using the partitioning method of
    /// §4: group by entity key (a shuffle), sort each group by start time,
    /// and fold value-equivalent adjacent tuples.
    pub fn coalesce(&self, rt: &Runtime) -> VeGraph {
        if self.coalesced {
            return self.clone();
        }
        let vertices = self
            .vertices
            .map(|v| (v.vid, (v.interval, v.props.clone())))
            .group_by_key(rt)
            .flat_map(|(vid, states)| {
                let vid = *vid;
                coalesce_states(states.clone())
                    .into_iter()
                    .map(move |(interval, props)| VertexRecord {
                        vid,
                        interval,
                        props,
                    })
                    .collect::<Vec<_>>()
            });
        let edges = self
            .edges
            .map(|e| ((e.eid, e.src, e.dst), (e.interval, e.props.clone())))
            .group_by_key(rt)
            .flat_map(|((eid, src, dst), states)| {
                let (eid, src, dst) = (*eid, *src, *dst);
                coalesce_states(states.clone())
                    .into_iter()
                    .map(move |(interval, props)| EdgeRecord {
                        eid,
                        src,
                        dst,
                        interval,
                        props,
                    })
                    .collect::<Vec<_>>()
            });
        VeGraph {
            lifespan: self.lifespan,
            vertices,
            edges,
            coalesced: true,
        }
    }

    /// `aZoom^T` over VE — Algorithm 2.
    ///
    /// Vertices are mapped through the Skolem function, grouped by new id (a
    /// shuffle re-establishing temporal locality per group), split on the
    /// group's temporal splitter, and aggregated per elementary interval.
    /// Edges are redirected by joining with the vertex relation on `vid1`
    /// and `vid2` (VE stores only foreign keys) and recomputing intervals.
    pub fn azoom(&self, rt: &Runtime, spec: &AZoomSpec) -> VeGraph {
        let spec_v = Arc::new(spec.clone());

        // --- Vertex aggregation (lines 1–12). ---
        let spec1 = Arc::clone(&spec_v);
        let grouped: Dataset<(u64, (Props, State))> = self.vertices.flat_map(move |v| {
            spec1
                .skolemize(v.vid, &v.props)
                .map(|(gid, base)| (gid, (base, (v.interval, v.props.clone()))))
                .into_iter()
                .collect::<Vec<_>>()
        });
        let spec2 = Arc::clone(&spec_v);
        let vertices: Dataset<VertexRecord> =
            grouped.group_by_key(rt).flat_map(move |(gid, members)| {
                let base = &members[0].0;
                let states: Vec<State> = members.iter().map(|(_, s)| s.clone()).collect();
                let vid = VertexId(*gid);
                aggregate_group_history(&spec2, base, &states)
                    .into_iter()
                    .map(move |(interval, props)| VertexRecord {
                        vid,
                        interval,
                        props,
                    })
                    .collect::<Vec<_>>()
            });

        // --- Edge redirection (lines 13–18): two joins on the vertex FK. ---
        let by_src: Dataset<(VertexId, EdgeRecord)> = self.edges.map(|e| (e.src, e.clone()));
        // The vertex relation is joined twice (src then dst redirection);
        // hash-partition it once so the second join elides its shuffle.
        let v_by_id: Dataset<(VertexId, VertexRecord)> =
            tgraph_dataflow::shuffle(rt, &self.vertices.map(|v| (v.vid, v.clone())));
        let spec3 = Arc::clone(&spec_v);
        let joined_src: Dataset<(VertexId, (EdgeRecord, (u64, Interval)))> =
            by_src.join(rt, &v_by_id).flat_map(move |(_, (e, v))| {
                // recomputeInterval part 1: clip to the src state's validity.
                match (
                    e.interval.intersect(&v.interval),
                    spec3.skolemize(v.vid, &v.props),
                ) {
                    (Some(iv), Some((gid, _))) => vec![(e.dst, (e.clone(), (gid, iv)))],
                    _ => vec![],
                }
            });
        let spec4 = Arc::clone(&spec_v);
        let edges: Dataset<EdgeRecord> =
            joined_src
                .join(rt, &v_by_id)
                .flat_map(move |(_, ((e, (gid1, iv1)), v2))| {
                    match (
                        iv1.intersect(&v2.interval),
                        spec4.skolemize(v2.vid, &v2.props),
                    ) {
                        (Some(interval), Some((gid2, _))) => vec![EdgeRecord {
                            eid: e.eid,
                            src: VertexId(*gid1),
                            dst: VertexId(gid2),
                            interval,
                            props: e.props.clone(),
                        }],
                        _ => vec![],
                    }
                });
        // Output of snapshot-wise evaluation is coalesced lazily; mark dirty.
        let out = VeGraph {
            lifespan: self.lifespan,
            vertices,
            edges,
            coalesced: false,
        };
        out.coalesce_edges_only(rt)
    }

    /// Edges produced by redirection may contain adjacent value-equivalent
    /// pieces (one per endpoint-state combination); vertices from
    /// `aggregate_group_history` are already coalesced per group. Coalescing
    /// the edge relation keeps the representation compact.
    fn coalesce_edges_only(&self, rt: &Runtime) -> VeGraph {
        let edges = self
            .edges
            .map(|e| ((e.eid, e.src, e.dst), (e.interval, e.props.clone())))
            .group_by_key(rt)
            .flat_map(|((eid, src, dst), states)| {
                let (eid, src, dst) = (*eid, *src, *dst);
                coalesce_states(states.clone())
                    .into_iter()
                    .map(move |(interval, props)| EdgeRecord {
                        eid,
                        src,
                        dst,
                        interval,
                        props,
                    })
                    .collect::<Vec<_>>()
            });
        VeGraph {
            lifespan: self.lifespan,
            vertices: self.vertices.clone(),
            edges,
            coalesced: true,
        }
    }

    /// `wZoom^T` over VE — Algorithm 5.
    ///
    /// Each tuple is joined with the window relation (computing one copy per
    /// overlapped window — the tuple-multiplication that makes small windows
    /// expensive for VE, §5.2), grouped by `(entity, window)`, gated by the
    /// quantifier threshold and resolved; dangling edges are removed with two
    /// semijoins when `r_v` is more restrictive than `r_e`.
    pub fn wzoom(&self, rt: &Runtime, spec: &WZoomSpec) -> VeGraph {
        // Correctness requires coalesced input (§3.2).
        let g = self.coalesce(rt);
        let change_points = {
            // Change points are only needed for `changes`-based windows.
            match spec.window {
                tgraph_core::zoom::wzoom::WindowSpec::Changes(_) => g.to_tgraph(rt).change_points(),
                _ => Vec::new(),
            }
        };
        let windows = Arc::new(window_relation(g.lifespan, &change_points, spec.window));
        if windows.is_empty() {
            return VeGraph {
                lifespan: g.lifespan,
                vertices: Dataset::empty(),
                edges: Dataset::empty(),
                coalesced: true,
            };
        }
        let lifespan = g.lifespan;
        let wspec = spec.window;
        let spec = Arc::new(spec.clone());

        // --- Vertex aggregation for new intervals (lines 3–9). ---
        let ws = Arc::clone(&windows);
        let aligned_v: Dataset<((usize, VertexId), State)> = g.vertices.flat_map(move |v| {
            let props = v.props.clone();
            let vid = v.vid;
            windows_of(v.interval, lifespan, &ws, wspec)
                .into_iter()
                .map(move |(idx, _w, covered)| ((idx, vid), (covered, props.clone())))
                .collect::<Vec<_>>()
        });
        let ws = Arc::clone(&windows);
        let spec_v = Arc::clone(&spec);
        let kept_vertices: Dataset<((usize, VertexId), VertexRecord)> = aligned_v
            .group_by_key(rt)
            .flat_map(move |((idx, vid), states)| {
                let window = ws[*idx];
                window_reduce(window, states.clone(), &spec_v.vertex_quantifier, |s| {
                    resolve_vertex_states(&spec_v, s)
                })
                .map(|props| {
                    (
                        (*idx, *vid),
                        VertexRecord {
                            vid: *vid,
                            interval: window,
                            props,
                        },
                    )
                })
                .into_iter()
                .collect::<Vec<_>>()
            });
        let vertices: Dataset<VertexRecord> = kept_vertices.map(|(_, v)| v.clone());

        // --- Edge aggregation (lines 10–16). ---
        let ws = Arc::clone(&windows);
        let aligned_e: Dataset<((usize, EdgeId, VertexId, VertexId), State)> =
            g.edges.flat_map(move |e| {
                let props = e.props.clone();
                let (eid, src, dst) = (e.eid, e.src, e.dst);
                windows_of(e.interval, lifespan, &ws, wspec)
                    .into_iter()
                    .map(move |(idx, _w, covered)| ((idx, eid, src, dst), (covered, props.clone())))
                    .collect::<Vec<_>>()
            });
        let ws = Arc::clone(&windows);
        let spec_e = Arc::clone(&spec);
        let edges: Dataset<((usize, VertexId), EdgeRecord)> =
            aligned_e
                .group_by_key(rt)
                .flat_map(move |((idx, eid, src, dst), states)| {
                    let window = ws[*idx];
                    window_reduce(window, states.clone(), &spec_e.edge_quantifier, |s| {
                        resolve_edge_states(&spec_e, s)
                    })
                    .map(|props| {
                        (
                            (*idx, *src),
                            EdgeRecord {
                                eid: *eid,
                                src: *src,
                                dst: *dst,
                                interval: window,
                                props,
                            },
                        )
                    })
                    .into_iter()
                    .collect::<Vec<_>>()
                });

        // --- Dangling-edge removal (lines 17–19): only when r_v > r_e. ---
        let edges: Dataset<EdgeRecord> = if spec.needs_dangling_check() {
            // Both semijoins key by the same retained-vertex set; partition
            // it once and the second semijoin's key-side shuffle is elided.
            let kept: Dataset<((usize, VertexId), ())> =
                tgraph_dataflow::shuffle(rt, &kept_vertices.map(|(k, _)| (*k, ())));
            let by_src = edges.semi_join(rt, &kept);
            let by_dst: Dataset<((usize, VertexId), EdgeRecord)> =
                by_src.map(|((idx, _), e)| ((*idx, e.dst), e.clone()));
            by_dst.semi_join(rt, &kept).map(|(_, e)| e.clone())
        } else {
            edges.map(|(_, e)| e.clone())
        };

        let lifespan = Interval::hull_of(&windows);
        let out = VeGraph {
            lifespan,
            vertices,
            edges,
            coalesced: false,
        };
        // Point semantics: the final result is coalesced.
        out.coalesce(rt)
    }
}

/// Rebuilds a [`VeGraph`] from already-collected records (used by loaders).
pub fn ve_from_records(
    rt: &Runtime,
    lifespan: Interval,
    vertices: Vec<VertexRecord>,
    edges: Vec<EdgeRecord>,
    coalesced: bool,
) -> VeGraph {
    // Loader-provided coalesced flags are trusted; verify in debug builds.
    debug_assert!(
        !coalesced
            || tgraph_core::coalesce::graph_is_coalesced(&TGraph {
                lifespan,
                vertices: vertices.clone(),
                edges: edges.clone()
            })
    );
    VeGraph {
        lifespan,
        vertices: Dataset::from_vec(rt, vertices),
        edges: Dataset::from_vec(rt, edges),
        coalesced,
    }
}

/// Convenience: coalesce a collected relation (used by tests).
pub fn coalesce_collected(rt: &Runtime, g: &VeGraph) -> TGraph {
    let t = g.to_tgraph(rt);
    TGraph {
        lifespan: t.lifespan,
        vertices: {
            let mut v = coalesce_vertices(t.vertices);
            v.sort_by_key(|x| (x.vid, x.interval.start));
            v
        },
        edges: {
            let mut e = coalesce_edges(t.edges);
            e.sort_by_key(|x| (x.eid, x.src, x.dst, x.interval.start));
            e
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tgraph_core::graph::figure1_graph_stable_ids;
    use tgraph_core::reference::{azoom_reference, wzoom_reference};
    use tgraph_core::zoom::azoom::AggSpec;
    use tgraph_core::zoom::wzoom::{Quantifier, ResolveFn};

    fn rt() -> Runtime {
        Runtime::with_partitions(4, 4)
    }

    fn school_spec() -> AZoomSpec {
        AZoomSpec::by_property("school", "school", vec![AggSpec::count("students")])
    }

    #[test]
    fn roundtrip_tgraph() {
        let rt = rt();
        let g = figure1_graph_stable_ids();
        let ve = VeGraph::from_tgraph(&rt, &g);
        assert!(ve.coalesced);
        let mut back = ve.to_tgraph(&rt);
        let mut orig = g.clone();
        orig.vertices.sort_by_key(|v| (v.vid, v.interval.start));
        orig.edges
            .sort_by_key(|e| (e.eid, e.src, e.dst, e.interval.start));
        back.vertices.sort_by_key(|v| (v.vid, v.interval.start));
        back.edges
            .sort_by_key(|e| (e.eid, e.src, e.dst, e.interval.start));
        assert_eq!(back.vertices, orig.vertices);
        assert_eq!(back.edges, orig.edges);
    }

    #[test]
    fn azoom_matches_reference_on_figure1() {
        let rt = rt();
        let g = figure1_graph_stable_ids();
        let expected = azoom_reference(&g, &school_spec());
        let got = coalesce_collected(
            &rt,
            &VeGraph::from_tgraph(&rt, &g).azoom(&rt, &school_spec()),
        );
        assert_eq!(got.vertices, expected.vertices);
        assert_eq!(got.edges, expected.edges);
    }

    #[test]
    fn wzoom_matches_reference_all_all() {
        let rt = rt();
        let g = figure1_graph_stable_ids();
        let spec = WZoomSpec::points(3, Quantifier::All, Quantifier::All)
            .with_vertex_override("school", ResolveFn::Last);
        let expected = wzoom_reference(&g, &spec);
        let got = coalesce_collected(&rt, &VeGraph::from_tgraph(&rt, &g).wzoom(&rt, &spec));
        assert_eq!(got.vertices, expected.vertices);
        assert_eq!(got.edges, expected.edges);
    }

    #[test]
    fn wzoom_matches_reference_exists_exists() {
        let rt = rt();
        let g = figure1_graph_stable_ids();
        let spec = WZoomSpec::points(3, Quantifier::Exists, Quantifier::Exists);
        let expected = wzoom_reference(&g, &spec);
        let got = coalesce_collected(&rt, &VeGraph::from_tgraph(&rt, &g).wzoom(&rt, &spec));
        assert_eq!(got.vertices, expected.vertices);
        assert_eq!(got.edges, expected.edges);
    }

    #[test]
    fn wzoom_dangling_removal_all_exists() {
        let rt = rt();
        let g = figure1_graph_stable_ids();
        let spec = WZoomSpec::points(3, Quantifier::All, Quantifier::Exists);
        let expected = wzoom_reference(&g, &spec);
        let got = coalesce_collected(&rt, &VeGraph::from_tgraph(&rt, &g).wzoom(&rt, &spec));
        assert_eq!(got.vertices, expected.vertices);
        assert_eq!(got.edges, expected.edges);
        assert!(tgraph_core::validate::validate(&got).is_empty());
    }

    #[test]
    fn coalesce_removes_fragmentation() {
        let rt = rt();
        let mut g = figure1_graph_stable_ids();
        // Fragment Cat into 8 pieces.
        let cat = g.vertices.remove(3);
        for t in 1..9 {
            let mut piece = cat.clone();
            piece.interval = Interval::new(t, t + 1);
            g.vertices.push(piece);
        }
        let ve = ve_from_records(&rt, g.lifespan, g.vertices.clone(), g.edges.clone(), false);
        assert_eq!(ve.vertex_tuple_count(&rt), 11);
        let c = ve.coalesce(&rt);
        assert_eq!(c.vertex_tuple_count(&rt), 4);
        assert!(c.coalesced);
    }
}
