//! Dataflow implementations of the selection/projection algebra operators
//! (`tgraph_core::algebra`) for each physical representation, so that
//! realistic pipelines (slice → select → zoom) stay distributed end to end.

use crate::og::{OgEdge, OgGraph, OgVertex};
use crate::rg::{RgGraph, RgSnapshot};
use crate::ve::VeGraph;
use std::sync::Arc;
use tgraph_core::algebra::Predicate;
use tgraph_core::graph::{EdgeRecord, VertexId, VertexRecord};
use tgraph_core::time::{intersect_interval_sets, merge_non_overlapping, Interval};
use tgraph_dataflow::{Dataset, KeyedDataset, Runtime};

impl VeGraph {
    /// Temporal subgraph over VE: filter both relations, then clip edges to
    /// their endpoints' surviving existence with two joins (VE has only
    /// foreign keys, so the endpoint intervals must be shipped).
    pub fn subgraph(
        &self,
        rt: &Runtime,
        vertex_pred: &Predicate,
        edge_pred: &Predicate,
    ) -> VeGraph {
        let vp = Arc::new(vertex_pred.clone());
        let ep = Arc::new(edge_pred.clone());
        let vertices = self.vertices.filter(move |v| vp.eval(&v.props));

        // Surviving existence periods per vertex.
        let alive: Dataset<(VertexId, Vec<Interval>)> = vertices
            .map(|v| (v.vid, v.interval))
            .group_by_key(rt)
            .map(|(vid, ivs)| (*vid, merge_non_overlapping(ivs.clone())));

        let filtered_edges = self.edges.filter(move |e| ep.eval(&e.props));
        let edges: Dataset<EdgeRecord> = filtered_edges
            .map(|e| (e.src, e.clone()))
            .join(rt, &alive)
            .flat_map(|(_, (e, src_alive))| {
                src_alive
                    .iter()
                    .filter_map(|iv| iv.intersect(&e.interval))
                    .map(|interval| {
                        (
                            e.dst,
                            EdgeRecord {
                                interval,
                                ..e.clone()
                            },
                        )
                    })
                    .collect::<Vec<_>>()
            })
            .join(rt, &alive)
            .flat_map(|(_, (e, dst_alive))| {
                dst_alive
                    .iter()
                    .filter_map(|iv| iv.intersect(&e.interval))
                    .map(|interval| EdgeRecord {
                        interval,
                        ..e.clone()
                    })
                    .collect::<Vec<_>>()
            });
        let out = VeGraph {
            lifespan: self.lifespan,
            vertices,
            edges,
            coalesced: false,
        };
        out.coalesce(rt)
    }

    /// Attribute projection over VE (keeps `type`), coalescing afterwards
    /// because states may become value-equivalent.
    pub fn project(&self, rt: &Runtime, vertex_keys: &[&str], edge_keys: &[&str]) -> VeGraph {
        let vk: Arc<Vec<String>> = Arc::new(vertex_keys.iter().map(|s| s.to_string()).collect());
        let ek: Arc<Vec<String>> = Arc::new(edge_keys.iter().map(|s| s.to_string()).collect());
        let vertices = self.vertices.map(move |v| {
            let keys: Vec<&str> = vk.iter().map(|s| s.as_str()).collect();
            VertexRecord {
                props: v.props.project(&keys),
                ..v.clone()
            }
        });
        let edges = self.edges.map(move |e| {
            let keys: Vec<&str> = ek.iter().map(|s| s.as_str()).collect();
            EdgeRecord {
                props: e.props.project(&keys),
                ..e.clone()
            }
        });
        VeGraph {
            lifespan: self.lifespan,
            vertices,
            edges,
            coalesced: false,
        }
        .coalesce(rt)
    }
}

impl RgGraph {
    /// Temporal subgraph over RG: entirely snapshot-local — filter each
    /// snapshot's vertices and edges and drop dangling edges in place.
    pub fn subgraph(
        &self,
        _rt: &Runtime,
        vertex_pred: &Predicate,
        edge_pred: &Predicate,
    ) -> RgGraph {
        let vp = Arc::new(vertex_pred.clone());
        let ep = Arc::new(edge_pred.clone());
        let snapshots = self.snapshots.map(move |s| {
            let vertices: Vec<_> = s
                .vertices
                .iter()
                .filter(|(_, props)| vp.eval(props))
                .cloned()
                .collect();
            let present: std::collections::HashSet<VertexId> =
                vertices.iter().map(|(v, _)| *v).collect();
            let edges: Vec<_> = s
                .edges
                .iter()
                .filter(|(_, src, dst, props)| {
                    ep.eval(props) && present.contains(src) && present.contains(dst)
                })
                .cloned()
                .collect();
            RgSnapshot {
                interval: s.interval,
                vertices,
                edges,
            }
        });
        RgGraph {
            lifespan: self.lifespan,
            snapshots,
        }
    }
}

impl OgGraph {
    /// Temporal subgraph over OG: history elements are filtered locally;
    /// edge clipping against surviving endpoints uses the endpoint copies
    /// each edge carries, so — like Algorithm 3 — no join is needed.
    pub fn subgraph(
        &self,
        _rt: &Runtime,
        vertex_pred: &Predicate,
        edge_pred: &Predicate,
    ) -> OgGraph {
        let vp = Arc::new(vertex_pred.clone());
        let vp2 = Arc::clone(&vp);
        let ep = Arc::new(edge_pred.clone());

        let vertices: Dataset<OgVertex> = self.vertices.flat_map(move |v| {
            let history: Vec<_> = v
                .history
                .iter()
                .filter(|(_, props)| vp.eval(props))
                .cloned()
                .collect();
            if history.is_empty() {
                Vec::new()
            } else {
                vec![OgVertex {
                    vid: v.vid,
                    history,
                }]
            }
        });

        let edges: Dataset<OgEdge> = self.edges.flat_map(move |e| {
            let filter_copy = |copy: &OgVertex| -> OgVertex {
                OgVertex {
                    vid: copy.vid,
                    history: copy
                        .history
                        .iter()
                        .filter(|(_, props)| vp2.eval(props))
                        .cloned()
                        .collect(),
                }
            };
            let src = filter_copy(&e.src);
            let dst = filter_copy(&e.dst);
            let joint = intersect_interval_sets(&src.existence(), &dst.existence());
            let history: Vec<_> = e
                .history
                .iter()
                .filter(|(_, props)| ep.eval(props))
                .flat_map(|(iv, props)| {
                    joint
                        .iter()
                        .filter_map(|j| j.intersect(iv))
                        .map(|clipped| (clipped, props.clone()))
                        .collect::<Vec<_>>()
                })
                .collect();
            let history = crate::common::coalesce_states(history);
            if history.is_empty() {
                Vec::new()
            } else {
                vec![OgEdge {
                    eid: e.eid,
                    src,
                    dst,
                    history,
                }]
            }
        });

        OgGraph {
            lifespan: self.lifespan,
            vertices,
            edges,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tgraph_core::algebra::subgraph as subgraph_reference;
    use tgraph_core::coalesce::coalesce_graph;
    use tgraph_core::graph::figure1_graph_stable_ids;
    use tgraph_core::validate::validate;

    fn rt() -> Runtime {
        Runtime::with_partitions(4, 4)
    }

    fn canon(g: &tgraph_core::TGraph) -> (Vec<VertexRecord>, Vec<EdgeRecord>) {
        let c = coalesce_graph(g);
        (c.vertices, c.edges)
    }

    #[test]
    fn ve_subgraph_matches_reference() {
        let rt = rt();
        let g = figure1_graph_stable_ids();
        for (vp, ep) in [
            (Predicate::has("school"), Predicate::True),
            (Predicate::eq("school", "MIT"), Predicate::True),
            (Predicate::True, Predicate::eq("type", "co-author")),
            (Predicate::eq("name", "Bob").negate(), Predicate::True),
        ] {
            let expected = canon(&subgraph_reference(&g, &vp, &ep));
            let got = canon(
                &VeGraph::from_tgraph(&rt, &g)
                    .subgraph(&rt, &vp, &ep)
                    .to_tgraph(&rt),
            );
            assert_eq!(got, expected, "vp={vp:?} ep={ep:?}");
        }
    }

    #[test]
    fn rg_subgraph_matches_reference() {
        let rt = rt();
        let g = figure1_graph_stable_ids();
        let vp = Predicate::has("school");
        let expected = canon(&subgraph_reference(&g, &vp, &Predicate::True));
        let got = canon(
            &RgGraph::from_tgraph(&rt, &g)
                .subgraph(&rt, &vp, &Predicate::True)
                .to_tgraph(&rt),
        );
        assert_eq!(got, expected);
    }

    #[test]
    fn og_subgraph_matches_reference() {
        let rt = rt();
        let g = figure1_graph_stable_ids();
        for vp in [
            Predicate::has("school"),
            Predicate::eq("school", "MIT"),
            Predicate::True,
        ] {
            let expected = canon(&subgraph_reference(&g, &vp, &Predicate::True));
            let got = canon(
                &OgGraph::from_tgraph(&rt, &g)
                    .subgraph(&rt, &vp, &Predicate::True)
                    .to_tgraph(&rt),
            );
            assert_eq!(got, expected, "vp={vp:?}");
        }
    }

    #[test]
    fn ve_project_coalesces_bob() {
        let rt = rt();
        let g = figure1_graph_stable_ids();
        let p = VeGraph::from_tgraph(&rt, &g).project(&rt, &["name"], &[]);
        let t = p.to_tgraph(&rt);
        assert!(validate(&t).is_empty());
        let bob: Vec<_> = t.vertices.iter().filter(|v| v.vid.0 == 2).collect();
        assert_eq!(bob.len(), 1, "states merged after projecting away school");
        assert_eq!(bob[0].interval, Interval::new(2, 9));
    }

    #[test]
    fn subgraph_then_zoom_pipeline() {
        // Select enrolled people, then zoom to schools: the MIT group no
        // longer contains schoolless Bob at any point.
        let rt = rt();
        let g = figure1_graph_stable_ids();
        let sub = VeGraph::from_tgraph(&rt, &g).subgraph(
            &rt,
            &Predicate::has("school"),
            &Predicate::True,
        );
        let spec = tgraph_core::zoom::AZoomSpec::by_property(
            "school",
            "school",
            vec![tgraph_core::zoom::AggSpec::count("students")],
        );
        let zoomed = sub.azoom(&rt, &spec).to_tgraph(&rt);
        let zoomed = coalesce_graph(&zoomed);
        assert!(validate(&zoomed).is_empty());
        assert_eq!(zoomed.distinct_vertex_count(), 2);
    }
}
