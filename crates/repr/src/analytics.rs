//! Pregel-style analytics over evolving graphs — the paper's stated future
//! work ("In our future work we will extend our system to support additional
//! operations on evolving graphs, such as Pregel-style analytics", §7),
//! implemented here over the same dataflow substrate.
//!
//! All three analytics follow point semantics like the zoom operators: the
//! non-temporal algorithm is evaluated over every snapshot (elementary
//! no-change interval), and per-snapshot results are coalesced into maximal
//! intervals. Computation is structured as iterated message passing
//! (`Pregel` supersteps) expressed with the dataflow engine's keyed
//! operators, with the snapshot id as part of every key so that all
//! snapshots advance in the same superstep wave.

use std::collections::HashMap;
use std::sync::Arc;
use tgraph_core::graph::{TGraph, VertexId, VertexRecord};
use tgraph_core::props::Props;
use tgraph_core::splitter::elementary_intervals;
use tgraph_core::time::{Interval, Time};
use tgraph_dataflow::{Dataset, KeyedDataset, Runtime};

/// A temporal vertex measure: for each vertex, maximal intervals with a
/// constant value.
pub type TemporalMeasure<V> = Vec<(VertexId, Interval, V)>;

/// Expands a TGraph into `(snapshot_start, src, dst)` adjacency facts plus
/// the snapshot intervals — the common preamble of all analytics.
fn snapshot_edges(g: &TGraph) -> (Vec<Interval>, Vec<(Time, VertexId, VertexId)>) {
    let intervals = elementary_intervals(&g.change_points());
    let index: HashMap<Time, usize> = intervals
        .iter()
        .enumerate()
        .map(|(i, iv)| (iv.start, i))
        .collect();
    let mut edges = Vec::new();
    for e in &g.edges {
        let mut t = e.interval.start;
        while t < e.interval.end {
            let i = index[&t];
            edges.push((intervals[i].start, e.src, e.dst));
            t = intervals[i].end;
        }
    }
    (intervals, edges)
}

/// Per-snapshot vertex presence facts `(snapshot_start, vid)`.
fn snapshot_vertices(g: &TGraph, intervals: &[Interval]) -> Vec<(Time, VertexId)> {
    let index: HashMap<Time, usize> = intervals
        .iter()
        .enumerate()
        .map(|(i, iv)| (iv.start, i))
        .collect();
    let mut out = Vec::new();
    for v in &g.vertices {
        let mut t = v.interval.start;
        while t < v.interval.end {
            let i = index[&t];
            out.push((intervals[i].start, v.vid));
            t = intervals[i].end;
        }
    }
    out.sort_unstable();
    out.dedup();
    out
}

fn coalesce_measure<V: Eq + Clone + Send + Sync + 'static>(
    intervals: &[Interval],
    per_snapshot: Vec<((Time, VertexId), V)>,
) -> TemporalMeasure<V> {
    let index: HashMap<Time, Interval> = intervals.iter().map(|iv| (iv.start, *iv)).collect();
    let mut by_vertex: HashMap<VertexId, Vec<(Interval, V)>> = HashMap::new();
    for ((start, vid), value) in per_snapshot {
        by_vertex
            .entry(vid)
            .or_default()
            .push((index[&start], value));
    }
    let mut out = Vec::new();
    for (vid, facts) in by_vertex {
        for (iv, v) in tgraph_core::coalesce::coalesce_group(facts) {
            out.push((vid, iv, v));
        }
    }
    out.sort_by_key(|(vid, iv, _)| (*vid, iv.start));
    out
}

/// Temporal degree: for every vertex, its (undirected) degree over time as
/// maximal constant intervals. Vertices present with degree zero are
/// reported with value `0`.
pub fn temporal_degree(rt: &Runtime, g: &TGraph) -> TemporalMeasure<u64> {
    let (intervals, edges) = snapshot_edges(g);
    let presence = snapshot_vertices(g, &intervals);

    let edge_ds: Dataset<(Time, VertexId, VertexId)> = Dataset::from_vec(rt, edges);
    let endpoint_counts: Dataset<((Time, VertexId), u64)> = edge_ds
        .flat_map(|(t, src, dst)| vec![((*t, *src), 1u64), ((*t, *dst), 1u64)])
        .reduce_by_key(rt, |a, b| a + b);

    let mut counts: HashMap<(Time, VertexId), u64> =
        endpoint_counts.collect(rt).into_iter().collect();
    let per_snapshot: Vec<((Time, VertexId), u64)> = presence
        .into_iter()
        .map(|(t, vid)| ((t, vid), counts.remove(&(t, vid)).unwrap_or(0)))
        .collect();
    coalesce_measure(&intervals, per_snapshot)
}

/// Temporal connected components (treating edges as undirected): for every
/// vertex, the id of its component over time, where a component is labelled
/// by its smallest member vertex id. Implemented as Pregel-style label
/// propagation run simultaneously over all snapshots: every superstep is one
/// `reduceByKey` + `join` wave keyed by `(snapshot, vertex)`.
pub fn temporal_connected_components(rt: &Runtime, g: &TGraph) -> TemporalMeasure<u64> {
    let (intervals, edges) = snapshot_edges(g);
    let presence = snapshot_vertices(g, &intervals);
    let n_snapshots = intervals.len().max(1);

    // labels: (snapshot, vid) -> current component label.
    let mut labels: Dataset<((Time, VertexId), u64)> = Dataset::from_vec(
        rt,
        presence
            .iter()
            .map(|(t, vid)| ((*t, *vid), vid.0))
            .collect(),
    );
    // Symmetric adjacency keyed by (snapshot, vertex). Hash-partitioned
    // once up front: every superstep's join then elides its shuffle of the
    // (static) adjacency side.
    let adjacency: Dataset<((Time, VertexId), VertexId)> = tgraph_dataflow::shuffle(
        rt,
        &Dataset::from_vec(
            rt,
            edges
                .iter()
                .flat_map(|(t, s, d)| [((*t, *s), *d), ((*t, *d), *s)])
                .collect(),
        ),
    );

    // Upper bound on supersteps: the longest path in any snapshot.
    let max_rounds = (presence.len() / n_snapshots + 2).max(8);
    for _ in 0..max_rounds {
        // Superstep: each vertex sends its label to its neighbors; every
        // vertex adopts the minimum of its own and received labels.
        let messages: Dataset<((Time, VertexId), u64)> = adjacency
            .join(rt, &labels)
            .map(|((t, _v), (neighbor, label))| ((*t, *neighbor), *label));
        let new_labels = labels.union(&messages).reduce_by_key(rt, |a, b| *a.min(b));
        // Convergence check: count label changes.
        let changed = new_labels
            .join(rt, &labels)
            .filter(|(_, (new, old))| new != old)
            .count(rt);
        labels = new_labels;
        if changed == 0 {
            break;
        }
    }

    coalesce_measure(&intervals, labels.collect(rt))
}

/// Temporal PageRank: `iterations` synchronous PageRank steps per snapshot
/// (damping 0.85, dangling mass redistributed uniformly), returning each
/// vertex's rank over time. Ranks are rounded to `1e-9` before coalescing so
/// adjacent snapshots with equal topology merge.
pub fn temporal_pagerank(rt: &Runtime, g: &TGraph, iterations: usize) -> TemporalMeasure<u64> {
    const DAMPING: f64 = 0.85;
    let (intervals, edges) = snapshot_edges(g);
    let presence = snapshot_vertices(g, &intervals);

    // Vertices per snapshot (for normalization).
    let mut snapshot_sizes: HashMap<Time, u64> = HashMap::new();
    for (t, _) in &presence {
        *snapshot_sizes.entry(*t).or_default() += 1;
    }
    let snapshot_sizes = Arc::new(snapshot_sizes);

    // Out-degrees per (snapshot, vertex). The edge relation is static across
    // iterations, so hash-partition it once; the per-iteration contribution
    // join then elides its edge-side shuffle.
    let edge_ds: Dataset<((Time, VertexId), VertexId)> = tgraph_dataflow::shuffle(
        rt,
        &Dataset::from_vec(rt, edges.iter().map(|(t, s, d)| ((*t, *s), *d)).collect()),
    );
    let out_degree: Dataset<((Time, VertexId), u64)> = edge_ds
        .map(|(k, _)| (*k, 1u64))
        .reduce_by_key(rt, |a, b| a + b);

    // Initial rank 1/N per snapshot, hash-partitioned so the first
    // iteration's join starts shuffle-free.
    let sizes = Arc::clone(&snapshot_sizes);
    let mut ranks: Dataset<((Time, VertexId), f64)> = tgraph_dataflow::shuffle(
        rt,
        &Dataset::from_vec(
            rt,
            presence
                .iter()
                .map(|(t, vid)| ((*t, *vid), 1.0 / sizes[t] as f64))
                .collect(),
        ),
    );

    // Presence is re-keyed by the same key every iteration to rebuild the
    // rank vector; partitioned once, the rebuild (map_values_with_key below)
    // keeps the tag, so no iteration ever shuffles it again.
    let presence_ds: Dataset<((Time, VertexId), ())> = tgraph_dataflow::shuffle(
        rt,
        &Dataset::from_vec(rt, presence.iter().map(|(t, v)| ((*t, *v), ())).collect()),
    );

    for _ in 0..iterations {
        // Contribution = rank / out_degree along each edge.
        let with_deg = ranks.join(rt, &out_degree);
        let contributions: Dataset<((Time, VertexId), f64)> = edge_ds
            .join(rt, &with_deg)
            .map(|((t, _src), (dst, (rank, deg)))| ((*t, *dst), rank / *deg as f64));
        let received = contributions.reduce_by_key(rt, |a, b| a + b);
        // Dangling mass per snapshot = 1 - sum of distributed rank.
        let mut distributed: HashMap<Time, f64> = HashMap::new();
        for ((t, _), (rank, _)) in with_deg.collect(rt) {
            *distributed.entry(t).or_default() += rank;
        }
        let sizes = Arc::clone(&snapshot_sizes);
        let received_map: HashMap<(Time, VertexId), f64> =
            received.collect(rt).into_iter().collect();
        let received_map = Arc::new(received_map);
        let distributed = Arc::new(distributed);
        ranks = presence_ds.map_values_with_key(move |(t, vid), ()| {
            let n = sizes[t] as f64;
            let dangling = (1.0 - distributed.get(t).copied().unwrap_or(0.0)).max(0.0) / n;
            let incoming = received_map.get(&(*t, *vid)).copied().unwrap_or(0.0);
            (1.0 - DAMPING) / n + DAMPING * (incoming + dangling)
        });
    }

    // Quantize for coalescing (f64 is not Eq).
    let quantized: Vec<((Time, VertexId), u64)> = ranks
        .collect(rt)
        .into_iter()
        .map(|(k, r)| (k, (r * 1e9).round() as u64))
        .collect();
    coalesce_measure(&intervals, quantized)
}

/// Renders a temporal measure back into a TGraph whose vertices carry the
/// measure as a property — so analytics compose with the zoom operators.
pub fn measure_as_tgraph(g: &TGraph, measure: &TemporalMeasure<u64>, key: &str) -> TGraph {
    let mut vertices: Vec<VertexRecord> = Vec::with_capacity(measure.len());
    // Look up the vertex's own props at each measure interval start.
    for (vid, interval, value) in measure {
        let props = g
            .vertices
            .iter()
            .find(|v| v.vid == *vid && v.interval.overlaps(interval))
            .map(|v| v.props.clone())
            .unwrap_or_else(|| Props::typed("node"));
        vertices.push(VertexRecord {
            vid: *vid,
            interval: *interval,
            props: props.with(key, *value as i64),
        });
    }
    TGraph {
        lifespan: g.lifespan,
        vertices,
        edges: g.edges.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tgraph_core::graph::{figure1_graph_stable_ids, EdgeRecord};

    fn rt() -> Runtime {
        Runtime::with_partitions(2, 3)
    }

    #[test]
    fn degree_of_running_example() {
        let rt = rt();
        let g = figure1_graph_stable_ids();
        let deg = temporal_degree(&rt, &g);
        // Ann: degree 0 during [1,2), 1 during [2,7) (edge e1).
        let ann: Vec<_> = deg.iter().filter(|(v, _, _)| v.0 == 1).collect();
        assert_eq!(
            ann,
            vec![
                &(VertexId(1), Interval::new(1, 2), 0),
                &(VertexId(1), Interval::new(2, 7), 1),
            ]
        );
        // Bob: 1 during [2,7) (e1), then 1 during [7,9) (e2) — coalesces.
        let bob: Vec<_> = deg.iter().filter(|(v, _, _)| v.0 == 2).collect();
        assert_eq!(bob, vec![&(VertexId(2), Interval::new(2, 9), 1)]);
    }

    #[test]
    fn degree_matches_per_point_bruteforce() {
        let rt = rt();
        let g = figure1_graph_stable_ids();
        let deg = temporal_degree(&rt, &g);
        for t in g.lifespan.points() {
            let snap = g.at(t);
            for vid in snap.vertices.keys() {
                let expect = snap
                    .edges
                    .values()
                    .filter(|(s, d, _)| s == vid || d == vid)
                    .count() as u64;
                let got = deg
                    .iter()
                    .find(|(v, iv, _)| v == vid && iv.contains(t))
                    .map(|(_, _, d)| *d);
                assert_eq!(got, Some(expect), "vertex {vid} at t={t}");
            }
        }
    }

    #[test]
    fn components_of_running_example() {
        let rt = rt();
        let g = figure1_graph_stable_ids();
        let cc = temporal_connected_components(&rt, &g);
        // At t=3: Ann-Bob connected (component 1), Cat alone (component 3).
        let label = |vid: u64, t: i64| {
            cc.iter()
                .find(|(v, iv, _)| v.0 == vid && iv.contains(t))
                .map(|(_, _, l)| *l)
        };
        assert_eq!(label(1, 3), Some(1));
        assert_eq!(label(2, 3), Some(1));
        assert_eq!(label(3, 3), Some(3));
        // At t=8: Bob-Cat connected (component 2), Ann gone.
        assert_eq!(label(2, 8), Some(2));
        assert_eq!(label(3, 8), Some(2));
        assert_eq!(label(1, 8), None);
        // At t=1: everyone isolated.
        assert_eq!(label(1, 1), Some(1));
        assert_eq!(label(3, 1), Some(3));
    }

    #[test]
    fn components_on_chain_converge() {
        // A path a-b-c-d within one snapshot must collapse to one component.
        let rt = rt();
        let life = Interval::new(0, 2);
        let vs = (1..=4u64)
            .map(|i| VertexRecord::new(i, life, Props::typed("n")))
            .collect();
        let es = vec![
            EdgeRecord::new(1, 1, 2, life, Props::typed("l")),
            EdgeRecord::new(2, 2, 3, life, Props::typed("l")),
            EdgeRecord::new(3, 3, 4, life, Props::typed("l")),
        ];
        let g = TGraph::from_records(vs, es);
        let cc = temporal_connected_components(&rt, &g);
        assert!(cc.iter().all(|(_, _, l)| *l == 1), "{cc:?}");
    }

    #[test]
    fn pagerank_sums_to_one_per_snapshot() {
        let rt = rt();
        let g = figure1_graph_stable_ids();
        let pr = temporal_pagerank(&rt, &g, 20);
        for t in g.lifespan.points() {
            let total: f64 = pr
                .iter()
                .filter(|(_, iv, _)| iv.contains(t))
                .map(|(_, _, r)| *r as f64 / 1e9)
                .sum();
            assert!((total - 1.0).abs() < 1e-6, "t={t}: total={total}");
        }
    }

    #[test]
    fn pagerank_favors_sinks() {
        // a -> c, b -> c in one snapshot: c must outrank a and b.
        let rt = rt();
        let life = Interval::new(0, 1);
        let vs = (1..=3u64)
            .map(|i| VertexRecord::new(i, life, Props::typed("n")))
            .collect();
        let es = vec![
            EdgeRecord::new(1, 1, 3, life, Props::typed("l")),
            EdgeRecord::new(2, 2, 3, life, Props::typed("l")),
        ];
        let g = TGraph::from_records(vs, es);
        let pr = temporal_pagerank(&rt, &g, 30);
        let rank = |vid: u64| pr.iter().find(|(v, _, _)| v.0 == vid).unwrap().2;
        assert!(rank(3) > rank(1));
        assert_eq!(rank(1), rank(2));
    }

    #[test]
    fn measure_composes_with_zoom() {
        // Degree as a property, then aZoom by degree: groups nodes by their
        // connectivity level over time.
        let rt = rt();
        let g = figure1_graph_stable_ids();
        let deg = temporal_degree(&rt, &g);
        let annotated = measure_as_tgraph(&g, &deg, "degree");
        assert!(tgraph_core::validate::validate(&annotated).is_empty());
        let spec = tgraph_core::zoom::AZoomSpec::by_property(
            "degree",
            "degree-class",
            vec![tgraph_core::zoom::AggSpec::count("n")],
        );
        let zoomed = tgraph_core::reference::azoom_reference(&annotated, &spec);
        assert!(zoomed.distinct_vertex_count() >= 1);
        assert!(tgraph_core::validate::validate(&zoomed).is_empty());
    }
}
