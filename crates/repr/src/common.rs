//! Helpers shared by the physical representations' operator plans.

use tgraph_core::coalesce::coalesce_group;
use tgraph_core::props::Props;
use tgraph_core::splitter::splitter;
use tgraph_core::time::Interval;
use tgraph_core::zoom::azoom::{AZoomSpec, AggAccumulator};
use tgraph_core::zoom::wzoom::WZoomSpec;

/// A temporal state: a validity interval plus the property assignment held
/// during it. The unit of history arrays (OG) and of per-window resolution.
pub type State = (Interval, Props);

/// Coalesces a list of states of one entity (merging value-equivalent
/// adjacent/overlapping intervals) and returns them sorted by start.
pub fn coalesce_states(states: Vec<State>) -> Vec<State> {
    coalesce_group(states)
}

/// Computes the zoomed history of one `aZoom^T` group node from its members'
/// states.
///
/// The members' intervals are split at every boundary (the temporal-splitter
/// technique of Algorithm 2); within each elementary interval the group
/// membership is constant, so the aggregation function is applied to the
/// members alive in it; finally value-equivalent adjacent intervals coalesce,
/// which is exactly the per-snapshot evaluation + coalescing that point
/// semantics prescribe.
pub fn aggregate_group_history(spec: &AZoomSpec, base: &Props, members: &[State]) -> Vec<State> {
    let splits = splitter(members.iter().map(|(iv, _)| iv));
    let mut out: Vec<State> = Vec::with_capacity(splits.len());
    for s in splits {
        let mut acc = AggAccumulator::new(spec.aggs.clone());
        let mut alive = false;
        for (iv, props) in members {
            if iv.overlaps(&s) {
                acc.update(props);
                alive = true;
            }
        }
        if alive {
            out.push((s, acc.finish(base.clone())));
        }
    }
    coalesce_states(out)
}

/// Applies the window quantifier + resolve step of `wZoom^T` to one entity's
/// states inside one window (`match_threshold` + `f_v`/`f_e` of Algorithms
/// 4–6 in a single call).
///
/// `states` hold the *window-clipped* intervals. Returns the representative
/// properties if the entity's total coverage of `window` satisfies `quant`.
pub fn window_reduce(
    window: Interval,
    states: Vec<State>,
    quant: &tgraph_core::zoom::wzoom::Quantifier,
    resolve: impl FnOnce(&[State]) -> Props,
) -> Option<Props> {
    // Coalesce first so coverage counts each time point once and resolve
    // functions see maximal states (correctness requires coalesced input,
    // §3.2).
    let states = coalesce_states(states);
    let covered: u64 = states.iter().map(|(iv, _)| iv.len()).sum();
    let r = covered as f64 / window.len() as f64;
    quant.satisfied(r).then(|| resolve(&states))
}

/// Vertex-side resolve honoring per-attribute overrides of the spec.
pub fn resolve_vertex_states(spec: &WZoomSpec, states: &[State]) -> Props {
    spec.resolve_vertex(states)
}

/// Edge-side resolve.
pub fn resolve_edge_states(spec: &WZoomSpec, states: &[State]) -> Props {
    spec.resolve_edge(states)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tgraph_core::zoom::azoom::AggSpec;
    use tgraph_core::zoom::wzoom::Quantifier;
    use tgraph_core::Value;

    #[test]
    fn group_history_counts_members_over_time() {
        // Two members: [1,7) and [1,9) → count 2 during [1,7), 1 during [7,9).
        let spec = AZoomSpec::by_property("school", "school", vec![AggSpec::count("students")]);
        let base = Props::typed("school").with("school", "MIT");
        let members = vec![
            (
                Interval::new(1, 7),
                Props::typed("person").with("school", "MIT"),
            ),
            (
                Interval::new(1, 9),
                Props::typed("person").with("school", "MIT"),
            ),
        ];
        let history = aggregate_group_history(&spec, &base, &members);
        assert_eq!(history.len(), 2);
        assert_eq!(history[0].0, Interval::new(1, 7));
        assert_eq!(history[0].1.get("students"), Some(&Value::Int(2)));
        assert_eq!(history[1].0, Interval::new(7, 9));
        assert_eq!(history[1].1.get("students"), Some(&Value::Int(1)));
    }

    #[test]
    fn group_history_coalesces_equal_counts() {
        // Members with a shared boundary but constant count coalesce.
        let spec = AZoomSpec::by_property("g", "group", vec![AggSpec::count("n")]);
        let base = Props::typed("group");
        let p = Props::typed("x").with("g", "a");
        let members = vec![
            (Interval::new(0, 4), p.clone()),
            (Interval::new(4, 8), p.clone()),
        ];
        let history = aggregate_group_history(&spec, &base, &members);
        assert_eq!(history, vec![(Interval::new(0, 8), base.with("n", 1i64))]);
    }

    #[test]
    fn window_reduce_quantifier_gate() {
        let w = Interval::new(0, 4);
        let p = Props::typed("x");
        let half = vec![(Interval::new(0, 2), p.clone())];
        assert!(window_reduce(w, half.clone(), &Quantifier::All, |s| s[0].1.clone()).is_none());
        assert!(window_reduce(w, half, &Quantifier::Exists, |s| s[0].1.clone()).is_some());
    }

    #[test]
    fn window_reduce_counts_overlap_once() {
        // Uncoalesced duplicate states must not double-count coverage.
        let w = Interval::new(0, 4);
        let p = Props::typed("x");
        let dup = vec![
            (Interval::new(0, 3), p.clone()),
            (Interval::new(1, 4), p.clone()),
        ];
        // Union covers the window fully → `all` passes.
        assert!(window_reduce(w, dup, &Quantifier::All, |s| s[0].1.clone()).is_some());
    }
}
