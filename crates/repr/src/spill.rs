//! [`Spill`] codecs for the physical-representation record types, so OG and
//! OGC datasets can cross governed shuffles and spill to disk runs when a
//! memory budget is in force. Exact roundtrip, matching the governor's
//! byte-identical-results contract.

use crate::og::{OgEdge, OgVertex};
use crate::ogc::{OgcEdge, OgcVertex};
use crate::rg::RgSnapshot;
use crate::triplets::Triplet;
use std::sync::Arc;
use tgraph_core::bitset::Bitset;
use tgraph_core::{EdgeId, Interval, Props, VertexId};
use tgraph_dataflow::{HeapSize, Spill, SpillError, SpillReader};

impl HeapSize for OgVertex {
    fn heap_bytes(&self) -> usize {
        self.history.heap_bytes()
    }
}

impl Spill for OgVertex {
    fn spill(&self, out: &mut Vec<u8>) {
        self.vid.spill(out);
        self.history.spill(out);
    }
    fn unspill(r: &mut SpillReader<'_>) -> Result<Self, SpillError> {
        Ok(OgVertex {
            vid: VertexId::unspill(r)?,
            history: Vec::<(Interval, Props)>::unspill(r)?,
        })
    }
}

impl HeapSize for OgEdge {
    fn heap_bytes(&self) -> usize {
        self.src.heap_bytes() + self.dst.heap_bytes() + self.history.heap_bytes()
    }
}

impl Spill for OgEdge {
    fn spill(&self, out: &mut Vec<u8>) {
        self.eid.spill(out);
        self.src.spill(out);
        self.dst.spill(out);
        self.history.spill(out);
    }
    fn unspill(r: &mut SpillReader<'_>) -> Result<Self, SpillError> {
        Ok(OgEdge {
            eid: EdgeId::unspill(r)?,
            src: OgVertex::unspill(r)?,
            dst: OgVertex::unspill(r)?,
            history: Vec::<(Interval, Props)>::unspill(r)?,
        })
    }
}

impl HeapSize for OgcVertex {
    fn heap_bytes(&self) -> usize {
        self.vtype.len() + self.intervals.heap_bytes()
    }
}

impl Spill for OgcVertex {
    fn spill(&self, out: &mut Vec<u8>) {
        self.vid.spill(out);
        self.vtype.spill(out);
        self.intervals.spill(out);
    }
    fn unspill(r: &mut SpillReader<'_>) -> Result<Self, SpillError> {
        Ok(OgcVertex {
            vid: VertexId::unspill(r)?,
            vtype: Arc::<str>::unspill(r)?,
            intervals: Bitset::unspill(r)?,
        })
    }
}

impl HeapSize for OgcEdge {
    fn heap_bytes(&self) -> usize {
        self.etype.len() + self.intervals.heap_bytes()
    }
}

impl Spill for OgcEdge {
    fn spill(&self, out: &mut Vec<u8>) {
        self.eid.spill(out);
        self.src.spill(out);
        self.dst.spill(out);
        self.etype.spill(out);
        self.intervals.spill(out);
    }
    fn unspill(r: &mut SpillReader<'_>) -> Result<Self, SpillError> {
        Ok(OgcEdge {
            eid: EdgeId::unspill(r)?,
            src: VertexId::unspill(r)?,
            dst: VertexId::unspill(r)?,
            etype: Arc::<str>::unspill(r)?,
            intervals: Bitset::unspill(r)?,
        })
    }
}

impl HeapSize for Triplet {
    fn heap_bytes(&self) -> usize {
        self.src.1.heap_bytes() + self.edge.heap_bytes() + self.dst.1.heap_bytes()
    }
}

impl Spill for Triplet {
    fn spill(&self, out: &mut Vec<u8>) {
        self.eid.spill(out);
        self.interval.spill(out);
        self.src.spill(out);
        self.edge.spill(out);
        self.dst.spill(out);
    }
    fn unspill(r: &mut SpillReader<'_>) -> Result<Self, SpillError> {
        Ok(Triplet {
            eid: EdgeId::unspill(r)?,
            interval: Interval::unspill(r)?,
            src: <(VertexId, Props)>::unspill(r)?,
            edge: Props::unspill(r)?,
            dst: <(VertexId, Props)>::unspill(r)?,
        })
    }
}

impl HeapSize for RgSnapshot {
    fn heap_bytes(&self) -> usize {
        self.vertices.heap_bytes() + self.edges.heap_bytes()
    }
}

impl Spill for RgSnapshot {
    fn spill(&self, out: &mut Vec<u8>) {
        self.interval.spill(out);
        self.vertices.spill(out);
        self.edges.spill(out);
    }
    fn unspill(r: &mut SpillReader<'_>) -> Result<Self, SpillError> {
        Ok(RgSnapshot {
            interval: Interval::unspill(r)?,
            vertices: Vec::<(VertexId, Props)>::unspill(r)?,
            edges: Vec::<(EdgeId, VertexId, VertexId, Props)>::unspill(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Spill + PartialEq + std::fmt::Debug>(x: &T) {
        let mut buf = Vec::new();
        x.spill(&mut buf);
        let mut r = SpillReader::new(&buf);
        let back = T::unspill(&mut r).expect("decode");
        assert_eq!(&back, x);
        assert_eq!(r.remaining(), 0, "codec must consume exactly its bytes");
    }

    #[test]
    fn og_records_roundtrip() {
        let v = OgVertex {
            vid: VertexId(7),
            history: vec![
                (Interval::new(0, 3), Props::typed("person")),
                (
                    Interval::new(5, 9),
                    Props::typed("person").with("age", 30i64),
                ),
            ],
        };
        roundtrip(&v);
        let e = OgEdge {
            eid: EdgeId(1),
            src: v.clone(),
            dst: OgVertex {
                vid: VertexId(8),
                history: vec![],
            },
            history: vec![(Interval::new(1, 2), Props::typed("knows"))],
        };
        roundtrip(&e);
        assert!(e.heap_bytes() > 0);
    }

    #[test]
    fn ogc_records_roundtrip() {
        let mut bits = Bitset::new(10);
        bits.set(2);
        bits.set(9);
        let v = OgcVertex {
            vid: VertexId(3),
            vtype: Arc::from("person"),
            intervals: bits.clone(),
        };
        roundtrip(&v);
        let e = OgcEdge {
            eid: EdgeId(4),
            src: VertexId(3),
            dst: VertexId(5),
            etype: Arc::from("knows"),
            intervals: bits,
        };
        roundtrip(&e);
    }
}
