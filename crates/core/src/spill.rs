//! [`Spill`] codecs for the core domain types, so datasets of vertex and
//! edge records can cross the dataflow engine's governed shuffles (and be
//! spilled to disk runs) when a memory budget is in force.
//!
//! The codecs are exact: `unspill(spill(x)) == x` bit-for-bit, matching the
//! governor's byte-identical-results contract. They are *not* the storage
//! crate's on-disk format — spill runs are transient per-exchange files,
//! free to use the simplest encoding that roundtrips.

use crate::bitset::Bitset;
use crate::graph::{EdgeId, EdgeRecord, VertexId, VertexRecord};
use crate::props::{Props, Value};
use crate::time::Interval;
use tgraph_dataflow::{HeapSize, Spill, SpillError, SpillReader};

fn corrupt(detail: impl Into<String>) -> SpillError {
    SpillError::Corrupt {
        detail: detail.into(),
    }
}

impl HeapSize for VertexId {}
impl Spill for VertexId {
    fn spill(&self, out: &mut Vec<u8>) {
        self.0.spill(out);
    }
    fn unspill(r: &mut SpillReader<'_>) -> Result<Self, SpillError> {
        Ok(VertexId(u64::unspill(r)?))
    }
}

impl HeapSize for EdgeId {}
impl Spill for EdgeId {
    fn spill(&self, out: &mut Vec<u8>) {
        self.0.spill(out);
    }
    fn unspill(r: &mut SpillReader<'_>) -> Result<Self, SpillError> {
        Ok(EdgeId(u64::unspill(r)?))
    }
}

impl HeapSize for Interval {}
impl Spill for Interval {
    fn spill(&self, out: &mut Vec<u8>) {
        self.start.spill(out);
        self.end.spill(out);
    }
    fn unspill(r: &mut SpillReader<'_>) -> Result<Self, SpillError> {
        let start = i64::unspill(r)?;
        let end = i64::unspill(r)?;
        if start > end {
            return Err(corrupt(format!("interval start {start} > end {end}")));
        }
        Ok(Interval { start, end })
    }
}

impl HeapSize for Value {
    fn heap_bytes(&self) -> usize {
        match self {
            Value::Str(s) => s.len(),
            _ => 0,
        }
    }
}

impl Spill for Value {
    fn spill(&self, out: &mut Vec<u8>) {
        match self {
            Value::Bool(b) => {
                out.push(0);
                b.spill(out);
            }
            Value::Int(v) => {
                out.push(1);
                v.spill(out);
            }
            Value::Float(v) => {
                out.push(2);
                v.spill(out);
            }
            Value::Str(s) => {
                out.push(3);
                s.spill(out);
            }
        }
    }
    fn unspill(r: &mut SpillReader<'_>) -> Result<Self, SpillError> {
        match r.u8()? {
            0 => Ok(Value::Bool(bool::unspill(r)?)),
            1 => Ok(Value::Int(i64::unspill(r)?)),
            2 => Ok(Value::Float(f64::unspill(r)?)),
            3 => Ok(Value::Str(std::sync::Arc::<str>::unspill(r)?)),
            t => Err(corrupt(format!("bad value tag {t}"))),
        }
    }
}

impl HeapSize for Props {
    fn heap_bytes(&self) -> usize {
        // The Arc'd pair slice plus each string payload. Shared Arcs are
        // counted once per holder — the charge model is an estimate of
        // residency, not an ownership proof.
        self.iter()
            .map(|(k, v)| {
                std::mem::size_of::<(crate::props::Key, Value)>() + k.len() + v.heap_bytes()
            })
            .sum()
    }
}

impl Spill for Props {
    fn spill(&self, out: &mut Vec<u8>) {
        (self.len() as u64).spill(out);
        for (k, v) in self.iter() {
            k.spill(out);
            v.spill(out);
        }
    }
    fn unspill(r: &mut SpillReader<'_>) -> Result<Self, SpillError> {
        // Each pair encodes at least a key length prefix (8) plus a value
        // tag (1).
        let n = r.len_prefix(9)?;
        let mut pairs = Vec::with_capacity(n);
        for _ in 0..n {
            let k = std::sync::Arc::<str>::unspill(r)?;
            let v = Value::unspill(r)?;
            pairs.push((k, v));
        }
        // `from_pairs` re-sorts and dedups; spilled sets are already sorted
        // and unique, so this is an identity rebuild.
        Ok(Props::from_pairs(pairs))
    }
}

impl HeapSize for VertexRecord {
    fn heap_bytes(&self) -> usize {
        self.props.heap_bytes()
    }
}

impl Spill for VertexRecord {
    fn spill(&self, out: &mut Vec<u8>) {
        self.vid.spill(out);
        self.interval.spill(out);
        self.props.spill(out);
    }
    fn unspill(r: &mut SpillReader<'_>) -> Result<Self, SpillError> {
        Ok(VertexRecord {
            vid: VertexId::unspill(r)?,
            interval: Interval::unspill(r)?,
            props: Props::unspill(r)?,
        })
    }
}

impl HeapSize for EdgeRecord {
    fn heap_bytes(&self) -> usize {
        self.props.heap_bytes()
    }
}

impl Spill for EdgeRecord {
    fn spill(&self, out: &mut Vec<u8>) {
        self.eid.spill(out);
        self.src.spill(out);
        self.dst.spill(out);
        self.interval.spill(out);
        self.props.spill(out);
    }
    fn unspill(r: &mut SpillReader<'_>) -> Result<Self, SpillError> {
        Ok(EdgeRecord {
            eid: EdgeId::unspill(r)?,
            src: VertexId::unspill(r)?,
            dst: VertexId::unspill(r)?,
            interval: Interval::unspill(r)?,
            props: Props::unspill(r)?,
        })
    }
}

impl HeapSize for Bitset {
    fn heap_bytes(&self) -> usize {
        std::mem::size_of_val(self.raw_words())
    }
}

impl Spill for Bitset {
    fn spill(&self, out: &mut Vec<u8>) {
        (self.len() as u64).spill(out);
        for w in self.raw_words() {
            w.spill(out);
        }
    }
    fn unspill(r: &mut SpillReader<'_>) -> Result<Self, SpillError> {
        let len = u64::unspill(r)? as usize;
        let n_words = len.div_ceil(64);
        if r.remaining() < n_words.saturating_mul(8) {
            return Err(corrupt(format!(
                "bitset of {len} bits needs {n_words} words, payload too short"
            )));
        }
        let mut words = Vec::with_capacity(n_words);
        for _ in 0..n_words {
            words.push(u64::unspill(r)?);
        }
        if !len.is_multiple_of(64) {
            if let Some(last) = words.last() {
                if last & !((1u64 << (len % 64)) - 1) != 0 {
                    return Err(corrupt("bitset tail bits beyond len are set"));
                }
            }
        }
        Ok(Bitset::from_raw(words, len))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Spill + PartialEq + std::fmt::Debug>(x: &T) {
        let mut buf = Vec::new();
        x.spill(&mut buf);
        let mut r = SpillReader::new(&buf);
        let back = T::unspill(&mut r).expect("decode");
        assert_eq!(&back, x);
        assert_eq!(r.remaining(), 0, "codec must consume exactly its bytes");
    }

    #[test]
    fn ids_and_intervals_roundtrip() {
        roundtrip(&VertexId(0));
        roundtrip(&VertexId(u64::MAX));
        roundtrip(&EdgeId(42));
        roundtrip(&Interval::new(3, 9));
        roundtrip(&Interval::empty());
    }

    #[test]
    fn bad_interval_is_rejected() {
        let mut buf = Vec::new();
        9i64.spill(&mut buf);
        3i64.spill(&mut buf);
        let err = Interval::unspill(&mut SpillReader::new(&buf)).unwrap_err();
        assert!(matches!(err, SpillError::Corrupt { .. }));
    }

    #[test]
    fn values_roundtrip_including_nan() {
        roundtrip(&Value::Bool(true));
        roundtrip(&Value::Int(-7));
        roundtrip(&Value::Float(f64::NAN)); // bit-pattern equality
        roundtrip(&Value::Float(-0.0));
        roundtrip(&Value::Str("héllo".into()));
    }

    #[test]
    fn props_and_records_roundtrip() {
        let props = Props::from_pairs::<&str, Value>([
            ("type", "person".into()),
            ("age", 30i64.into()),
            ("score", 2.5f64.into()),
        ]);
        roundtrip(&props);
        roundtrip(&Props::new());
        roundtrip(&VertexRecord::new(7, Interval::new(0, 10), props.clone()));
        roundtrip(&EdgeRecord::new(1, 2, 3, Interval::new(5, 6), props));
    }

    #[test]
    fn bitsets_roundtrip() {
        roundtrip(&Bitset::new(0));
        let mut b = Bitset::new(130);
        b.set(0);
        b.set(64);
        b.set(129);
        roundtrip(&b);
    }

    #[test]
    fn bitset_tail_bits_are_rejected() {
        let mut buf = Vec::new();
        3u64.spill(&mut buf); // 3 bits -> 1 word, only low 3 bits may be set
        0xFFu64.spill(&mut buf);
        let err = Bitset::unspill(&mut SpillReader::new(&buf)).unwrap_err();
        assert!(matches!(err, SpillError::Corrupt { .. }));
    }

    #[test]
    fn heap_bytes_follow_payloads() {
        assert_eq!(VertexId(1).heap_bytes(), 0);
        let p = Props::typed("person");
        assert!(p.heap_bytes() > 0);
        let v = VertexRecord::new(1, Interval::new(0, 1), p.clone());
        assert_eq!(v.heap_bytes(), p.heap_bytes());
    }
}
