//! Temporal splitters (alignment): deriving elementary non-overlapping
//! intervals from a set of interval boundaries.
//!
//! This is the "temporal splitter" concept of Dignös et al. (Temporal
//! Alignment, SIGMOD 2012) referenced by Algorithm 2: to evaluate a snapshot
//! operator over an interval-encoded relation, facts are split at every
//! boundary where *any* fact starts or ends, yielding sub-intervals within
//! which the relation is constant.

use crate::time::{Interval, Time};

/// Computes the elementary intervals induced by a set of boundary points.
///
/// Given sorted, deduplicated `boundaries` `t0 < t1 < … < tn`, the splitter
/// is `[t0,t1), [t1,t2), …, [tn-1,tn)`.
pub fn elementary_intervals(boundaries: &[Time]) -> Vec<Interval> {
    boundaries
        .windows(2)
        .map(|w| Interval::new(w[0], w[1]))
        .collect()
}

/// Computes the splitter of a set of intervals: the minimal set of elementary
/// intervals such that every input interval is a union of elementary ones.
pub fn splitter<'a>(intervals: impl IntoIterator<Item = &'a Interval>) -> Vec<Interval> {
    let mut boundaries: Vec<Time> = Vec::new();
    for iv in intervals {
        if !iv.is_empty() {
            boundaries.push(iv.start);
            boundaries.push(iv.end);
        }
    }
    boundaries.sort_unstable();
    boundaries.dedup();
    elementary_intervals(&boundaries)
}

/// Splits one interval along a sorted splitter, returning the elementary
/// sub-intervals it covers. Parts of `iv` outside the splitter's span are
/// returned unsplit at the fringes (they overlap no other fact, so they are
/// already elementary with respect to the relation).
pub fn align_to(iv: &Interval, splits: &[Interval]) -> Vec<Interval> {
    if iv.is_empty() {
        return Vec::new();
    }
    let mut out = Vec::new();
    let mut cursor = iv.start;
    for s in splits {
        if s.end <= cursor {
            continue;
        }
        if s.start >= iv.end {
            break;
        }
        if s.start > cursor {
            // Gap before this split (fringe): emit it unsplit.
            out.push(Interval::new(cursor, s.start.min(iv.end)));
            cursor = s.start.min(iv.end);
            if cursor >= iv.end {
                break;
            }
        }
        if let Some(x) = s.intersect(iv) {
            out.push(x);
            cursor = x.end;
        }
    }
    if cursor < iv.end {
        out.push(Interval::new(cursor, iv.end));
    }
    out
}

/// Aligns an interval to fixed-width temporal windows anchored at `origin`:
/// the `computeNewInterval` function of Algorithms 4–6.
///
/// Returns, for each window the interval overlaps, the pair
/// `(window_interval, covered_part)` where `covered_part = iv ∩ window`.
/// Window `d` spans `[origin + d·width, origin + (d+1)·width)`.
pub fn align_to_windows(iv: &Interval, origin: Time, width: u64) -> Vec<(Interval, Interval)> {
    assert!(width > 0, "window width must be positive");
    if iv.is_empty() {
        return Vec::new();
    }
    let w = width as i64;
    let first = (iv.start - origin).div_euclid(w);
    let last = (iv.end - 1 - origin).div_euclid(w);
    let mut out = Vec::with_capacity((last - first + 1) as usize);
    for d in first..=last {
        let window = Interval::new(origin + d * w, origin + (d + 1) * w);
        // Every window in `first..=last` overlaps `iv` by construction; a
        // non-overlap here would mean the index arithmetic drifted, and the
        // safe behaviour is to drop the window rather than panic.
        if let Some(covered) = iv.intersect(&window) {
            out.push((window, covered));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitter_of_figure1_vertices() {
        // Ann [1,7), Bob [2,5)+[5,9), Cat [1,9) → boundaries 1,2,5,7,9
        let ivs = [
            Interval::new(1, 7),
            Interval::new(2, 5),
            Interval::new(5, 9),
            Interval::new(1, 9),
        ];
        assert_eq!(
            splitter(&ivs),
            vec![
                Interval::new(1, 2),
                Interval::new(2, 5),
                Interval::new(5, 7),
                Interval::new(7, 9),
            ]
        );
    }

    #[test]
    fn splitter_of_empty_set() {
        assert!(splitter(&[]).is_empty());
        assert!(splitter(&[Interval::empty()]).is_empty());
    }

    #[test]
    fn splitter_of_single_interval() {
        assert_eq!(splitter(&[Interval::new(3, 8)]), vec![Interval::new(3, 8)]);
    }

    #[test]
    fn align_covers_input_exactly() {
        let splits = vec![
            Interval::new(1, 2),
            Interval::new(2, 5),
            Interval::new(5, 7),
            Interval::new(7, 9),
        ];
        let parts = align_to(&Interval::new(2, 7), &splits);
        assert_eq!(parts, vec![Interval::new(2, 5), Interval::new(5, 7)]);
        // Total points preserved.
        let total: u64 = parts.iter().map(|p| p.len()).sum();
        assert_eq!(total, Interval::new(2, 7).len());
    }

    #[test]
    fn align_handles_fringes_outside_splitter() {
        let splits = vec![Interval::new(3, 5)];
        let parts = align_to(&Interval::new(1, 8), &splits);
        assert_eq!(
            parts,
            vec![
                Interval::new(1, 3),
                Interval::new(3, 5),
                Interval::new(5, 8)
            ]
        );
    }

    #[test]
    fn align_empty_interval() {
        assert!(align_to(&Interval::empty(), &[Interval::new(0, 5)]).is_empty());
    }

    #[test]
    fn windows_of_running_example() {
        // Example 2.3: 3-month quarters over [1,10) anchored at 1.
        // Ann [1,7) covers W1=[1,4) fully and W2=[4,7) fully.
        let ann = align_to_windows(&Interval::new(1, 7), 1, 3);
        assert_eq!(
            ann,
            vec![
                (Interval::new(1, 4), Interval::new(1, 4)),
                (Interval::new(4, 7), Interval::new(4, 7)),
            ]
        );
        // Bob [2,9): partial W1, full W2, partial W3 ([7,9) of [7,10)).
        let bob = align_to_windows(&Interval::new(2, 9), 1, 3);
        assert_eq!(
            bob,
            vec![
                (Interval::new(1, 4), Interval::new(2, 4)),
                (Interval::new(4, 7), Interval::new(4, 7)),
                (Interval::new(7, 10), Interval::new(7, 9)),
            ]
        );
    }

    #[test]
    fn windows_with_negative_origin_offsets() {
        let parts = align_to_windows(&Interval::new(-5, 2), 0, 4);
        assert_eq!(
            parts,
            vec![
                (Interval::new(-8, -4), Interval::new(-5, -4)),
                (Interval::new(-4, 0), Interval::new(-4, 0)),
                (Interval::new(0, 4), Interval::new(0, 2)),
            ]
        );
    }

    #[test]
    #[should_panic(expected = "window width must be positive")]
    fn zero_width_window_panics() {
        let _ = align_to_windows(&Interval::new(0, 1), 0, 0);
    }

    #[test]
    fn elementary_from_boundaries() {
        assert_eq!(
            elementary_intervals(&[1, 4, 9]),
            vec![Interval::new(1, 4), Interval::new(4, 9)]
        );
        assert!(elementary_intervals(&[5]).is_empty());
        assert!(elementary_intervals(&[]).is_empty());
    }
}
