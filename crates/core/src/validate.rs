//! TGraph validity checking (Definition 2.1).
//!
//! A valid TGraph conceptually corresponds to a sequence of valid
//! conventional graphs. This imposes:
//!
//! 1. *Referential condition on ξ:* an edge can only exist at a time when
//!    both endpoints exist.
//! 2. *Property condition on λ:* a property can only take a value when the
//!    owning entity exists (trivially holds in our fact encoding).
//! 3. *Non-empty property sets:* every entity assigns a value to `type` at
//!    every point at which it exists.
//! 4. *Uniqueness:* an entity exists at most once at any time point — facts
//!    for the same id must not overlap.

use crate::graph::{EdgeId, TGraph, VertexId};
use crate::time::{merge_non_overlapping, Interval};
use std::collections::HashMap;
use std::fmt;

/// A violation of TGraph validity.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ValidityError {
    /// A vertex fact has an empty interval.
    EmptyVertexInterval(VertexId),
    /// An edge fact has an empty interval.
    EmptyEdgeInterval(EdgeId),
    /// Two facts for the same vertex overlap in time.
    OverlappingVertexFacts(VertexId, Interval, Interval),
    /// Two facts for the same edge overlap in time.
    OverlappingEdgeFacts(EdgeId, Interval, Interval),
    /// A vertex fact lacks the required `type` property.
    MissingVertexType(VertexId),
    /// An edge fact lacks the required `type` property.
    MissingEdgeType(EdgeId),
    /// An edge exists at a time when an endpoint does not (dangling edge).
    DanglingEdge {
        /// The offending edge.
        eid: EdgeId,
        /// The endpoint that is missing.
        endpoint: VertexId,
        /// The sub-interval during which the edge dangles.
        during: Interval,
    },
    /// A fact lies outside the graph's declared lifespan.
    OutsideLifespan(Interval),
}

impl fmt::Display for ValidityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidityError::EmptyVertexInterval(v) => {
                write!(f, "vertex {v} has a fact with an empty interval")
            }
            ValidityError::EmptyEdgeInterval(e) => {
                write!(f, "edge {e} has a fact with an empty interval")
            }
            ValidityError::OverlappingVertexFacts(v, a, b) => {
                write!(f, "vertex {v} has overlapping facts {a} and {b}")
            }
            ValidityError::OverlappingEdgeFacts(e, a, b) => {
                write!(f, "edge {e} has overlapping facts {a} and {b}")
            }
            ValidityError::MissingVertexType(v) => {
                write!(f, "vertex {v} lacks the required `type` property")
            }
            ValidityError::MissingEdgeType(e) => {
                write!(f, "edge {e} lacks the required `type` property")
            }
            ValidityError::DanglingEdge {
                eid,
                endpoint,
                during,
            } => {
                write!(
                    f,
                    "edge {eid} dangles: endpoint {endpoint} absent during {during}"
                )
            }
            ValidityError::OutsideLifespan(iv) => {
                write!(f, "fact interval {iv} lies outside the graph lifespan")
            }
        }
    }
}

impl std::error::Error for ValidityError {}

/// Validates a TGraph against Definition 2.1. Returns all violations found
/// (empty means valid).
pub fn validate(g: &TGraph) -> Vec<ValidityError> {
    let mut errors = Vec::new();

    // Per-vertex existence periods (for the referential check), while
    // checking interval sanity, type presence and uniqueness.
    let mut vertex_periods: HashMap<VertexId, Vec<Interval>> = HashMap::new();
    for v in &g.vertices {
        if v.interval.is_empty() {
            errors.push(ValidityError::EmptyVertexInterval(v.vid));
            continue;
        }
        if !g.lifespan.contains_interval(&v.interval) {
            errors.push(ValidityError::OutsideLifespan(v.interval));
        }
        if v.props.type_label().is_none() {
            errors.push(ValidityError::MissingVertexType(v.vid));
        }
        vertex_periods.entry(v.vid).or_default().push(v.interval);
    }
    for (vid, periods) in vertex_periods.iter_mut() {
        periods.sort_unstable();
        for w in periods.windows(2) {
            if w[0].overlaps(&w[1]) {
                errors.push(ValidityError::OverlappingVertexFacts(*vid, w[0], w[1]));
            }
        }
        // Collapse to disjoint existence periods for the dangling-edge check.
        *periods = merge_non_overlapping(periods.clone());
    }

    let mut edge_periods: HashMap<EdgeId, Vec<Interval>> = HashMap::new();
    for e in &g.edges {
        if e.interval.is_empty() {
            errors.push(ValidityError::EmptyEdgeInterval(e.eid));
            continue;
        }
        if !g.lifespan.contains_interval(&e.interval) {
            errors.push(ValidityError::OutsideLifespan(e.interval));
        }
        if e.props.type_label().is_none() {
            errors.push(ValidityError::MissingEdgeType(e.eid));
        }
        edge_periods.entry(e.eid).or_default().push(e.interval);

        // Referential condition: both endpoints must cover e.interval.
        for endpoint in [e.src, e.dst] {
            let covered = vertex_periods.get(&endpoint).cloned().unwrap_or_default();
            let mut uncovered = vec![e.interval];
            for p in &covered {
                uncovered = uncovered
                    .into_iter()
                    .flat_map(|u| subtract(&u, p))
                    .collect();
            }
            for gap in uncovered {
                errors.push(ValidityError::DanglingEdge {
                    eid: e.eid,
                    endpoint,
                    during: gap,
                });
            }
        }
    }
    for (eid, periods) in edge_periods.iter_mut() {
        periods.sort_unstable();
        for w in periods.windows(2) {
            if w[0].overlaps(&w[1]) {
                errors.push(ValidityError::OverlappingEdgeFacts(*eid, w[0], w[1]));
            }
        }
    }

    errors
}

/// Checks validity, returning `Err` with all violations if invalid.
pub fn check_valid(g: &TGraph) -> Result<(), Vec<ValidityError>> {
    let errors = validate(g);
    if errors.is_empty() {
        Ok(())
    } else {
        Err(errors)
    }
}

/// Point-wise interval subtraction `a \ b` (zero, one, or two pieces).
fn subtract(a: &Interval, b: &Interval) -> Vec<Interval> {
    match a.intersect(b) {
        None => vec![*a],
        Some(x) => {
            let mut out = Vec::new();
            if a.start < x.start {
                out.push(Interval::new(a.start, x.start));
            }
            if x.end < a.end {
                out.push(Interval::new(x.end, a.end));
            }
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{figure1_graph_stable_ids, EdgeRecord, VertexRecord};
    use crate::props::Props;

    #[test]
    fn figure1_is_valid() {
        assert_eq!(validate(&figure1_graph_stable_ids()), vec![]);
        assert!(check_valid(&figure1_graph_stable_ids()).is_ok());
    }

    #[test]
    fn detects_dangling_edge() {
        let mut g = figure1_graph_stable_ids();
        // Extend e1 past Ann's existence ([1,7)) to [2,8).
        g.edges[0].interval = Interval::new(2, 8);
        let errs = validate(&g);
        assert!(errs.iter().any(|e| matches!(
            e,
            ValidityError::DanglingEdge { endpoint: VertexId(1), during, .. }
                if *during == Interval::new(7, 8)
        )));
    }

    #[test]
    fn detects_edge_to_nonexistent_vertex() {
        let g = TGraph::from_records(
            vec![VertexRecord::new(1, Interval::new(0, 5), Props::typed("a"))],
            vec![EdgeRecord::new(
                1,
                1,
                99,
                Interval::new(0, 5),
                Props::typed("x"),
            )],
        );
        let errs = validate(&g);
        assert!(errs.iter().any(|e| matches!(
            e,
            ValidityError::DanglingEdge {
                endpoint: VertexId(99),
                ..
            }
        )));
    }

    #[test]
    fn detects_overlapping_vertex_facts() {
        let g = TGraph::from_records(
            vec![
                VertexRecord::new(1, Interval::new(0, 5), Props::typed("a")),
                VertexRecord::new(1, Interval::new(3, 8), Props::typed("b")),
            ],
            vec![],
        );
        let errs = validate(&g);
        assert!(errs
            .iter()
            .any(|e| matches!(e, ValidityError::OverlappingVertexFacts(VertexId(1), _, _))));
    }

    #[test]
    fn detects_missing_type() {
        let g = TGraph::from_records(
            vec![VertexRecord::new(
                1,
                Interval::new(0, 5),
                Props::from_pairs([("name", "x")]),
            )],
            vec![],
        );
        let errs = validate(&g);
        assert_eq!(errs, vec![ValidityError::MissingVertexType(VertexId(1))]);
    }

    #[test]
    fn detects_empty_interval() {
        let g = TGraph {
            lifespan: Interval::new(0, 10),
            vertices: vec![VertexRecord::new(1, Interval::empty(), Props::typed("a"))],
            edges: vec![],
        };
        assert_eq!(
            validate(&g),
            vec![ValidityError::EmptyVertexInterval(VertexId(1))]
        );
    }

    #[test]
    fn edge_covered_by_multiple_vertex_facts_is_fine() {
        // e1 spans Bob's two states [2,5)+[5,9); coverage is the union.
        let g = figure1_graph_stable_ids();
        assert!(validate(&g).is_empty());
    }

    #[test]
    fn subtract_pieces() {
        let a = Interval::new(0, 10);
        assert_eq!(
            subtract(&a, &Interval::new(3, 6)),
            vec![Interval::new(0, 3), Interval::new(6, 10)]
        );
        assert_eq!(subtract(&a, &Interval::new(0, 10)), vec![]);
        assert_eq!(subtract(&a, &Interval::new(20, 30)), vec![a]);
        assert_eq!(
            subtract(&a, &Interval::new(0, 4)),
            vec![Interval::new(4, 10)]
        );
    }

    #[test]
    fn fact_outside_lifespan_detected() {
        let g = TGraph {
            lifespan: Interval::new(0, 5),
            vertices: vec![VertexRecord::new(1, Interval::new(3, 8), Props::typed("a"))],
            edges: vec![],
        };
        let errs = validate(&g);
        assert!(errs
            .iter()
            .any(|e| matches!(e, ValidityError::OutsideLifespan(_))));
    }
}
