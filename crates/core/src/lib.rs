//! # tgraph-core
//!
//! The logical model of an **evolving property graph** (TGraph) and the
//! specifications of the two temporal **zoom operators** from
//! *"Zooming Out on an Evolving Graph"* (EDBT 2020):
//!
//! * [`zoom::AZoomSpec`] — temporal attribute-based zoom (`aZoom^T`), which
//!   changes *structural* resolution by creating nodes from groups of nodes
//!   (e.g. collapsing people into their schools, Figure 2 of the paper);
//! * [`zoom::WZoomSpec`] — temporal window-based zoom (`wZoom^T`), which
//!   changes *temporal* resolution by collapsing each entity's states within
//!   a window to one representative state (e.g. months into quarters,
//!   Figure 3 of the paper).
//!
//! A TGraph associates every node, edge and property value with periods of
//! validity over a discrete time domain, and operates under **point
//! semantics**: operator results are defined per time point and then
//! temporally [coalesced](coalesce) into maximal intervals.
//!
//! This crate contains everything representation-independent:
//!
//! | module | contents |
//! |---|---|
//! | [`time`] | time domain, closed-open [`Interval`]s, interval algebra |
//! | [`props`] | typed property values and immutable property sets |
//! | [`graph`] | vertex/edge facts, the logical [`TGraph`], snapshots |
//! | [`coalesce`] | temporal coalescing (the partitioning method of §4) |
//! | [`splitter`] | temporal alignment / splitters, window alignment |
//! | [`bitset`] | packed bitsets for the OGC representation |
//! | [`validate`] | Definition 2.1 validity checking |
//! | [`zoom`] | operator specifications (Skolem, aggregation, windows, quantifiers) |
//! | [`reference`](mod@reference) | literal point-semantics evaluators used as the testing oracle |
//!
//! The four physical representations (RG, VE, OG, OGC) and their dataflow
//! operator plans live in the `tgraph-repr` crate.
//!
//! ## Quick example
//!
//! ```
//! use tgraph_core::graph::figure1_graph_stable_ids;
//! use tgraph_core::reference::azoom_reference;
//! use tgraph_core::zoom::{AZoomSpec, AggSpec};
//!
//! // Zoom the paper's running example from people to schools (Figure 2).
//! let g = figure1_graph_stable_ids();
//! let spec = AZoomSpec::by_property("school", "school", vec![AggSpec::count("students")]);
//! let zoomed = azoom_reference(&g, &spec);
//! assert_eq!(zoomed.distinct_vertex_count(), 2); // MIT and CMU
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
// Dataflow operator signatures nest tuples and Arcs deeply by design.
#![allow(clippy::type_complexity)]

pub mod algebra;
pub mod bitset;
pub mod coalesce;
pub mod graph;
pub mod props;
pub mod reference;
pub mod spill;
pub mod splitter;
pub mod time;
pub mod validate;
pub mod zoom;

pub use graph::{EdgeId, EdgeRecord, StaticGraph, TGraph, VertexId, VertexRecord};
pub use props::{Key, Props, Value, TYPE_KEY};
pub use time::{Interval, Time};
