//! Property model: typed values and key–value property sets.
//!
//! As in the paper's property-graph foundation (Angles et al., adopted in
//! §2.1), every node and edge carries a set of key–value pairs. The set is
//! schemaless — it may differ between entities of the same type and for the
//! same entity over time. Every entity must assign a value to the property
//! `type` at every time point at which it exists.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// The required `type` property label carried by every node and edge.
pub const TYPE_KEY: &str = "type";

/// A property label (key). Cheap to clone; interned per graph in practice.
pub type Key = Arc<str>;

/// A property value.
///
/// `Float` values order and hash by their bit pattern so that `Props` can be
/// used as grouping/coalescing keys (value-equivalence must be decidable).
/// NaN therefore equals itself, which is the desired behaviour for grouping.
#[derive(Clone, Debug)]
pub enum Value {
    /// Boolean value.
    Bool(bool),
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit float, ordered and hashed by total order of its bit pattern.
    Float(f64),
    /// Immutable string, cheap to clone.
    Str(Arc<str>),
}

impl Value {
    /// Returns the integer payload if this is an `Int`.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// Returns the float payload, widening integers.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Float(v) => Some(*v),
            Value::Int(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// Returns the string payload if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the boolean payload if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Stable discriminant used for cross-variant ordering.
    fn tag(&self) -> u8 {
        match self {
            Value::Bool(_) => 0,
            Value::Int(_) => 1,
            Value::Float(_) => 2,
            Value::Str(_) => 3,
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Float(a), Value::Float(b)) => a.to_bits() == b.to_bits(),
            (Value::Str(a), Value::Str(b)) => a == b,
            _ => false,
        }
    }
}

impl Eq for Value {}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        state.write_u8(self.tag());
        match self {
            Value::Bool(b) => b.hash(state),
            Value::Int(v) => v.hash(state),
            Value::Float(v) => v.to_bits().hash(state),
            Value::Str(s) => s.hash(state),
        }
    }
}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        match (self, other) {
            (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            (Value::Float(a), Value::Float(b)) => a.total_cmp(b),
            (Value::Str(a), Value::Str(b)) => a.cmp(b),
            _ => self.tag().cmp(&other.tag()),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(v) => write!(f, "{v}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Str(s) => write!(f, "{s}"),
        }
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(Arc::from(v))
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(Arc::from(v))
    }
}
impl From<Arc<str>> for Value {
    fn from(v: Arc<str>) -> Self {
        Value::Str(v)
    }
}

/// An immutable property set: key–value pairs sorted by key.
///
/// Stored behind an `Arc` so that cloning a property set — which happens for
/// every tuple copy a dataflow shuffle makes — is a reference-count bump, the
/// same way Spark shares immutable row data between RDD lineage stages.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Props(Arc<[(Key, Value)]>);

impl Props {
    /// The empty property set. Note that a *valid* TGraph entity always has a
    /// non-empty property set containing at least `type` (§2.1); the empty
    /// set exists only as a builder starting point.
    pub fn new() -> Self {
        Props(Arc::from(Vec::new()))
    }

    /// Builds a property set from key–value pairs. Later duplicates win.
    pub fn from_pairs<K, V>(pairs: impl IntoIterator<Item = (K, V)>) -> Self
    where
        K: Into<Key>,
        V: Into<Value>,
    {
        let mut v: Vec<(Key, Value)> = pairs
            .into_iter()
            .map(|(k, val)| (k.into(), val.into()))
            .collect();
        v.sort_by(|a, b| a.0.cmp(&b.0));
        v.dedup_by(|a, b| {
            if a.0 == b.0 {
                // keep the later pair (currently in `b`'s slot after swap semantics)
                std::mem::swap(&mut a.1, &mut b.1);
                true
            } else {
                false
            }
        });
        Props(Arc::from(v))
    }

    /// Convenience constructor for an entity that only carries a type label.
    pub fn typed(type_label: &str) -> Self {
        Props::from_pairs([(TYPE_KEY, type_label)])
    }

    /// Looks up a property value by key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.0
            .binary_search_by(|(k, _)| k.as_ref().cmp(key))
            .ok()
            .map(|i| &self.0[i].1)
    }

    /// The required `type` label, if present.
    pub fn type_label(&self) -> Option<&str> {
        self.get(TYPE_KEY).and_then(Value::as_str)
    }

    /// Number of properties.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the property set is empty (invalid for a live entity).
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Iterates over `(key, value)` pairs in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&Key, &Value)> {
        self.0.iter().map(|(k, v)| (k, v))
    }

    /// Returns a new property set with `key` set to `value`.
    pub fn with(&self, key: impl Into<Key>, value: impl Into<Value>) -> Self {
        let key = key.into();
        let value = value.into();
        let mut v: Vec<(Key, Value)> = self.0.to_vec();
        match v.binary_search_by(|(k, _)| k.cmp(&key)) {
            Ok(i) => v[i].1 = value,
            Err(i) => v.insert(i, (key, value)),
        }
        Props(Arc::from(v))
    }

    /// Returns a new property set without `key`.
    pub fn without(&self, key: &str) -> Self {
        let v: Vec<(Key, Value)> = self
            .0
            .iter()
            .filter(|(k, _)| k.as_ref() != key)
            .cloned()
            .collect();
        Props(Arc::from(v))
    }

    /// Returns a new property set restricted to `keys` (preserving `type`).
    pub fn project(&self, keys: &[&str]) -> Self {
        let v: Vec<(Key, Value)> = self
            .0
            .iter()
            .filter(|(k, _)| k.as_ref() == TYPE_KEY || keys.contains(&k.as_ref()))
            .cloned()
            .collect();
        Props(Arc::from(v))
    }

    /// Merges `other` into `self`; keys in `other` win on conflict.
    pub fn merged_with(&self, other: &Props) -> Self {
        let mut v: Vec<(Key, Value)> = self.0.to_vec();
        for (k, val) in other.iter() {
            match v.binary_search_by(|(key, _)| key.cmp(k)) {
                Ok(i) => v[i].1 = val.clone(),
                Err(i) => v.insert(i, (k.clone(), val.clone())),
            }
        }
        Props(Arc::from(v))
    }
}

impl fmt::Debug for Props {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut map = f.debug_map();
        for (k, v) in self.iter() {
            map.entry(&k.as_ref(), &format_args!("{v}"));
        }
        map.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_pairs_sorts_and_dedups() {
        let p = Props::from_pairs([("b", 1i64), ("a", 2i64), ("b", 3i64)]);
        assert_eq!(p.len(), 2);
        assert_eq!(p.get("a"), Some(&Value::Int(2)));
        assert_eq!(p.get("b"), Some(&Value::Int(3)));
        let keys: Vec<&str> = p.iter().map(|(k, _)| k.as_ref()).collect();
        assert_eq!(keys, vec!["a", "b"]);
    }

    #[test]
    fn typed_constructor() {
        let p = Props::typed("person");
        assert_eq!(p.type_label(), Some("person"));
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn with_and_without() {
        let p = Props::typed("person").with("school", "MIT");
        assert_eq!(p.get("school").unwrap().as_str(), Some("MIT"));
        let q = p.with("school", "CMU");
        assert_eq!(q.get("school").unwrap().as_str(), Some("CMU"));
        assert_eq!(p.get("school").unwrap().as_str(), Some("MIT")); // immutable
        let r = q.without("school");
        assert!(r.get("school").is_none());
        assert_eq!(r.type_label(), Some("person"));
    }

    #[test]
    fn value_equivalence_is_structural() {
        let a = Props::from_pairs([("type", "person"), ("school", "MIT")]);
        let b = Props::typed("person").with("school", "MIT");
        assert_eq!(a, b);
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let mut ha = DefaultHasher::new();
        let mut hb = DefaultHasher::new();
        a.hash(&mut ha);
        b.hash(&mut hb);
        assert_eq!(ha.finish(), hb.finish());
    }

    #[test]
    fn float_values_equal_by_bits() {
        assert_eq!(Value::Float(f64::NAN), Value::Float(f64::NAN));
        assert_ne!(Value::Float(0.0), Value::Float(-0.0));
        assert_eq!(Value::Float(1.5), Value::Float(1.5));
    }

    #[test]
    fn cross_type_values_never_equal() {
        assert_ne!(Value::Int(1), Value::Float(1.0));
        assert_ne!(Value::Bool(true), Value::Int(1));
        assert_ne!(Value::Str(Arc::from("1")), Value::Int(1));
    }

    #[test]
    fn value_ordering_is_total() {
        let mut vals = [
            Value::Str(Arc::from("z")),
            Value::Int(3),
            Value::Bool(false),
            Value::Float(2.5),
            Value::Int(-1),
        ];
        vals.sort();
        assert_eq!(vals[0], Value::Bool(false));
        assert_eq!(vals[1], Value::Int(-1));
        assert_eq!(vals[2], Value::Int(3));
        assert_eq!(vals[3], Value::Float(2.5));
        assert_eq!(vals[4], Value::Str(Arc::from("z")));
    }

    #[test]
    fn project_keeps_type() {
        let p = Props::from_pairs::<&str, Value>([
            ("type", "person".into()),
            ("school", "MIT".into()),
            ("age", 30i64.into()),
        ]);
        let q = p.project(&["school"]);
        assert_eq!(q.len(), 2);
        assert_eq!(q.type_label(), Some("person"));
        assert!(q.get("age").is_none());
    }

    #[test]
    fn merged_with_overrides() {
        let p = Props::from_pairs::<&str, Value>([("type", "person".into()), ("a", 1i64.into())]);
        let q = Props::from_pairs([("a", 2i64), ("b", 3i64)]);
        let m = p.merged_with(&q);
        assert_eq!(m.get("a"), Some(&Value::Int(2)));
        assert_eq!(m.get("b"), Some(&Value::Int(3)));
        assert_eq!(m.type_label(), Some("person"));
    }

    #[test]
    fn numeric_widening() {
        assert_eq!(Value::Int(4).as_f64(), Some(4.0));
        assert_eq!(Value::Float(4.5).as_f64(), Some(4.5));
        assert_eq!(Value::Str(Arc::from("x")).as_f64(), None);
    }
}
