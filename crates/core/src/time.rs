//! The discrete, linearly ordered time domain `Ω^T` and closed-open intervals.
//!
//! Following the paper (§2.1) and the SQL:2011 standard, temporally adjacent
//! time points are represented by closed-open intervals `[start, end)`. An
//! interval is purely a syntactic device over a set of discrete consecutive
//! time points; all operator semantics are defined point-wise.

use std::fmt;

/// A discrete time point drawn from the linearly ordered domain `Ω^T`.
///
/// The unit is dataset-defined (e.g. months for WikiTalk/SNB, years for
/// NGrams). Storage encodes time points as 64-bit integers, mirroring the
/// paper's use of UNIX timestamps stored as `long` for Parquet pushdown.
pub type Time = i64;

/// A closed-open interval `[start, end)` over the discrete time domain.
///
/// Invariant: `start <= end`. An interval with `start == end` is *empty* and
/// represents no time points; the constructors in this module never produce
/// empty intervals unless explicitly asked to via [`Interval::empty`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Interval {
    /// First time point contained in the interval.
    pub start: Time,
    /// First time point *after* the interval (exclusive bound).
    pub end: Time,
}

impl Interval {
    /// Creates the interval `[start, end)`.
    ///
    /// # Panics
    /// Panics if `start > end`.
    #[inline]
    pub fn new(start: Time, end: Time) -> Self {
        assert!(
            start <= end,
            "invalid interval: start {start} must not exceed end {end}"
        );
        Interval { start, end }
    }

    /// The canonical empty interval `[0, 0)`.
    #[inline]
    pub fn empty() -> Self {
        Interval { start: 0, end: 0 }
    }

    /// The interval containing the single time point `t`, i.e. `[t, t+1)`.
    #[inline]
    pub fn point(t: Time) -> Self {
        Interval {
            start: t,
            end: t + 1,
        }
    }

    /// Number of time points contained in the interval.
    #[inline]
    pub fn len(&self) -> u64 {
        (self.end - self.start) as u64
    }

    /// Whether the interval contains no time points.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.start >= self.end
    }

    /// Whether time point `t` lies inside the interval.
    #[inline]
    pub fn contains(&self, t: Time) -> bool {
        self.start <= t && t < self.end
    }

    /// Whether `other` is fully contained in `self` (point-wise `⊆`).
    ///
    /// The empty interval is contained in every interval.
    #[inline]
    pub fn contains_interval(&self, other: &Interval) -> bool {
        other.is_empty() || (self.start <= other.start && other.end <= self.end)
    }

    /// Whether the two intervals share at least one time point.
    #[inline]
    pub fn overlaps(&self, other: &Interval) -> bool {
        self.start < other.end && other.start < self.end
    }

    /// Whether the two intervals are adjacent (`[a,b)` then `[b,c)`) in either order.
    #[inline]
    pub fn adjacent(&self, other: &Interval) -> bool {
        self.end == other.start || other.end == self.start
    }

    /// Whether the two intervals overlap or are adjacent, i.e. their union is
    /// a single interval. This is the merge condition used by temporal
    /// coalescing (§4).
    #[inline]
    pub fn mergeable(&self, other: &Interval) -> bool {
        self.start <= other.end && other.start <= self.end
    }

    /// Point-wise intersection. Returns `None` if the intervals are disjoint.
    #[inline]
    pub fn intersect(&self, other: &Interval) -> Option<Interval> {
        let start = self.start.max(other.start);
        let end = self.end.min(other.end);
        if start < end {
            Some(Interval { start, end })
        } else {
            None
        }
    }

    /// Union of two mergeable intervals.
    ///
    /// Returns `None` when the union would not be a single interval (a gap
    /// separates the operands).
    #[inline]
    pub fn merge(&self, other: &Interval) -> Option<Interval> {
        if self.is_empty() {
            return Some(*other);
        }
        if other.is_empty() {
            return Some(*self);
        }
        if self.mergeable(other) {
            Some(Interval {
                start: self.start.min(other.start),
                end: self.end.max(other.end),
            })
        } else {
            None
        }
    }

    /// Smallest interval covering both operands (may cover points in neither).
    #[inline]
    pub fn hull(&self, other: &Interval) -> Interval {
        if self.is_empty() {
            return *other;
        }
        if other.is_empty() {
            return *self;
        }
        Interval {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }

    /// Smallest interval covering every interval in `ivs`
    /// ([`Interval::empty`] for an empty slice).
    pub fn hull_of(ivs: &[Interval]) -> Interval {
        let mut it = ivs.iter();
        match it.next() {
            Some(first) => it.fold(*first, |acc, iv| acc.hull(iv)),
            None => Interval::empty(),
        }
    }

    /// Iterates over the individual time points of the interval.
    #[inline]
    pub fn points(&self) -> impl Iterator<Item = Time> {
        self.start..self.end
    }

    /// Fraction of `window` covered by `self ∩ window`, in `[0, 1]`.
    ///
    /// This is the ratio `r` the paper's existence quantifiers are evaluated
    /// against (§2.3, §3.2): the percentage of the time during which an entity
    /// existed relative to the duration of the window.
    #[inline]
    pub fn coverage_of(&self, window: &Interval) -> f64 {
        if window.is_empty() {
            return 0.0;
        }
        match self.intersect(window) {
            Some(i) => i.len() as f64 / window.len() as f64,
            None => 0.0,
        }
    }
}

impl Default for Interval {
    /// The empty interval `[0, 0)`.
    fn default() -> Self {
        Interval::empty()
    }
}

impl fmt::Debug for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {})", self.start, self.end)
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {})", self.start, self.end)
    }
}

/// Computes the total number of time points covered by a set of
/// non-overlapping intervals.
pub fn total_points<'a>(intervals: impl IntoIterator<Item = &'a Interval>) -> u64 {
    intervals.into_iter().map(|i| i.len()).sum()
}

/// Merges a set of intervals into the minimal sorted set of maximal
/// non-overlapping, non-adjacent intervals covering the same time points.
///
/// This is the `mergeNonOverlapping` fold used by Algorithm 2 (aZoom^T over
/// VE) to derive each new vertex's validity periods.
pub fn merge_non_overlapping(mut intervals: Vec<Interval>) -> Vec<Interval> {
    intervals.retain(|i| !i.is_empty());
    intervals.sort_unstable();
    let mut out: Vec<Interval> = Vec::with_capacity(intervals.len());
    for iv in intervals {
        match out.last_mut() {
            Some(last) if last.mergeable(&iv) => {
                last.end = last.end.max(iv.end);
            }
            _ => out.push(iv),
        }
    }
    out
}

/// Intersects two sorted lists of non-overlapping intervals point-wise.
///
/// Used for dangling-edge removal in OG's wZoom^T (Algorithm 6), where an
/// edge's history must be clipped to the intersection with each endpoint's
/// history.
pub fn intersect_interval_sets(a: &[Interval], b: &[Interval]) -> Vec<Interval> {
    let mut out = Vec::new();
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        if let Some(iv) = a[i].intersect(&b[j]) {
            out.push(iv);
        }
        if a[i].end <= b[j].end {
            i += 1;
        } else {
            j += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interval_basics() {
        let iv = Interval::new(1, 7);
        assert_eq!(iv.len(), 6);
        assert!(!iv.is_empty());
        assert!(iv.contains(1));
        assert!(iv.contains(6));
        assert!(!iv.contains(7));
        assert!(!iv.contains(0));
    }

    #[test]
    fn point_interval_has_one_time_point() {
        let iv = Interval::point(5);
        assert_eq!(iv, Interval::new(5, 6));
        assert_eq!(iv.len(), 1);
        assert!(iv.contains(5));
        assert!(!iv.contains(6));
    }

    #[test]
    #[should_panic(expected = "invalid interval")]
    fn reversed_interval_panics() {
        let _ = Interval::new(7, 1);
    }

    #[test]
    fn empty_interval() {
        let iv = Interval::empty();
        assert!(iv.is_empty());
        assert_eq!(iv.len(), 0);
        assert!(!iv.contains(0));
    }

    #[test]
    fn overlap_and_adjacency() {
        let a = Interval::new(1, 4);
        let b = Interval::new(4, 7);
        let c = Interval::new(3, 5);
        assert!(!a.overlaps(&b));
        assert!(a.adjacent(&b));
        assert!(a.mergeable(&b));
        assert!(a.overlaps(&c));
        assert!(c.overlaps(&b));
        let d = Interval::new(6, 9);
        assert!(!a.overlaps(&d));
        assert!(!a.adjacent(&d));
        assert!(!a.mergeable(&d));
    }

    #[test]
    fn intersection() {
        let a = Interval::new(1, 5);
        let b = Interval::new(3, 9);
        assert_eq!(a.intersect(&b), Some(Interval::new(3, 5)));
        assert_eq!(b.intersect(&a), Some(Interval::new(3, 5)));
        let c = Interval::new(5, 6);
        assert_eq!(a.intersect(&c), None); // adjacent, no shared point
    }

    #[test]
    fn merge_overlapping_and_adjacent() {
        let a = Interval::new(1, 4);
        assert_eq!(a.merge(&Interval::new(4, 7)), Some(Interval::new(1, 7)));
        assert_eq!(a.merge(&Interval::new(2, 3)), Some(Interval::new(1, 4)));
        assert_eq!(a.merge(&Interval::new(6, 8)), None);
        assert_eq!(a.merge(&Interval::empty()), Some(a));
    }

    #[test]
    fn hull_covers_gap() {
        let a = Interval::new(1, 2);
        let b = Interval::new(8, 9);
        assert_eq!(a.hull(&b), Interval::new(1, 9));
    }

    #[test]
    fn containment() {
        let a = Interval::new(1, 9);
        assert!(a.contains_interval(&Interval::new(2, 5)));
        assert!(a.contains_interval(&a));
        assert!(a.contains_interval(&Interval::empty()));
        assert!(!a.contains_interval(&Interval::new(0, 5)));
        assert!(!a.contains_interval(&Interval::new(5, 10)));
    }

    #[test]
    fn coverage_ratios() {
        let w = Interval::new(0, 4);
        assert_eq!(Interval::new(0, 4).coverage_of(&w), 1.0);
        assert_eq!(Interval::new(0, 2).coverage_of(&w), 0.5);
        assert_eq!(Interval::new(3, 10).coverage_of(&w), 0.25);
        assert_eq!(Interval::new(5, 10).coverage_of(&w), 0.0);
        assert_eq!(Interval::new(1, 3).coverage_of(&Interval::empty()), 0.0);
    }

    #[test]
    fn merge_non_overlapping_collapses() {
        let merged = merge_non_overlapping(vec![
            Interval::new(5, 7),
            Interval::new(1, 3),
            Interval::new(3, 5),
            Interval::new(9, 11),
            Interval::empty(),
        ]);
        assert_eq!(merged, vec![Interval::new(1, 7), Interval::new(9, 11)]);
    }

    #[test]
    fn merge_non_overlapping_handles_duplicates() {
        let merged = merge_non_overlapping(vec![
            Interval::new(1, 3),
            Interval::new(1, 3),
            Interval::new(2, 4),
        ]);
        assert_eq!(merged, vec![Interval::new(1, 4)]);
    }

    #[test]
    fn interval_set_intersection() {
        let a = vec![Interval::new(1, 5), Interval::new(7, 10)];
        let b = vec![Interval::new(2, 8), Interval::new(9, 12)];
        assert_eq!(
            intersect_interval_sets(&a, &b),
            vec![
                Interval::new(2, 5),
                Interval::new(7, 8),
                Interval::new(9, 10)
            ]
        );
        assert!(intersect_interval_sets(&a, &[]).is_empty());
    }

    #[test]
    fn points_iteration() {
        let pts: Vec<Time> = Interval::new(2, 6).points().collect();
        assert_eq!(pts, vec![2, 3, 4, 5]);
    }

    #[test]
    fn total_points_sums() {
        let set = [Interval::new(0, 3), Interval::new(10, 11)];
        assert_eq!(total_points(&set), 4);
    }
}
