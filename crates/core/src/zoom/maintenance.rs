//! Incremental-maintenance planning for zoom pipelines over an *appended*
//! graph: given where new history begins, decide whether a cached result can
//! be **patched** from the delta or must be recomputed, and where the patch
//! must cut.
//!
//! # The append invariant
//!
//! An ingest epoch appends facts whose intervals lie entirely at or after
//! the boundary `b` (the previous lifespan's end). Since a TGraph's lifespan
//! is the hull of its facts, every pre-existing fact ends at or before `b`:
//! the graph's support is time-disjoint around `b`, and any snapshot at
//! `t < b` is untouched by the ingest.
//!
//! # Why a cut exists
//!
//! * `aZoom^T` is **snapshot-wise**: the zoomed graph at time `t` depends
//!   only on the input snapshot at `t` (its group aggregates are
//!   decomposable, `tgraph_dataflow::Decomposable`). It commutes with
//!   slicing at any point, so `b` itself is a valid cut.
//! * `wZoom^T` with [`WindowSpec::Points`]`(n)` windows is **grid-local**:
//!   windows are `[L + k·n, L + (k+1)·n)` anchored at the input lifespan
//!   start `L`, which the append never moves. A window before the cut sees
//!   no new facts; a window at or after a grid-aligned cut is computed
//!   identically from the suffix alone. The cut must therefore be aligned
//!   *down* from `b` to the window grid.
//! * `wZoom^T` with [`WindowSpec::Changes`]`(n)` windows is **not**
//!   append-stable: appending facts appends change points, which re-chunks
//!   every window boundary. Those pipelines must recompute.
//!
//! With several `Points` zooms chained, each anchors at `L` (aZoom^T
//! preserves its input lifespan; wZoom^T's output lifespan is the hull of
//! its windows, which starts at the first window = `L`), so the cut is the
//! greatest point ≤ `b` aligned to *every* grid — the fixpoint of iterated
//! align-downs, i.e. `L + ⌊(b−L)/lcm⌋·lcm` computed without forming the lcm.

use crate::time::{Interval, Time};
use crate::zoom::wzoom::WindowSpec;

/// How a cached zoom result should be brought up to the new epoch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MaintenanceDecision {
    /// Re-execute the pipeline over the suffix `[cut, ∞)` only and stitch it
    /// onto the cached result split at `cut` — cost O(delta + one window).
    Patch {
        /// The stitch point: every cached fact part before `cut` is kept
        /// verbatim; everything at or after it comes from the suffix run.
        cut: Time,
    },
    /// The pipeline is not append-stable (or the cut degenerates); run it
    /// cold over the full history.
    Recompute {
        /// Human-readable cause, surfaced by EXPLAIN and the server stats.
        reason: &'static str,
    },
}

impl MaintenanceDecision {
    /// Whether this is the patch path.
    pub fn is_patch(&self) -> bool {
        matches!(self, MaintenanceDecision::Patch { .. })
    }
}

/// Plans maintenance for a pipeline whose wZoom^T steps use the given window
/// specs, over a cached base with lifespan `lifespan`, after an ingest whose
/// facts all lie at or after `boundary`.
///
/// `windows` must list the window spec of every wZoom^T step in the
/// pipeline (in any order — alignment is order-insensitive); aZoom^T and
/// representation switches are snapshot-wise and never constrain the cut.
pub fn decide(lifespan: Interval, boundary: Time, windows: &[WindowSpec]) -> MaintenanceDecision {
    if lifespan.is_empty() {
        return MaintenanceDecision::Recompute {
            reason: "empty cached lifespan",
        };
    }
    let anchor = lifespan.start;
    if boundary <= anchor {
        return MaintenanceDecision::Recompute {
            reason: "delta boundary precedes cached history",
        };
    }
    if windows.iter().any(|w| matches!(w, WindowSpec::Changes(_))) {
        return MaintenanceDecision::Recompute {
            reason: "changes-windows are not append-stable",
        };
    }
    // Greatest point ≤ boundary aligned to every Points grid anchored at
    // `anchor`: iterated align-down converges to the greatest common
    // fixpoint without computing (and possibly overflowing) the lcm.
    let mut cut = boundary;
    loop {
        let before = cut;
        for w in windows {
            let WindowSpec::Points(n) = w else { continue };
            let n = *n as i64;
            debug_assert!(n > 0, "window size must be positive");
            cut = anchor + ((cut - anchor).div_euclid(n)) * n;
        }
        if cut == before {
            break;
        }
    }
    if cut <= anchor {
        return MaintenanceDecision::Recompute {
            reason: "aligned cut reaches the start of history",
        };
    }
    MaintenanceDecision::Patch { cut }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_wise_pipelines_cut_at_the_boundary() {
        let d = decide(Interval::new(1, 9), 9, &[]);
        assert_eq!(d, MaintenanceDecision::Patch { cut: 9 });
    }

    #[test]
    fn points_windows_align_the_cut_down() {
        // Grid 1, 4, 7, 10, ... — boundary 9 aligns down to 7.
        let d = decide(Interval::new(1, 9), 9, &[WindowSpec::Points(3)]);
        assert_eq!(d, MaintenanceDecision::Patch { cut: 7 });
        // An already-aligned boundary stays put.
        let d = decide(Interval::new(1, 10), 10, &[WindowSpec::Points(3)]);
        assert_eq!(d, MaintenanceDecision::Patch { cut: 10 });
    }

    #[test]
    fn chained_grids_take_the_common_fixpoint() {
        // Grids 2 and 3 anchored at 0: common alignment every 6.
        let d = decide(
            Interval::new(0, 17),
            17,
            &[WindowSpec::Points(2), WindowSpec::Points(3)],
        );
        assert_eq!(d, MaintenanceDecision::Patch { cut: 12 });
        // Order-insensitive.
        let d2 = decide(
            Interval::new(0, 17),
            17,
            &[WindowSpec::Points(3), WindowSpec::Points(2)],
        );
        assert_eq!(d, d2);
    }

    #[test]
    fn coprime_grids_can_degenerate_to_recompute() {
        // lcm(3, 4) = 12 > boundary − start = 10: no interior alignment.
        let d = decide(
            Interval::new(1, 11),
            11,
            &[WindowSpec::Points(3), WindowSpec::Points(4)],
        );
        assert_eq!(
            d,
            MaintenanceDecision::Recompute {
                reason: "aligned cut reaches the start of history"
            }
        );
    }

    #[test]
    fn changes_windows_force_recompute() {
        let d = decide(
            Interval::new(1, 9),
            9,
            &[WindowSpec::Points(3), WindowSpec::Changes(2)],
        );
        assert_eq!(
            d,
            MaintenanceDecision::Recompute {
                reason: "changes-windows are not append-stable"
            }
        );
        assert!(!d.is_patch());
    }

    #[test]
    fn degenerate_boundaries_recompute() {
        assert!(!decide(Interval::empty(), 5, &[]).is_patch());
        assert!(!decide(Interval::new(3, 9), 3, &[]).is_patch());
        assert!(!decide(Interval::new(3, 9), 2, &[]).is_patch());
    }
}
