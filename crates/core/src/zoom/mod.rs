//! Specifications of the two temporal zoom operators.
//!
//! * [`azoom`] — temporal attribute-based zoom (`aZoom^T`, §2.2): changes the
//!   *structural* resolution by creating new nodes from disjoint groups of
//!   input nodes and re-pointing edges.
//! * [`wzoom`] — temporal window-based zoom (`wZoom^T`, §2.3): changes the
//!   *temporal* resolution by mapping the states of each node and edge inside
//!   a temporal window to a single representative state.
//!
//! The specs in this module are representation-independent; each physical
//! representation in `tgraph-repr` implements them with its own dataflow
//! plan (Algorithms 1–6), and [`crate::reference`] implements them literally
//! under point semantics as the testing oracle.

pub mod azoom;
pub mod maintenance;
pub mod wzoom;

pub use azoom::{AZoomSpec, AggAccumulator, AggFn, AggSpec, Skolem};
pub use maintenance::MaintenanceDecision;
pub use wzoom::{window_relation, Quantifier, ResolveFn, WZoomSpec, WindowSpec};
