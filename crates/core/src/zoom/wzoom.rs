//! Temporal window-based zoom (`wZoom^T`) specification: window
//! specifications, existence quantifiers, and resolve functions (§2.3, §3.2).
//!
//! `wZoom^T` maps the different states of each node and edge within a
//! temporal window to a single representative state valid for the whole
//! window. Entities are retained in a window only if their existence meets
//! the window's quantifier threshold; attribute conflicts are resolved by
//! window aggregation functions (`first` / `last` / `any`). Because the
//! operator computes *across* snapshots, its input must be temporally
//! coalesced (§3.2).

use crate::props::{Key, Props};
use crate::splitter::align_to_windows;
use crate::time::{Interval, Time};
use std::sync::Arc;

/// Window specification `n {unit | changes}` (§2.3).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WindowSpec {
    /// Windows of `n` consecutive time points (e.g. `3 months` when the time
    /// domain is months). Anchored at the graph lifespan's start; the final
    /// window is full-width even if it extends past the lifespan, exactly as
    /// in Example 2.3 where W3 = [7, 10) over a graph ending at 9.
    Points(u64),
    /// Windows of `n` consecutive *changes*: each window spans `n` elementary
    /// no-change intervals (snapshots) of the input graph.
    Changes(u64),
}

impl WindowSpec {
    /// Number `n` in the specification.
    pub fn n(&self) -> u64 {
        match self {
            WindowSpec::Points(n) | WindowSpec::Changes(n) => *n,
        }
    }
}

/// Node/edge existence quantifiers `{all | most | at least n | exists}`.
///
/// Each translates to a threshold on the fraction `r` of the window during
/// which the entity existed (§3.2): `r = 1` for `all`, `r > 0.5` for `most`,
/// `r > n` for `at least n`, and `r > 0` for `exists`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Quantifier {
    /// Universal quantification: the entity spans the entire window.
    All,
    /// More than half of the window.
    Most,
    /// More than fraction `n` (a decimal in `[0, 1]`) of the window.
    AtLeast(f64),
    /// Existential quantification: at least one time point.
    Exists,
}

impl Quantifier {
    /// Whether coverage fraction `r ∈ [0,1]` satisfies the quantifier.
    #[inline]
    pub fn satisfied(&self, r: f64) -> bool {
        match self {
            Quantifier::All => r >= 1.0,
            Quantifier::Most => r > 0.5,
            Quantifier::AtLeast(n) => r > *n,
            Quantifier::Exists => r > 0.0,
        }
    }

    /// The threshold `t` such that the quantifier means `r > t` (with `all`
    /// meaning `r >= 1`). Used to order quantifiers by restrictiveness for
    /// the dangling-edge-check optimization (`r_v` more restrictive than
    /// `r_e` in Algorithms 5 and 6).
    #[inline]
    pub fn threshold(&self) -> f64 {
        match self {
            Quantifier::All => 1.0,
            Quantifier::Most => 0.5,
            Quantifier::AtLeast(n) => *n,
            Quantifier::Exists => 0.0,
        }
    }

    /// Whether `self` is strictly more restrictive than `other` (retains a
    /// subset of entities for every input).
    #[inline]
    pub fn more_restrictive_than(&self, other: &Quantifier) -> bool {
        self.threshold() > other.threshold()
    }
}

/// Window aggregation (resolve) functions choosing, for each attribute,
/// which of its conflicting values within a window to accept (§2.3).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ResolveFn {
    /// Value from the earliest state (by interval start) carrying the key.
    First,
    /// Value from the latest state (by interval start) carrying the key.
    Last,
    /// Implementation-chosen value; the default. Deterministically the value
    /// from the state with the longest presence in the window (ties broken
    /// by earliest start), so that all physical representations agree.
    Any,
}

impl ResolveFn {
    /// Resolves the representative properties from the (window-clipped)
    /// states of one entity within one window. `states` are
    /// `(covered_interval, props)` pairs; order is irrelevant.
    ///
    /// Resolution is *per attribute*: each key present in any state gets the
    /// value chosen by the resolve rule among the states carrying that key.
    pub fn resolve(&self, states: &[(Interval, Props)]) -> Props {
        debug_assert!(!states.is_empty());
        if states.len() == 1 {
            return states[0].1.clone();
        }
        let mut ordered: Vec<&(Interval, Props)> = states.iter().collect();
        match self {
            // Priority order: earlier states win.
            ResolveFn::First => ordered.sort_by_key(|(iv, _)| (iv.start, iv.end)),
            // Later states win.
            ResolveFn::Last => ordered.sort_by_key(|(iv, _)| (std::cmp::Reverse(iv.start), iv.end)),
            // Longest-presence states win.
            ResolveFn::Any => {
                ordered.sort_by_key(|(iv, _)| (std::cmp::Reverse(iv.len()), iv.start))
            }
        }
        // First state in priority order seeds the result; later states only
        // contribute keys not yet present.
        let mut out = ordered[0].1.clone();
        for (_, props) in ordered.iter().skip(1) {
            for (k, v) in props.iter() {
                if out.get(k).is_none() {
                    out = out.with(k.clone(), v.clone());
                }
            }
        }
        out
    }
}

/// Full specification of one `wZoom^T` invocation.
#[derive(Clone, Debug)]
pub struct WZoomSpec {
    /// The window specification.
    pub window: WindowSpec,
    /// Node existence quantifier `r_v`.
    pub vertex_quantifier: Quantifier,
    /// Edge existence quantifier `r_e`.
    pub edge_quantifier: Quantifier,
    /// Resolve function `f_v` for node attributes.
    pub vertex_resolve: ResolveFn,
    /// Resolve function `f_e` for edge attributes.
    pub edge_resolve: ResolveFn,
    /// Per-attribute overrides of the node resolve function, e.g.
    /// `node.school = last(school)` in Figure 3.
    pub vertex_overrides: Vec<(Key, ResolveFn)>,
    /// Per-attribute overrides of the edge resolve function.
    pub edge_overrides: Vec<(Key, ResolveFn)>,
}

impl WZoomSpec {
    /// Windows of `n` time points with the given quantifiers and `any`
    /// resolve functions.
    pub fn points(n: u64, vq: Quantifier, eq: Quantifier) -> Self {
        WZoomSpec {
            window: WindowSpec::Points(n),
            vertex_quantifier: vq,
            edge_quantifier: eq,
            vertex_resolve: ResolveFn::Any,
            edge_resolve: ResolveFn::Any,
            vertex_overrides: Vec::new(),
            edge_overrides: Vec::new(),
        }
    }

    /// Sets both resolve functions.
    pub fn with_resolve(mut self, v: ResolveFn, e: ResolveFn) -> Self {
        self.vertex_resolve = v;
        self.edge_resolve = e;
        self
    }

    /// Adds a per-attribute vertex resolve override.
    pub fn with_vertex_override(mut self, key: &str, f: ResolveFn) -> Self {
        self.vertex_overrides.push((Arc::from(key), f));
        self
    }

    /// Adds a per-attribute edge resolve override.
    pub fn with_edge_override(mut self, key: &str, f: ResolveFn) -> Self {
        self.edge_overrides.push((Arc::from(key), f));
        self
    }

    /// Whether the dangling-edge check is required: only if `r_v` is more
    /// restrictive than `r_e` (§3.2) can an edge pass while an endpoint fails.
    pub fn needs_dangling_check(&self) -> bool {
        self.vertex_quantifier
            .more_restrictive_than(&self.edge_quantifier)
    }

    /// Resolves vertex properties honoring per-attribute overrides.
    pub fn resolve_vertex(&self, states: &[(Interval, Props)]) -> Props {
        resolve_with_overrides(self.vertex_resolve, &self.vertex_overrides, states)
    }

    /// Resolves edge properties honoring per-attribute overrides.
    pub fn resolve_edge(&self, states: &[(Interval, Props)]) -> Props {
        resolve_with_overrides(self.edge_resolve, &self.edge_overrides, states)
    }
}

/// Applies a base resolve function, then re-resolves individually overridden
/// attributes among the states that carry them.
fn resolve_with_overrides(
    base: ResolveFn,
    overrides: &[(Key, ResolveFn)],
    states: &[(Interval, Props)],
) -> Props {
    let resolved = base.resolve(states);
    if overrides.is_empty() {
        return resolved;
    }
    let mut out = resolved;
    for (key, f) in overrides {
        let carrying: Vec<(Interval, Props)> = states
            .iter()
            .filter(|(_, p)| p.get(key).is_some())
            .cloned()
            .collect();
        if carrying.is_empty() {
            continue;
        }
        let resolved = f.resolve(&carrying);
        if let Some(v) = resolved.get(key) {
            out = out.with(key.clone(), v.clone());
        }
    }
    out
}

/// Computes the temporal window relation `W(d | T)` of §2.3 for a graph with
/// the given `lifespan`. For [`WindowSpec::Changes`], `change_points` must be
/// the graph's sorted change points (see `TGraph::change_points`).
///
/// Returns the windows in temporal order; window `d` is `windows[d]`.
pub fn window_relation(
    lifespan: Interval,
    change_points: &[Time],
    spec: WindowSpec,
) -> Vec<Interval> {
    if lifespan.is_empty() {
        return Vec::new();
    }
    match spec {
        WindowSpec::Points(n) => {
            assert!(n > 0, "window size must be positive");
            align_to_windows(&lifespan, lifespan.start, n)
                .into_iter()
                .map(|(window, _)| window)
                .collect()
        }
        WindowSpec::Changes(n) => {
            assert!(n > 0, "window size must be positive");
            // Elementary no-change intervals between consecutive change points.
            let elems = crate::splitter::elementary_intervals(change_points);
            if elems.is_empty() {
                return vec![lifespan];
            }
            elems
                .chunks(n as usize)
                .map(|chunk| Interval::new(chunk[0].start, chunk[chunk.len() - 1].end))
                .collect()
        }
    }
}

/// Maps an entity's covered parts within windows: given the entity's fact
/// interval and the window relation parameters, yields
/// `(window_index, window, covered)` triples. Used by all representations.
pub fn windows_of(
    fact: Interval,
    lifespan: Interval,
    windows: &[Interval],
    spec: WindowSpec,
) -> Vec<(usize, Interval, Interval)> {
    match spec {
        WindowSpec::Points(n) => align_to_windows(&fact, lifespan.start, n)
            .into_iter()
            .map(|(window, covered)| {
                let idx = ((window.start - lifespan.start) / n as i64) as usize;
                debug_assert_eq!(windows.get(idx), Some(&window));
                (idx, window, covered)
            })
            .collect(),
        WindowSpec::Changes(_) => {
            // Windows are irregular: binary-search each overlap.
            let mut out = Vec::new();
            for (idx, w) in windows.iter().enumerate() {
                if let Some(covered) = fact.intersect(w) {
                    out.push((idx, *w, covered));
                }
                if w.start >= fact.end {
                    break;
                }
            }
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantifier_thresholds() {
        assert!(Quantifier::All.satisfied(1.0));
        assert!(!Quantifier::All.satisfied(0.999));
        assert!(Quantifier::Most.satisfied(0.51));
        assert!(!Quantifier::Most.satisfied(0.5));
        assert!(Quantifier::AtLeast(0.25).satisfied(0.26));
        assert!(!Quantifier::AtLeast(0.25).satisfied(0.25));
        assert!(Quantifier::Exists.satisfied(0.001));
        assert!(!Quantifier::Exists.satisfied(0.0));
    }

    #[test]
    fn restrictiveness_ordering() {
        assert!(Quantifier::All.more_restrictive_than(&Quantifier::Most));
        assert!(Quantifier::Most.more_restrictive_than(&Quantifier::Exists));
        assert!(Quantifier::AtLeast(0.7).more_restrictive_than(&Quantifier::Most));
        assert!(!Quantifier::Exists.more_restrictive_than(&Quantifier::Exists));
    }

    #[test]
    fn dangling_check_condition() {
        let spec = WZoomSpec::points(3, Quantifier::All, Quantifier::Exists);
        assert!(spec.needs_dangling_check());
        let spec = WZoomSpec::points(3, Quantifier::Exists, Quantifier::All);
        assert!(!spec.needs_dangling_check());
        let spec = WZoomSpec::points(3, Quantifier::All, Quantifier::All);
        assert!(!spec.needs_dangling_check());
    }

    #[test]
    fn window_relation_points() {
        // Example 2.3: lifespan [1,10), 3-point windows → W1..W3.
        let w = window_relation(Interval::new(1, 10), &[], WindowSpec::Points(3));
        assert_eq!(
            w,
            vec![
                Interval::new(1, 4),
                Interval::new(4, 7),
                Interval::new(7, 10)
            ]
        );
        // Lifespan [1,9) still produces a full-width W3 = [7,10).
        let w = window_relation(Interval::new(1, 9), &[], WindowSpec::Points(3));
        assert_eq!(w[2], Interval::new(7, 10));
    }

    #[test]
    fn window_relation_changes() {
        // Change points of Figure 1: 1,2,5,7,9 → elementary [1,2),[2,5),[5,7),[7,9).
        let cps = vec![1, 2, 5, 7, 9];
        let w = window_relation(Interval::new(1, 9), &cps, WindowSpec::Changes(2));
        assert_eq!(w, vec![Interval::new(1, 5), Interval::new(5, 9)]);
        let w1 = window_relation(Interval::new(1, 9), &cps, WindowSpec::Changes(3));
        assert_eq!(w1, vec![Interval::new(1, 7), Interval::new(7, 9)]);
    }

    #[test]
    fn window_relation_empty_lifespan() {
        assert!(window_relation(Interval::empty(), &[], WindowSpec::Points(3)).is_empty());
    }

    #[test]
    fn windows_of_points() {
        let lifespan = Interval::new(1, 10);
        let windows = window_relation(lifespan, &[], WindowSpec::Points(3));
        // Bob [2,9): partial W0, full W1, partial W2.
        let got = windows_of(
            Interval::new(2, 9),
            lifespan,
            &windows,
            WindowSpec::Points(3),
        );
        assert_eq!(
            got,
            vec![
                (0, Interval::new(1, 4), Interval::new(2, 4)),
                (1, Interval::new(4, 7), Interval::new(4, 7)),
                (2, Interval::new(7, 10), Interval::new(7, 9)),
            ]
        );
    }

    #[test]
    fn windows_of_changes() {
        let lifespan = Interval::new(1, 9);
        let windows = vec![Interval::new(1, 5), Interval::new(5, 9)];
        let got = windows_of(
            Interval::new(2, 7),
            lifespan,
            &windows,
            WindowSpec::Changes(2),
        );
        assert_eq!(
            got,
            vec![
                (0, Interval::new(1, 5), Interval::new(2, 5)),
                (1, Interval::new(5, 9), Interval::new(5, 7)),
            ]
        );
    }

    #[test]
    fn resolve_first_last() {
        let early = Props::typed("person");
        let late = Props::typed("person").with("school", "CMU");
        let states = vec![
            (Interval::new(4, 5), early.clone()),
            (Interval::new(5, 7), late.clone()),
        ];
        assert_eq!(
            ResolveFn::Last
                .resolve(&states)
                .get("school")
                .unwrap()
                .as_str(),
            Some("CMU")
        );
        // First: base props from early state, but school filled from late
        // state because early lacks the key.
        let first = ResolveFn::First.resolve(&states);
        assert_eq!(first.get("school").unwrap().as_str(), Some("CMU"));
        assert_eq!(first.type_label(), Some("person"));
    }

    #[test]
    fn resolve_first_vs_last_conflicting_values() {
        let a = Props::typed("p").with("x", 1i64);
        let b = Props::typed("p").with("x", 2i64);
        let states = vec![(Interval::new(0, 2), a), (Interval::new(2, 3), b)];
        assert_eq!(
            ResolveFn::First.resolve(&states).get("x").unwrap().as_int(),
            Some(1)
        );
        assert_eq!(
            ResolveFn::Last.resolve(&states).get("x").unwrap().as_int(),
            Some(2)
        );
        // Any: longest presence wins → [0,2) is longer → value 1.
        assert_eq!(
            ResolveFn::Any.resolve(&states).get("x").unwrap().as_int(),
            Some(1)
        );
    }

    #[test]
    fn resolve_single_state_is_identity() {
        let p = Props::typed("p").with("x", 1i64);
        let states = vec![(Interval::new(0, 3), p.clone())];
        assert_eq!(ResolveFn::Any.resolve(&states), p);
    }

    #[test]
    fn vertex_override_applies() {
        // Figure 3: node.school = last(school).
        let spec = WZoomSpec::points(3, Quantifier::All, Quantifier::All)
            .with_resolve(ResolveFn::First, ResolveFn::Any)
            .with_vertex_override("school", ResolveFn::Last);
        let states = vec![
            (Interval::new(4, 5), Props::typed("person")),
            (
                Interval::new(5, 7),
                Props::typed("person").with("school", "CMU"),
            ),
        ];
        let out = spec.resolve_vertex(&states);
        assert_eq!(out.get("school").unwrap().as_str(), Some("CMU"));
    }

    #[test]
    #[should_panic(expected = "window size must be positive")]
    fn zero_window_panics() {
        let _ = window_relation(Interval::new(0, 5), &[], WindowSpec::Points(0));
    }
}
