//! Temporal attribute-based zoom (`aZoom^T`) specification: Skolem functions
//! and commutative/associative aggregation functions (§2.2, §3.1).
//!
//! `aZoom^T` is the temporal generalization of graph *node creation*: on every
//! snapshot of the input, nodes are partitioned into disjoint groups agreeing
//! on the grouping attributes, a new node is created per group (with identity
//! assigned consistently across time by a Skolem function `f_s`), group
//! attributes are aggregated by `f_agg`, and every input edge is re-created
//! with its endpoints re-pointed to the group nodes. Finally the result is
//! temporally coalesced (point semantics).

use crate::graph::VertexId;
use crate::props::{Key, Props, Value};
use std::collections::hash_map::DefaultHasher;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// A user-providable Skolem function: maps a vertex (id + properties) to the
/// identity of its group node and the base properties the group node carries.
///
/// Returning `None` excludes the vertex from the zoomed graph in that state
/// (e.g. Bob before he has a `school`); edges incident to excluded states are
/// clipped accordingly, as in Example 2.2 where `e1` shrinks from `[2,7)` to
/// `[5,7)`.
pub type SkolemFn = Arc<dyn Fn(VertexId, &Props) -> Option<(u64, Props)> + Send + Sync>;

/// The Skolem function `f_s` assigning identity to created nodes.
#[derive(Clone)]
pub enum Skolem {
    /// Group by the value of one property. The new node's id is a stable
    /// 64-bit hash of that value; the new node carries the grouping property.
    /// Vertices lacking the property are excluded.
    ByProperty(Key),
    /// Group by the values of several properties (all must be present).
    ByProperties(Vec<Key>),
    /// Group by the required `type` label.
    ByType,
    /// Arbitrary user function (must be deterministic: identical inputs map
    /// to identical group ids across snapshots, per §2.2).
    Custom {
        /// Name used for `Debug`/plan display.
        name: &'static str,
        /// The function itself.
        f: SkolemFn,
    },
}

impl fmt::Debug for Skolem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Skolem::ByProperty(k) => write!(f, "Skolem::ByProperty({k})"),
            Skolem::ByProperties(ks) => write!(f, "Skolem::ByProperties({ks:?})"),
            Skolem::ByType => write!(f, "Skolem::ByType"),
            Skolem::Custom { name, .. } => write!(f, "Skolem::Custom({name})"),
        }
    }
}

/// Stable (process-independent) hash used to mint group node ids.
fn stable_hash(parts: &[&Value]) -> u64 {
    // DefaultHasher with fixed keys is stable within a build; good enough for
    // deterministic ids across snapshots and workers in one run.
    let mut h = DefaultHasher::new();
    for p in parts {
        p.hash(&mut h);
    }
    h.finish()
}

impl Skolem {
    /// Applies `f_s` to a vertex state: `Some((group_id, base_props))` if the
    /// vertex participates in a group, `None` otherwise.
    pub fn apply(&self, vid: VertexId, props: &Props) -> Option<(u64, Props)> {
        match self {
            Skolem::ByProperty(key) => {
                let v = props.get(key)?;
                let id = stable_hash(&[v]);
                Some((id, Props::from_pairs([(key.clone(), v.clone())])))
            }
            Skolem::ByProperties(keys) => {
                let mut vals = Vec::with_capacity(keys.len());
                for k in keys {
                    vals.push(props.get(k)?);
                }
                let id = stable_hash(&vals);
                let base = Props::from_pairs(
                    keys.iter()
                        .zip(vals.iter())
                        .map(|(k, v)| (k.clone(), (*v).clone())),
                );
                Some((id, base))
            }
            Skolem::ByType => {
                let t = props.get(crate::props::TYPE_KEY)?;
                Some((stable_hash(&[t]), Props::new()))
            }
            Skolem::Custom { f, .. } => f(vid, props),
        }
    }

    /// Convenience constructor for [`Skolem::ByProperty`].
    pub fn by_property(key: &str) -> Self {
        Skolem::ByProperty(Arc::from(key))
    }
}

/// An aggregation function `f_agg` applied to the vertices of one group in
/// one snapshot. All functions are commutative and associative (required by
/// §2.2 so that groups can be reduced in any order by the dataflow engine).
#[derive(Clone, Debug, PartialEq)]
pub enum AggFn {
    /// Number of member vertices.
    Count,
    /// Sum of a numeric property over members (members lacking it contribute 0).
    Sum(Key),
    /// Minimum of a property over members that carry it.
    Min(Key),
    /// Maximum of a property over members that carry it.
    Max(Key),
    /// Arithmetic mean of a numeric property over members that carry it.
    Avg(Key),
    /// An arbitrary member's value of a property (deterministically the
    /// minimum, so every evaluation order agrees).
    Any(Key),
}

/// One output attribute computed by aggregation: `output = f(members)`.
#[derive(Clone, Debug, PartialEq)]
pub struct AggSpec {
    /// Property label of the computed attribute on the group node.
    pub output: Key,
    /// The aggregation function.
    pub f: AggFn,
}

impl AggSpec {
    /// Builds an aggregation spec.
    pub fn new(output: &str, f: AggFn) -> Self {
        AggSpec {
            output: Arc::from(output),
            f,
        }
    }

    /// `output = count()` — the paper's running example (`students` count).
    pub fn count(output: &str) -> Self {
        AggSpec::new(output, AggFn::Count)
    }
}

/// Mergeable accumulator state for one [`AggFn`].
#[derive(Clone, Debug, PartialEq)]
enum AggState {
    Count(u64),
    Sum(f64, bool),
    Min(Option<Value>),
    Max(Option<Value>),
    Avg { sum: f64, n: u64 },
    Any(Option<Value>),
}

/// A mergeable accumulator over group members, evaluating all [`AggSpec`]s of
/// an [`AZoomSpec`] at once. Satisfies the commutative/associative contract:
/// `update` order and `merge` shape never change the result.
#[derive(Clone, Debug)]
pub struct AggAccumulator {
    specs: Arc<[AggSpec]>,
    states: Vec<AggState>,
}

impl AggAccumulator {
    /// Creates an empty accumulator for `specs`.
    pub fn new(specs: Arc<[AggSpec]>) -> Self {
        let states = specs
            .iter()
            .map(|s| match &s.f {
                AggFn::Count => AggState::Count(0),
                AggFn::Sum(_) => AggState::Sum(0.0, false),
                AggFn::Min(_) => AggState::Min(None),
                AggFn::Max(_) => AggState::Max(None),
                AggFn::Avg(_) => AggState::Avg { sum: 0.0, n: 0 },
                AggFn::Any(_) => AggState::Any(None),
            })
            .collect();
        AggAccumulator { specs, states }
    }

    /// Folds one member vertex's properties into the accumulator.
    pub fn update(&mut self, member: &Props) {
        for (spec, state) in self.specs.iter().zip(self.states.iter_mut()) {
            match (&spec.f, state) {
                (AggFn::Count, AggState::Count(n)) => *n += 1,
                (AggFn::Sum(k), AggState::Sum(s, seen)) => {
                    if let Some(v) = member.get(k).and_then(Value::as_f64) {
                        *s += v;
                        *seen = true;
                    }
                }
                (AggFn::Min(k), AggState::Min(m)) => {
                    if let Some(v) = member.get(k) {
                        if m.as_ref().is_none_or(|cur| v < cur) {
                            *m = Some(v.clone());
                        }
                    }
                }
                (AggFn::Max(k), AggState::Max(m)) => {
                    if let Some(v) = member.get(k) {
                        if m.as_ref().is_none_or(|cur| v > cur) {
                            *m = Some(v.clone());
                        }
                    }
                }
                (AggFn::Avg(k), AggState::Avg { sum, n }) => {
                    if let Some(v) = member.get(k).and_then(Value::as_f64) {
                        *sum += v;
                        *n += 1;
                    }
                }
                (AggFn::Any(k), AggState::Any(m)) => {
                    if let Some(v) = member.get(k) {
                        if m.as_ref().is_none_or(|cur| v < cur) {
                            *m = Some(v.clone());
                        }
                    }
                }
                _ => unreachable!("accumulator state out of sync with specs"),
            }
        }
    }

    /// Merges a sibling accumulator (map-side combine in the dataflow plans).
    pub fn merge(&mut self, other: &AggAccumulator) {
        debug_assert_eq!(self.specs.len(), other.specs.len());
        for (mine, theirs) in self.states.iter_mut().zip(other.states.iter()) {
            match (mine, theirs) {
                (AggState::Count(a), AggState::Count(b)) => *a += b,
                (AggState::Sum(a, sa), AggState::Sum(b, sb)) => {
                    *a += b;
                    *sa |= sb;
                }
                (AggState::Min(a), AggState::Min(b)) => {
                    if let Some(bv) = b {
                        if a.as_ref().is_none_or(|av| bv < av) {
                            *a = Some(bv.clone());
                        }
                    }
                }
                (AggState::Max(a), AggState::Max(b)) => {
                    if let Some(bv) = b {
                        if a.as_ref().is_none_or(|av| bv > av) {
                            *a = Some(bv.clone());
                        }
                    }
                }
                (AggState::Avg { sum: a, n: na }, AggState::Avg { sum: b, n: nb }) => {
                    *a += b;
                    *na += nb;
                }
                (AggState::Any(a), AggState::Any(b)) => {
                    if let Some(bv) = b {
                        if a.as_ref().is_none_or(|av| bv < av) {
                            *a = Some(bv.clone());
                        }
                    }
                }
                _ => unreachable!("merging accumulators with different specs"),
            }
        }
    }

    /// Finishes aggregation, writing computed attributes onto `base`.
    pub fn finish(&self, base: Props) -> Props {
        let mut out = base;
        for (spec, state) in self.specs.iter().zip(self.states.iter()) {
            let value: Option<Value> = match state {
                AggState::Count(n) => Some(Value::Int(*n as i64)),
                AggState::Sum(s, seen) => seen.then_some(Value::Float(*s)),
                AggState::Min(m) | AggState::Max(m) | AggState::Any(m) => m.clone(),
                AggState::Avg { sum, n } => (*n > 0).then(|| Value::Float(*sum / *n as f64)),
            };
            if let Some(v) = value {
                out = out.with(spec.output.clone(), v);
            }
        }
        out
    }
}

/// aZoom^T group aggregates are decomposable: partial accumulators over
/// disjoint member slices (partitions, or epochs of an evolving graph)
/// merge into the accumulator of the whole slice. This is the algebraic
/// fact incremental zoom maintenance relies on — a delta's contribution to
/// a group merges into the cached state without revisiting old members.
impl tgraph_dataflow::Decomposable for AggAccumulator {
    fn merge(&mut self, other: &Self) {
        AggAccumulator::merge(self, other);
    }
}

/// Full specification of one `aZoom^T` invocation.
#[derive(Clone, Debug)]
pub struct AZoomSpec {
    /// The Skolem function `f_s` assigning group identity.
    pub skolem: Skolem,
    /// Type label assigned to created group nodes (e.g. `school` in Fig. 2).
    pub new_type: Key,
    /// Aggregations `f_agg` computing group-node attributes.
    pub aggs: Arc<[AggSpec]>,
}

impl AZoomSpec {
    /// Creates a spec grouping by `property`, labelling new nodes `new_type`.
    pub fn by_property(property: &str, new_type: &str, aggs: Vec<AggSpec>) -> Self {
        AZoomSpec {
            skolem: Skolem::by_property(property),
            new_type: Arc::from(new_type),
            aggs: Arc::from(aggs),
        }
    }

    /// Applies the Skolem function and stamps the group node's type label.
    pub fn skolemize(&self, vid: VertexId, props: &Props) -> Option<(u64, Props)> {
        let (id, base) = self.skolem.apply(vid, props)?;
        Some((
            id,
            base.with(crate::props::TYPE_KEY, Value::Str(self.new_type.clone())),
        ))
    }

    /// Aggregates a complete group of member property sets into the group
    /// node's final properties. `base` comes from [`AZoomSpec::skolemize`].
    pub fn aggregate(&self, base: Props, members: impl IntoIterator<Item = Props>) -> Props {
        let mut acc = AggAccumulator::new(self.aggs.clone());
        for m in members {
            acc.update(&m);
        }
        acc.finish(base)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn person(school: Option<&str>, edits: i64) -> Props {
        let p = Props::typed("person").with("editCount", edits);
        match school {
            Some(s) => p.with("school", s),
            None => p,
        }
    }

    #[test]
    fn skolem_by_property_is_consistent() {
        let s = Skolem::by_property("school");
        let (id1, base1) = s.apply(VertexId(1), &person(Some("MIT"), 5)).unwrap();
        let (id2, _) = s.apply(VertexId(99), &person(Some("MIT"), 7)).unwrap();
        let (id3, _) = s.apply(VertexId(1), &person(Some("CMU"), 5)).unwrap();
        assert_eq!(
            id1, id2,
            "same value must map to same group id across vertices"
        );
        assert_ne!(id1, id3, "different values must map to different groups");
        assert_eq!(base1.get("school").unwrap().as_str(), Some("MIT"));
    }

    #[test]
    fn skolem_missing_property_excludes_vertex() {
        let s = Skolem::by_property("school");
        assert!(s.apply(VertexId(2), &person(None, 3)).is_none());
    }

    #[test]
    fn skolem_by_properties_requires_all() {
        let s = Skolem::ByProperties(vec![Arc::from("school"), Arc::from("type")]);
        assert!(s.apply(VertexId(1), &person(Some("MIT"), 1)).is_some());
        assert!(s.apply(VertexId(2), &person(None, 1)).is_none());
    }

    #[test]
    fn skolem_by_type() {
        let s = Skolem::ByType;
        let (a, _) = s.apply(VertexId(1), &person(Some("MIT"), 1)).unwrap();
        let (b, _) = s.apply(VertexId(2), &person(None, 2)).unwrap();
        assert_eq!(a, b, "all persons share one group");
    }

    #[test]
    fn count_aggregation() {
        let spec = AZoomSpec::by_property("school", "school", vec![AggSpec::count("students")]);
        let (_, base) = spec
            .skolemize(VertexId(1), &person(Some("MIT"), 5))
            .unwrap();
        let out = spec.aggregate(base, vec![person(Some("MIT"), 5), person(Some("MIT"), 9)]);
        assert_eq!(out.get("students"), Some(&Value::Int(2)));
        assert_eq!(out.type_label(), Some("school"));
        assert_eq!(out.get("school").unwrap().as_str(), Some("MIT"));
    }

    #[test]
    fn sum_min_max_avg_any() {
        let aggs = vec![
            AggSpec::new("total", AggFn::Sum(Arc::from("editCount"))),
            AggSpec::new("least", AggFn::Min(Arc::from("editCount"))),
            AggSpec::new("most", AggFn::Max(Arc::from("editCount"))),
            AggSpec::new("mean", AggFn::Avg(Arc::from("editCount"))),
            AggSpec::new("some", AggFn::Any(Arc::from("editCount"))),
        ];
        let spec = AZoomSpec::by_property("school", "school", aggs);
        let out = spec.aggregate(
            Props::typed("school"),
            vec![
                person(Some("MIT"), 2),
                person(Some("MIT"), 4),
                person(Some("MIT"), 9),
            ],
        );
        assert_eq!(out.get("total"), Some(&Value::Float(15.0)));
        assert_eq!(out.get("least"), Some(&Value::Int(2)));
        assert_eq!(out.get("most"), Some(&Value::Int(9)));
        assert_eq!(out.get("mean"), Some(&Value::Float(5.0)));
        assert_eq!(out.get("some"), Some(&Value::Int(2)));
    }

    #[test]
    fn accumulator_merge_equals_sequential_update() {
        let specs: Arc<[AggSpec]> = Arc::from(vec![
            AggSpec::count("n"),
            AggSpec::new("mean", AggFn::Avg(Arc::from("editCount"))),
            AggSpec::new("max", AggFn::Max(Arc::from("editCount"))),
        ]);
        let members: Vec<Props> = (0..10).map(|i| person(Some("MIT"), i)).collect();

        let mut seq = AggAccumulator::new(specs.clone());
        for m in &members {
            seq.update(m);
        }

        let mut left = AggAccumulator::new(specs.clone());
        let mut right = AggAccumulator::new(specs.clone());
        for m in &members[..4] {
            left.update(m);
        }
        for m in &members[4..] {
            right.update(m);
        }
        left.merge(&right);

        assert_eq!(seq.finish(Props::new()), left.finish(Props::new()));
    }

    #[test]
    fn aggregation_over_members_missing_property() {
        let spec = AZoomSpec::by_property(
            "school",
            "school",
            vec![AggSpec::new("mean", AggFn::Avg(Arc::from("absent")))],
        );
        let out = spec.aggregate(Props::typed("school"), vec![person(Some("MIT"), 1)]);
        assert!(out.get("mean").is_none(), "no members carry the property");
    }

    #[test]
    fn custom_skolem() {
        let skolem = Skolem::Custom {
            name: "mod2",
            f: Arc::new(|vid, _| Some((vid.0 % 2, Props::new()))),
        };
        let spec = AZoomSpec {
            skolem,
            new_type: Arc::from("parity"),
            aggs: Arc::from(vec![AggSpec::count("n")]),
        };
        let (g0, p) = spec.skolemize(VertexId(4), &Props::typed("x")).unwrap();
        assert_eq!(g0, 0);
        assert_eq!(p.type_label(), Some("parity"));
        let (g1, _) = spec.skolemize(VertexId(3), &Props::typed("x")).unwrap();
        assert_eq!(g1, 1);
    }

    /// The [`tgraph_dataflow::Decomposable`] laws for aZoom^T accumulators:
    /// splitting the member set at any point and merging the partial states
    /// (in either order, with any association) finishes identically to one
    /// sequential accumulation. This is the algebraic footing of both
    /// per-partition combining and O(delta) incremental maintenance.
    #[test]
    fn accumulator_is_decomposable() {
        let specs: Arc<[AggSpec]> = Arc::from(vec![
            AggSpec::count("n"),
            AggSpec::new("total", AggFn::Sum(Arc::from("gpa"))),
            AggSpec::new("lo", AggFn::Min(Arc::from("gpa"))),
            AggSpec::new("hi", AggFn::Max(Arc::from("gpa"))),
            AggSpec::new("mean", AggFn::Avg(Arc::from("gpa"))),
            AggSpec::new("pick", AggFn::Any(Arc::from("school"))),
        ]);
        let members: Vec<Props> = (0..13)
            .map(|i| {
                let p = Props::typed("person").with("gpa", (i as i64 % 5) as f64 + 0.25);
                if i % 3 == 0 {
                    p.with("school", if i % 2 == 0 { "MIT" } else { "CMU" })
                } else {
                    p
                }
            })
            .collect();
        let mut whole = AggAccumulator::new(specs.clone());
        for m in &members {
            whole.update(m);
        }
        let expected = whole.finish(Props::typed("school"));
        for split in [1, 4, 7, 12] {
            let mut a = AggAccumulator::new(specs.clone());
            let mut b = AggAccumulator::new(specs.clone());
            for m in &members[..split] {
                a.update(m);
            }
            for m in &members[split..] {
                b.update(m);
            }
            // merge(a, b) == merge(b, a) == whole, through the trait.
            let mut ab = a.clone();
            tgraph_dataflow::Decomposable::merge(&mut ab, &b);
            let mut ba = b.clone();
            tgraph_dataflow::Decomposable::merge(&mut ba, &a);
            assert_eq!(ab.finish(Props::typed("school")), expected, "split {split}");
            assert_eq!(ba.finish(Props::typed("school")), expected, "split {split}");
        }
        // Associativity across a three-way split, via merge_states (which
        // folds left) against a right-folded merge.
        let thirds: Vec<AggAccumulator> = members
            .chunks(5)
            .map(|chunk| {
                let mut acc = AggAccumulator::new(specs.clone());
                for m in chunk {
                    acc.update(m);
                }
                acc
            })
            .collect();
        let left = tgraph_dataflow::merge_states(thirds.clone())
            .expect("non-empty")
            .finish(Props::typed("school"));
        let mut right = thirds[1].clone();
        tgraph_dataflow::Decomposable::merge(&mut right, &thirds[2]);
        let mut first = thirds[0].clone();
        tgraph_dataflow::Decomposable::merge(&mut first, &right);
        assert_eq!(left, expected);
        assert_eq!(first.finish(Props::typed("school")), expected);
    }
}
