//! Temporal coalescing (§4): merging adjacent and overlapping time periods of
//! value-equivalent tuples so that each fact is represented by a single tuple
//! per period of maximal length during which no change occurred.
//!
//! We implement the *partitioning method* described in the paper: group the
//! relation by key, sort each group by interval start, then fold over the
//! group checking pairs of adjacent tuples for value-equivalence.

use crate::graph::{EdgeRecord, TGraph, VertexRecord};
use crate::time::Interval;
use std::collections::HashMap;
use std::hash::Hash;

/// Coalesces a group of `(interval, value)` facts that all belong to the same
/// entity key. Returns maximal-length facts sorted by start time.
///
/// Overlapping intervals with *different* values are invalid input (an entity
/// exists at most once per time point); this function resolves them
/// deterministically by letting the later-starting tuple clip the earlier
/// one, but validation (see [`crate::validate`]) rejects such graphs.
pub fn coalesce_group<V: Eq + Clone>(mut facts: Vec<(Interval, V)>) -> Vec<(Interval, V)> {
    facts.retain(|(iv, _)| !iv.is_empty());
    facts.sort_by_key(|(iv, _)| (iv.start, iv.end));
    let mut out: Vec<(Interval, V)> = Vec::with_capacity(facts.len());
    for (iv, val) in facts {
        match out.last_mut() {
            Some((last_iv, last_val)) if *last_val == val && last_iv.mergeable(&iv) => {
                last_iv.end = last_iv.end.max(iv.end);
            }
            _ => out.push((iv, val)),
        }
    }
    out
}

/// Coalesces an arbitrary keyed temporal relation: facts are grouped by `key`,
/// each group is coalesced with [`coalesce_group`], and the result is
/// returned flattened (grouped runs, sorted by start within each key).
pub fn coalesce_relation<K, V, T>(
    items: Vec<T>,
    key: impl Fn(&T) -> K,
    interval: impl Fn(&T) -> Interval,
    value: impl Fn(&T) -> V,
    rebuild: impl Fn(&K, Interval, V) -> T,
) -> Vec<T>
where
    K: Eq + Hash + Clone,
    V: Eq + Clone,
{
    let mut groups: HashMap<K, Vec<(Interval, V)>> = HashMap::new();
    for item in &items {
        groups
            .entry(key(item))
            .or_default()
            .push((interval(item), value(item)));
    }
    let mut out = Vec::with_capacity(items.len());
    for (k, facts) in groups {
        for (iv, v) in coalesce_group(facts) {
            out.push(rebuild(&k, iv, v));
        }
    }
    out
}

/// Coalesces the vertex relation of a logical TGraph.
pub fn coalesce_vertices(vertices: Vec<VertexRecord>) -> Vec<VertexRecord> {
    coalesce_relation(
        vertices,
        |v| v.vid,
        |v| v.interval,
        |v| v.props.clone(),
        |vid, interval, props| VertexRecord {
            vid: *vid,
            interval,
            props,
        },
    )
}

/// Coalesces the edge relation of a logical TGraph. The key includes the
/// endpoints so that (pathological) same-id edges with different endpoints
/// are never merged.
pub fn coalesce_edges(edges: Vec<EdgeRecord>) -> Vec<EdgeRecord> {
    coalesce_relation(
        edges,
        |e| (e.eid, e.src, e.dst),
        |e| e.interval,
        |e| e.props.clone(),
        |(eid, src, dst), interval, props| EdgeRecord {
            eid: *eid,
            src: *src,
            dst: *dst,
            interval,
            props,
        },
    )
}

/// Coalesces a whole logical TGraph, producing deterministic ordering
/// (sorted by id, then start) so results compare structurally.
pub fn coalesce_graph(g: &TGraph) -> TGraph {
    let mut vertices = coalesce_vertices(g.vertices.clone());
    let mut edges = coalesce_edges(g.edges.clone());
    vertices.sort_by_key(|v| (v.vid, v.interval.start));
    edges.sort_by_key(|e| (e.eid, e.interval.start));
    TGraph {
        lifespan: g.lifespan,
        vertices,
        edges,
    }
}

/// Whether a keyed temporal relation is already coalesced: no two
/// value-equivalent facts of the same key are adjacent or overlapping.
pub fn is_coalesced<K, V>(facts: &[(K, Interval, V)]) -> bool
where
    K: Eq + Hash + Clone,
    V: Eq + Clone,
{
    let mut groups: HashMap<K, Vec<(Interval, V)>> = HashMap::new();
    for (k, iv, v) in facts {
        groups.entry(k.clone()).or_default().push((*iv, v.clone()));
    }
    for (_, group) in groups {
        let n = group.len();
        if coalesce_group(group).len() != n {
            return false;
        }
    }
    true
}

/// Whether an entire graph is coalesced.
pub fn graph_is_coalesced(g: &TGraph) -> bool {
    is_coalesced(
        &g.vertices
            .iter()
            .map(|v| (v.vid, v.interval, v.props.clone()))
            .collect::<Vec<_>>(),
    ) && is_coalesced(
        // Edge identity includes the endpoints: aZoom^T can re-point the
        // same eid to different group nodes over time.
        &g.edges
            .iter()
            .map(|e| ((e.eid, e.src, e.dst), e.interval, e.props.clone()))
            .collect::<Vec<_>>(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::figure1_graph_stable_ids;
    use crate::props::Props;

    #[test]
    fn merges_adjacent_equal_values() {
        let out = coalesce_group(vec![
            (Interval::new(1, 3), "a"),
            (Interval::new(3, 5), "a"),
            (Interval::new(5, 7), "b"),
            (Interval::new(7, 9), "a"),
        ]);
        assert_eq!(
            out,
            vec![
                (Interval::new(1, 5), "a"),
                (Interval::new(5, 7), "b"),
                (Interval::new(7, 9), "a"),
            ]
        );
    }

    #[test]
    fn merges_overlapping_equal_values() {
        let out = coalesce_group(vec![(Interval::new(1, 4), "a"), (Interval::new(2, 6), "a")]);
        assert_eq!(out, vec![(Interval::new(1, 6), "a")]);
    }

    #[test]
    fn keeps_gap_separated_values() {
        let out = coalesce_group(vec![(Interval::new(1, 3), "a"), (Interval::new(5, 7), "a")]);
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn drops_empty_intervals() {
        let out = coalesce_group(vec![(Interval::empty(), "a"), (Interval::new(1, 2), "a")]);
        assert_eq!(out, vec![(Interval::new(1, 2), "a")]);
    }

    #[test]
    fn figure1_is_already_coalesced() {
        let g = figure1_graph_stable_ids();
        assert!(graph_is_coalesced(&g));
        let c = coalesce_graph(&g);
        assert_eq!(c.vertex_tuple_count(), 4);
        assert_eq!(c.edge_tuple_count(), 2);
    }

    #[test]
    fn uncoalesced_graph_is_detected_and_fixed() {
        let mut g = figure1_graph_stable_ids();
        // Split Cat's [1,9) fact into [1,4) + [4,9) — value-equivalent pieces.
        let cat = g.vertices.remove(3);
        let mut a = cat.clone();
        a.interval = Interval::new(1, 4);
        let mut b = cat;
        b.interval = Interval::new(4, 9);
        g.vertices.push(a);
        g.vertices.push(b);
        assert!(!graph_is_coalesced(&g));
        let c = coalesce_graph(&g);
        assert!(graph_is_coalesced(&c));
        assert_eq!(c.vertex_tuple_count(), 4);
        let cat_back = c.vertices.iter().find(|v| v.vid.0 == 3).unwrap();
        assert_eq!(cat_back.interval, Interval::new(1, 9));
    }

    #[test]
    fn bob_states_do_not_merge() {
        // Bob's two states differ in props, so they must remain two tuples
        // even though their intervals are adjacent.
        let g = coalesce_graph(&figure1_graph_stable_ids());
        let bob: Vec<_> = g.vertices.iter().filter(|v| v.vid.0 == 2).collect();
        assert_eq!(bob.len(), 2);
    }

    #[test]
    fn coalesce_is_idempotent() {
        let g = coalesce_graph(&figure1_graph_stable_ids());
        assert_eq!(coalesce_graph(&g), g);
    }

    #[test]
    fn coalesce_vertices_with_distinct_ids_untouched() {
        let v = vec![
            VertexRecord::new(1, Interval::new(0, 2), Props::typed("a")),
            VertexRecord::new(2, Interval::new(2, 4), Props::typed("a")),
        ];
        assert_eq!(coalesce_vertices(v).len(), 2);
    }
}
