//! Fixed-width bitsets used by the OGC (One Graph Columnar) representation
//! to encode the presence of a vertex or edge in each elementary interval
//! of the graph's splitter (§3, Figure 7).

use std::fmt;

/// A fixed-length bitset over `len` positions, packed into 64-bit words.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Bitset {
    words: Vec<u64>,
    len: usize,
}

impl Bitset {
    /// Creates an all-zero bitset over `len` positions.
    pub fn new(len: usize) -> Self {
        Bitset {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// Number of positions.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the bitset has zero positions.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Sets position `i` to one.
    ///
    /// # Panics
    /// Panics if `i >= len`.
    #[inline]
    pub fn set(&mut self, i: usize) {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        self.words[i / 64] |= 1u64 << (i % 64);
    }

    /// Clears position `i`.
    #[inline]
    pub fn clear(&mut self, i: usize) {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        self.words[i / 64] &= !(1u64 << (i % 64));
    }

    /// Reads position `i`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        self.words[i / 64] >> (i % 64) & 1 == 1
    }

    /// Number of set positions.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// The packed 64-bit words, for serialization.
    pub(crate) fn raw_words(&self) -> &[u64] {
        &self.words
    }

    /// Rebuilds a bitset from its packed words and length.
    ///
    /// # Panics
    /// Panics if `words.len()` disagrees with `len` or tail bits beyond
    /// `len` are set (the invariants every constructor maintains).
    pub(crate) fn from_raw(words: Vec<u64>, len: usize) -> Self {
        assert_eq!(words.len(), len.div_ceil(64), "bitset word count mismatch");
        if !len.is_multiple_of(64) {
            if let Some(last) = words.last() {
                assert_eq!(
                    last & !((1u64 << (len % 64)) - 1),
                    0,
                    "bitset tail bits beyond len are set"
                );
            }
        }
        Bitset { words, len }
    }

    /// Whether no position is set.
    pub fn none(&self) -> bool {
        self.words.iter().all(|w| *w == 0)
    }

    /// In-place logical AND with `other`. This is how OGC removes dangling
    /// edges: `edge.bits &= src.bits & dst.bits` (§3.2).
    ///
    /// # Panics
    /// Panics on length mismatch.
    pub fn and_with(&mut self, other: &Bitset) {
        assert_eq!(self.len, other.len, "bitset length mismatch");
        for (w, o) in self.words.iter_mut().zip(&other.words) {
            *w &= o;
        }
    }

    /// In-place logical OR with `other`.
    pub fn or_with(&mut self, other: &Bitset) {
        assert_eq!(self.len, other.len, "bitset length mismatch");
        for (w, o) in self.words.iter_mut().zip(&other.words) {
            *w |= o;
        }
    }

    /// Returns `self & other` as a new bitset.
    pub fn and(&self, other: &Bitset) -> Bitset {
        let mut out = self.clone();
        out.and_with(other);
        out
    }

    /// Iterates over the indices of set positions in increasing order.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(move |(wi, w)| {
            let mut w = *w;
            std::iter::from_fn(move || {
                if w == 0 {
                    None
                } else {
                    let bit = w.trailing_zeros() as usize;
                    w &= w - 1;
                    Some(wi * 64 + bit)
                }
            })
        })
    }

    /// Builds a bitset from the indices in `ones`.
    pub fn from_ones(len: usize, ones: impl IntoIterator<Item = usize>) -> Self {
        let mut b = Bitset::new(len);
        for i in ones {
            b.set(i);
        }
        b
    }
}

impl fmt::Debug for Bitset {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for i in 0..self.len {
            write!(f, "{}", self.get(i) as u8)?;
            if i + 1 < self.len {
                write!(f, ", ")?;
            }
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_clear() {
        let mut b = Bitset::new(130);
        assert!(!b.get(0) && !b.get(129));
        b.set(0);
        b.set(64);
        b.set(129);
        assert!(b.get(0) && b.get(64) && b.get(129));
        assert_eq!(b.count_ones(), 3);
        b.clear(64);
        assert!(!b.get(64));
        assert_eq!(b.count_ones(), 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_panics() {
        let mut b = Bitset::new(10);
        b.set(10);
    }

    #[test]
    fn and_or() {
        let a = Bitset::from_ones(8, [0, 2, 4]);
        let b = Bitset::from_ones(8, [2, 3, 4]);
        assert_eq!(a.and(&b), Bitset::from_ones(8, [2, 4]));
        let mut c = a.clone();
        c.or_with(&b);
        assert_eq!(c, Bitset::from_ones(8, [0, 2, 3, 4]));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn and_length_mismatch_panics() {
        let mut a = Bitset::new(8);
        a.and_with(&Bitset::new(9));
    }

    #[test]
    fn iter_ones_crosses_word_boundaries() {
        let ones = [0usize, 1, 63, 64, 65, 127, 128];
        let b = Bitset::from_ones(130, ones);
        let got: Vec<usize> = b.iter_ones().collect();
        assert_eq!(got, ones);
    }

    #[test]
    fn none_and_empty() {
        let b = Bitset::new(70);
        assert!(b.none());
        assert!(!b.is_empty());
        assert!(Bitset::new(0).is_empty());
        let c = Bitset::from_ones(70, [69]);
        assert!(!c.none());
    }

    #[test]
    fn figure7_example() {
        // Splitter T = {[1,2), [2,7), [7,9)}; Ann=[1,1,0], Bob=[0,1,1], Cat=[1,1,1]
        let ann = Bitset::from_ones(3, [0, 1]);
        let bob = Bitset::from_ones(3, [1, 2]);
        let e1 = Bitset::from_ones(3, [1]); // valid [2,7)
                                            // Dangling-edge removal: e1 & ann & bob keeps bit 1 only.
        let mut e = e1.clone();
        e.and_with(&ann);
        e.and_with(&bob);
        assert_eq!(e, e1);
    }

    #[test]
    fn debug_format() {
        let b = Bitset::from_ones(3, [0, 2]);
        assert_eq!(format!("{b:?}"), "[1, 0, 1]");
    }
}
