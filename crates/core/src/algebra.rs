//! Additional TGA operators beyond the two zooms: temporal subgraph
//! (selection), attribute projection, and the point-semantics binary set
//! operators (union / intersection / difference).
//!
//! The paper positions `aZoom^T`/`wZoom^T` inside a compositional evolving
//! graph algebra (TGA, Moffitt & Stoyanovich, DBPL 2017); these companions
//! are what realistic pipelines combine the zooms with (slice a period,
//! select a community, project attributes, diff two revisions). All
//! operators obey the same contract: they evaluate point-wise, return a
//! valid TGraph, and coalesce their output.

use crate::coalesce::coalesce_graph;
use crate::graph::{EdgeRecord, TGraph, VertexRecord};
use crate::props::{Key, Props, Value};
use crate::time::{merge_non_overlapping, Interval};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// A predicate over an entity's property set, used by the selection
/// operators. Combinators build arbitrary boolean conditions.
#[derive(Clone)]
pub enum Predicate {
    /// Always true.
    True,
    /// The property is present (any value).
    Has(Key),
    /// Property equals the value.
    Eq(Key, Value),
    /// Property is strictly less than the value (same-variant comparison).
    Lt(Key, Value),
    /// Property is strictly greater than the value.
    Gt(Key, Value),
    /// The required type label equals the value.
    TypeIs(Arc<str>),
    /// Both sub-predicates hold.
    And(Box<Predicate>, Box<Predicate>),
    /// Either sub-predicate holds.
    Or(Box<Predicate>, Box<Predicate>),
    /// The sub-predicate does not hold.
    Not(Box<Predicate>),
}

impl Predicate {
    /// Evaluates the predicate against a property set.
    pub fn eval(&self, props: &Props) -> bool {
        match self {
            Predicate::True => true,
            Predicate::Has(k) => props.get(k).is_some(),
            Predicate::Eq(k, v) => props.get(k) == Some(v),
            Predicate::Lt(k, v) => props.get(k).is_some_and(|x| x < v),
            Predicate::Gt(k, v) => props.get(k).is_some_and(|x| x > v),
            Predicate::TypeIs(t) => props.type_label() == Some(t.as_ref()),
            Predicate::And(a, b) => a.eval(props) && b.eval(props),
            Predicate::Or(a, b) => a.eval(props) || b.eval(props),
            Predicate::Not(a) => !a.eval(props),
        }
    }

    /// `a AND b` combinator.
    pub fn and(self, other: Predicate) -> Predicate {
        Predicate::And(Box::new(self), Box::new(other))
    }

    /// `a OR b` combinator.
    pub fn or(self, other: Predicate) -> Predicate {
        Predicate::Or(Box::new(self), Box::new(other))
    }

    /// `NOT a` combinator.
    pub fn negate(self) -> Predicate {
        Predicate::Not(Box::new(self))
    }

    /// Convenience: `key == value`.
    pub fn eq(key: &str, value: impl Into<Value>) -> Predicate {
        Predicate::Eq(Arc::from(key), value.into())
    }

    /// Convenience: `key` present.
    pub fn has(key: &str) -> Predicate {
        Predicate::Has(Arc::from(key))
    }
}

impl fmt::Debug for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Predicate::True => write!(f, "true"),
            Predicate::Has(k) => write!(f, "has({k})"),
            Predicate::Eq(k, v) => write!(f, "{k} == {v}"),
            Predicate::Lt(k, v) => write!(f, "{k} < {v}"),
            Predicate::Gt(k, v) => write!(f, "{k} > {v}"),
            Predicate::TypeIs(t) => write!(f, "type == {t}"),
            Predicate::And(a, b) => write!(f, "({a:?} && {b:?})"),
            Predicate::Or(a, b) => write!(f, "({a:?} || {b:?})"),
            Predicate::Not(a) => write!(f, "!({a:?})"),
        }
    }
}

/// Point-wise interval subtraction helper: `a` minus all of `mask`.
fn subtract_all(a: Interval, mask: &[Interval]) -> Vec<Interval> {
    let mut pieces = vec![a];
    for m in mask {
        pieces = pieces
            .into_iter()
            .flat_map(|p| match p.intersect(m) {
                None => vec![p],
                Some(x) => {
                    let mut out = Vec::new();
                    if p.start < x.start {
                        out.push(Interval::new(p.start, x.start));
                    }
                    if x.end < p.end {
                        out.push(Interval::new(x.end, p.end));
                    }
                    out
                }
            })
            .collect();
    }
    pieces
}

/// Temporal subgraph (selection): keeps vertex states satisfying
/// `vertex_pred` and edge states satisfying `edge_pred`, then clips every
/// edge to the periods during which both endpoints survive — so the result
/// is a valid TGraph at every point.
pub fn subgraph(g: &TGraph, vertex_pred: &Predicate, edge_pred: &Predicate) -> TGraph {
    let vertices: Vec<VertexRecord> = g
        .vertices
        .iter()
        .filter(|v| vertex_pred.eval(&v.props))
        .cloned()
        .collect();
    // Surviving existence periods per vertex.
    let mut alive: HashMap<crate::graph::VertexId, Vec<Interval>> = HashMap::new();
    for v in &vertices {
        alive.entry(v.vid).or_default().push(v.interval);
    }
    for periods in alive.values_mut() {
        *periods = merge_non_overlapping(periods.clone());
    }
    let empty: Vec<Interval> = Vec::new();
    let edges: Vec<EdgeRecord> = g
        .edges
        .iter()
        .filter(|e| edge_pred.eval(&e.props))
        .flat_map(|e| {
            let src_alive = alive.get(&e.src).unwrap_or(&empty);
            let dst_alive = alive.get(&e.dst).unwrap_or(&empty);
            let joint = crate::time::intersect_interval_sets(src_alive, dst_alive);
            joint
                .into_iter()
                .filter_map(|iv| iv.intersect(&e.interval))
                .map(|interval| EdgeRecord {
                    interval,
                    ..e.clone()
                })
                .collect::<Vec<_>>()
        })
        .collect();
    coalesce_graph(&TGraph {
        lifespan: g.lifespan,
        vertices,
        edges,
    })
}

/// Attribute projection: restricts vertex properties to `vertex_keys` and
/// edge properties to `edge_keys` (the `type` label is always kept), then
/// coalesces — states that differed only in projected-away attributes merge.
pub fn project(g: &TGraph, vertex_keys: &[&str], edge_keys: &[&str]) -> TGraph {
    let vertices = g
        .vertices
        .iter()
        .map(|v| VertexRecord {
            props: v.props.project(vertex_keys),
            ..v.clone()
        })
        .collect();
    let edges = g
        .edges
        .iter()
        .map(|e| EdgeRecord {
            props: e.props.project(edge_keys),
            ..e.clone()
        })
        .collect();
    coalesce_graph(&TGraph {
        lifespan: g.lifespan,
        vertices,
        edges,
    })
}

/// Point-semantics union: an entity exists in the result wherever it exists
/// in either input. Where both inputs assert a state for the same entity at
/// the same point with *different* properties, the left operand wins (the
/// overlap is carved out of the right operand's states).
pub fn union(left: &TGraph, right: &TGraph) -> TGraph {
    // Left-entity occupancy masks.
    let mut v_mask: HashMap<crate::graph::VertexId, Vec<Interval>> = HashMap::new();
    for v in &left.vertices {
        v_mask.entry(v.vid).or_default().push(v.interval);
    }
    // Edge facts are masked by edge id alone: an edge exists at most once at
    // any time point (ρ assigns one endpoint pair), so where the operands
    // disagree on an edge's endpoints, the left operand's fact wins.
    let mut e_mask: HashMap<crate::graph::EdgeId, Vec<Interval>> = HashMap::new();
    for e in &left.edges {
        e_mask.entry(e.eid).or_default().push(e.interval);
    }

    let mut vertices = left.vertices.clone();
    for v in &right.vertices {
        let mask = v_mask.get(&v.vid).cloned().unwrap_or_default();
        for piece in subtract_all(v.interval, &mask) {
            vertices.push(VertexRecord {
                interval: piece,
                ..v.clone()
            });
        }
    }
    let mut edges = left.edges.clone();
    for e in &right.edges {
        let mask = e_mask.get(&e.eid).cloned().unwrap_or_default();
        for piece in subtract_all(e.interval, &mask) {
            edges.push(EdgeRecord {
                interval: piece,
                ..e.clone()
            });
        }
    }
    clip_dangling(&TGraph {
        lifespan: left.lifespan.hull(&right.lifespan),
        vertices,
        edges,
    })
}

/// Point-semantics intersection: an entity state survives exactly where both
/// inputs hold it **with value-equivalent properties**.
pub fn intersection(left: &TGraph, right: &TGraph) -> TGraph {
    let mut r_vertices: HashMap<crate::graph::VertexId, Vec<(Interval, Props)>> = HashMap::new();
    for v in &right.vertices {
        r_vertices
            .entry(v.vid)
            .or_default()
            .push((v.interval, v.props.clone()));
    }
    let mut vertices = Vec::new();
    for v in &left.vertices {
        if let Some(states) = r_vertices.get(&v.vid) {
            for (iv, props) in states {
                if *props == v.props {
                    if let Some(x) = v.interval.intersect(iv) {
                        vertices.push(VertexRecord {
                            interval: x,
                            ..v.clone()
                        });
                    }
                }
            }
        }
    }
    let mut r_edges: HashMap<
        (
            crate::graph::EdgeId,
            crate::graph::VertexId,
            crate::graph::VertexId,
        ),
        Vec<(Interval, Props)>,
    > = HashMap::new();
    for e in &right.edges {
        r_edges
            .entry((e.eid, e.src, e.dst))
            .or_default()
            .push((e.interval, e.props.clone()));
    }
    let mut edges = Vec::new();
    for e in &left.edges {
        if let Some(states) = r_edges.get(&(e.eid, e.src, e.dst)) {
            for (iv, props) in states {
                if *props == e.props {
                    if let Some(x) = e.interval.intersect(iv) {
                        edges.push(EdgeRecord {
                            interval: x,
                            ..e.clone()
                        });
                    }
                }
            }
        }
    }
    // Validity: drop edge pieces whose endpoints did not survive.
    let g = TGraph {
        lifespan: left.lifespan.hull(&right.lifespan),
        vertices,
        edges,
    };
    clip_dangling(&g)
}

/// Point-semantics difference: an entity state survives wherever the entity
/// exists in `left` but not in `right` (regardless of attribute values).
pub fn difference(left: &TGraph, right: &TGraph) -> TGraph {
    let mut v_mask: HashMap<crate::graph::VertexId, Vec<Interval>> = HashMap::new();
    for v in &right.vertices {
        v_mask.entry(v.vid).or_default().push(v.interval);
    }
    // As with union, edge existence is keyed by edge id alone.
    let mut e_mask: HashMap<crate::graph::EdgeId, Vec<Interval>> = HashMap::new();
    for e in &right.edges {
        e_mask.entry(e.eid).or_default().push(e.interval);
    }
    let mut vertices = Vec::new();
    for v in &left.vertices {
        let mask = v_mask.get(&v.vid).cloned().unwrap_or_default();
        for piece in subtract_all(v.interval, &mask) {
            vertices.push(VertexRecord {
                interval: piece,
                ..v.clone()
            });
        }
    }
    let mut edges = Vec::new();
    for e in &left.edges {
        let mask = e_mask.get(&e.eid).cloned().unwrap_or_default();
        for piece in subtract_all(e.interval, &mask) {
            edges.push(EdgeRecord {
                interval: piece,
                ..e.clone()
            });
        }
    }
    clip_dangling(&TGraph {
        lifespan: left.lifespan,
        vertices,
        edges,
    })
}

/// Clips edges to their endpoints' existence and coalesces — the generic
/// validity-restoring postlude of the binary operators.
fn clip_dangling(g: &TGraph) -> TGraph {
    let mut alive: HashMap<crate::graph::VertexId, Vec<Interval>> = HashMap::new();
    for v in &g.vertices {
        alive.entry(v.vid).or_default().push(v.interval);
    }
    for periods in alive.values_mut() {
        *periods = merge_non_overlapping(periods.clone());
    }
    let empty: Vec<Interval> = Vec::new();
    let edges = g
        .edges
        .iter()
        .flat_map(|e| {
            let joint = crate::time::intersect_interval_sets(
                alive.get(&e.src).unwrap_or(&empty),
                alive.get(&e.dst).unwrap_or(&empty),
            );
            joint
                .into_iter()
                .filter_map(|iv| iv.intersect(&e.interval))
                .map(|interval| EdgeRecord {
                    interval,
                    ..e.clone()
                })
                .collect::<Vec<_>>()
        })
        .collect();
    coalesce_graph(&TGraph {
        lifespan: g.lifespan,
        vertices: g.vertices.clone(),
        edges,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::figure1_graph_stable_ids;
    use crate::validate::validate;

    #[test]
    fn predicate_evaluation() {
        let p = Props::typed("person")
            .with("school", "MIT")
            .with("age", 30i64);
        assert!(Predicate::True.eval(&p));
        assert!(Predicate::has("school").eval(&p));
        assert!(!Predicate::has("city").eval(&p));
        assert!(Predicate::eq("school", "MIT").eval(&p));
        assert!(!Predicate::eq("school", "CMU").eval(&p));
        assert!(Predicate::Lt(Arc::from("age"), Value::Int(40)).eval(&p));
        assert!(Predicate::Gt(Arc::from("age"), Value::Int(18)).eval(&p));
        assert!(Predicate::TypeIs(Arc::from("person")).eval(&p));
        assert!(Predicate::eq("school", "MIT")
            .and(Predicate::has("age"))
            .eval(&p));
        assert!(Predicate::eq("school", "CMU")
            .or(Predicate::has("age"))
            .eval(&p));
        assert!(Predicate::eq("school", "CMU").negate().eval(&p));
    }

    #[test]
    fn subgraph_clips_edges_to_surviving_endpoints() {
        let g = figure1_graph_stable_ids();
        // Keep only MIT people: Ann [1,7), Cat [1,9); Bob is dropped.
        let sub = subgraph(&g, &Predicate::eq("school", "MIT"), &Predicate::True);
        assert!(validate(&sub).is_empty());
        assert_eq!(sub.distinct_vertex_count(), 2);
        // Both edges touch Bob, so no edge survives.
        assert!(sub.edges.is_empty());
    }

    #[test]
    fn subgraph_partial_state_survival() {
        let g = figure1_graph_stable_ids();
        // Keep people *with any* school: Bob only during [5,9).
        let sub = subgraph(&g, &Predicate::has("school"), &Predicate::True);
        assert!(validate(&sub).is_empty());
        let bob: Vec<_> = sub.vertices.iter().filter(|v| v.vid.0 == 2).collect();
        assert_eq!(bob.len(), 1);
        assert_eq!(bob[0].interval, Interval::new(5, 9));
        // e1 (Ann→Bob, [2,7)) survives only while Bob has a school: [5,7).
        let e1 = sub.edges.iter().find(|e| e.eid.0 == 1).unwrap();
        assert_eq!(e1.interval, Interval::new(5, 7));
        // e2 (Bob→Cat, [7,9)) survives fully.
        assert!(sub
            .edges
            .iter()
            .any(|e| e.eid.0 == 2 && e.interval == Interval::new(7, 9)));
    }

    #[test]
    fn subgraph_edge_predicate() {
        let g = figure1_graph_stable_ids();
        let sub = subgraph(&g, &Predicate::True, &Predicate::eq("type", "nope"));
        assert_eq!(sub.vertex_tuple_count(), g.vertex_tuple_count());
        assert!(sub.edges.is_empty());
    }

    #[test]
    fn project_merges_states_differing_only_in_dropped_keys() {
        let g = figure1_graph_stable_ids();
        // Project away `school`: Bob's two states become value-equivalent
        // and coalesce into one tuple [2,9).
        let p = project(&g, &["name"], &[]);
        assert!(validate(&p).is_empty());
        let bob: Vec<_> = p.vertices.iter().filter(|v| v.vid.0 == 2).collect();
        assert_eq!(bob.len(), 1);
        assert_eq!(bob[0].interval, Interval::new(2, 9));
        assert!(bob[0].props.get("school").is_none());
        assert_eq!(bob[0].props.get("name").unwrap().as_str(), Some("Bob"));
    }

    #[test]
    fn union_left_wins_on_conflict() {
        let a = TGraph::from_records(
            vec![VertexRecord::new(
                1,
                Interval::new(0, 4),
                Props::typed("n").with("x", 1i64),
            )],
            vec![],
        );
        let b = TGraph::from_records(
            vec![VertexRecord::new(
                1,
                Interval::new(2, 6),
                Props::typed("n").with("x", 2i64),
            )],
            vec![],
        );
        let u = union(&a, &b);
        assert!(validate(&u).is_empty());
        let mut states = u.vertices.clone();
        states.sort_by_key(|v| v.interval.start);
        assert_eq!(states.len(), 2);
        assert_eq!(states[0].interval, Interval::new(0, 4));
        assert_eq!(states[0].props.get("x").unwrap().as_int(), Some(1));
        assert_eq!(states[1].interval, Interval::new(4, 6));
        assert_eq!(states[1].props.get("x").unwrap().as_int(), Some(2));
    }

    #[test]
    fn union_with_self_is_identity() {
        let g = coalesce_graph(&figure1_graph_stable_ids());
        let u = union(&g, &g);
        assert_eq!(u.vertices, g.vertices);
        assert_eq!(u.edges, g.edges);
    }

    #[test]
    fn intersection_requires_value_equivalence() {
        let a = TGraph::from_records(
            vec![VertexRecord::new(
                1,
                Interval::new(0, 6),
                Props::typed("n").with("x", 1i64),
            )],
            vec![],
        );
        let b = TGraph::from_records(
            vec![
                VertexRecord::new(1, Interval::new(2, 4), Props::typed("n").with("x", 1i64)),
                VertexRecord::new(1, Interval::new(4, 8), Props::typed("n").with("x", 2i64)),
            ],
            vec![],
        );
        let i = intersection(&a, &b);
        assert_eq!(i.vertices.len(), 1);
        assert_eq!(i.vertices[0].interval, Interval::new(2, 4));
    }

    #[test]
    fn intersection_with_self_is_identity() {
        let g = coalesce_graph(&figure1_graph_stable_ids());
        let i = intersection(&g, &g);
        assert_eq!(i.vertices, g.vertices);
        assert_eq!(i.edges, g.edges);
    }

    #[test]
    fn difference_subtracts_existence() {
        let g = figure1_graph_stable_ids();
        let slice = g.slice(Interval::new(1, 5));
        let d = difference(&g, &slice);
        assert!(validate(&d).is_empty());
        // Everything before t=5 is gone.
        assert!(d.vertices.iter().all(|v| v.interval.start >= 5));
        // Ann [1,7) leaves [5,7).
        let ann = d.vertices.iter().find(|v| v.vid.0 == 1).unwrap();
        assert_eq!(ann.interval, Interval::new(5, 7));
        // Difference with self is empty.
        let e = difference(&g, &g);
        assert!(e.vertices.is_empty() && e.edges.is_empty());
    }

    #[test]
    fn difference_removes_dangling_edges() {
        let g = figure1_graph_stable_ids();
        // Remove only Bob.
        let bob_only = TGraph::from_records(
            g.vertices
                .iter()
                .filter(|v| v.vid.0 == 2)
                .cloned()
                .collect(),
            vec![],
        );
        let d = difference(&g, &bob_only);
        assert!(validate(&d).is_empty());
        assert!(d.vertices.iter().all(|v| v.vid.0 != 2));
        assert!(d.edges.is_empty(), "all edges touched Bob");
    }

    #[test]
    fn union_is_commutative_on_disjoint_graphs() {
        let g = figure1_graph_stable_ids();
        let early = g.slice(Interval::new(1, 4));
        let late = g.slice(Interval::new(4, 9));
        let ab = union(&early, &late);
        let ba = union(&late, &early);
        assert_eq!(ab.vertices, ba.vertices);
        assert_eq!(ab.edges, ba.edges);
        // And reassembles the original coalesced graph.
        let expected = coalesce_graph(&g);
        assert_eq!(ab.vertices, expected.vertices);
        assert_eq!(ab.edges, expected.edges);
    }
}
