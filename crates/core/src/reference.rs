//! Point-semantics reference evaluator for both zoom operators.
//!
//! This module implements `aZoom^T` and `wZoom^T` *literally by their
//! semantics*, with no concern for efficiency:
//!
//! * `aZoom^T` is evaluated under snapshot reducibility (§2.2): the
//!   non-temporal node-creation operator runs independently over the state of
//!   the graph at **every single time point**, and the per-point results are
//!   coalesced into maximal intervals.
//! * `wZoom^T` is evaluated per window directly from the definition (§2.3):
//!   an entity's coverage of each window decides retention, resolve functions
//!   pick representative attribute values, dangling edges are removed, and
//!   the result is coalesced.
//!
//! Every physical representation in `tgraph-repr` is tested for equality
//! against these evaluators, which is what "correct under point semantics"
//! means operationally.

use crate::coalesce::coalesce_graph;
use crate::graph::{EdgeRecord, StaticGraph, TGraph, VertexRecord};
use crate::props::Props;
use crate::time::Interval;
use crate::zoom::azoom::AZoomSpec;
use crate::zoom::wzoom::{window_relation, WZoomSpec};
use std::collections::HashMap;

/// Applies the *non-temporal* node-creation operator to a single snapshot.
///
/// Returns the zoomed conventional graph: one node per group (with aggregated
/// attributes) and every input edge re-pointed to group nodes, keeping only
/// edges whose two endpoints both participate in groups.
pub fn azoom_static(snapshot: &StaticGraph, spec: &AZoomSpec) -> StaticGraph {
    use crate::graph::VertexId;

    // Group member vertices by Skolem id.
    let mut groups: HashMap<u64, (Props, Vec<Props>)> = HashMap::new();
    let mut mapping: HashMap<VertexId, u64> = HashMap::new();
    for (vid, props) in &snapshot.vertices {
        if let Some((gid, base)) = spec.skolemize(*vid, props) {
            mapping.insert(*vid, gid);
            groups
                .entry(gid)
                .or_insert_with(|| (base, Vec::new()))
                .1
                .push(props.clone());
        }
    }

    let mut out = StaticGraph::default();
    for (gid, (base, members)) in groups {
        let props = spec.aggregate(base, members);
        out.vertices.insert(VertexId(gid), props);
    }
    // Re-point edges; drop those with an unmapped endpoint.
    for (eid, (src, dst, props)) in &snapshot.edges {
        if let (Some(gs), Some(gd)) = (mapping.get(src), mapping.get(dst)) {
            out.edges
                .insert(*eid, (VertexId(*gs), VertexId(*gd), props.clone()));
        }
    }
    out
}

/// Reference `aZoom^T`: per-time-point evaluation followed by coalescing.
pub fn azoom_reference(g: &TGraph, spec: &AZoomSpec) -> TGraph {
    let mut vertices: Vec<VertexRecord> = Vec::new();
    let mut edges: Vec<EdgeRecord> = Vec::new();
    for t in g.lifespan.points() {
        let zoomed = azoom_static(&g.at(t), spec);
        for (vid, props) in zoomed.vertices {
            vertices.push(VertexRecord {
                vid,
                interval: Interval::point(t),
                props,
            });
        }
        for (eid, (src, dst, props)) in zoomed.edges {
            edges.push(EdgeRecord {
                eid,
                src,
                dst,
                interval: Interval::point(t),
                props,
            });
        }
    }
    let mut out = TGraph {
        lifespan: g.lifespan,
        vertices,
        edges,
    };
    out = coalesce_graph(&out);
    out
}

/// Reference `wZoom^T`: per-window evaluation from the definition.
///
/// The input need not be pre-coalesced: the evaluator coalesces internally
/// first, which is exactly the correctness requirement the paper states for
/// physical implementations (§3.2).
pub fn wzoom_reference(g: &TGraph, spec: &WZoomSpec) -> TGraph {
    let g = coalesce_graph(g);
    let windows = window_relation(g.lifespan, &g.change_points(), spec.window);
    if windows.is_empty() {
        return TGraph {
            lifespan: g.lifespan,
            ..TGraph::new()
        };
    }

    // Vertex retention and resolution per window.
    let mut out_vertices: Vec<VertexRecord> = Vec::new();
    let mut kept: HashMap<(usize, crate::graph::VertexId), bool> = HashMap::new();
    {
        // Collect states per (vertex, window).
        let mut per: HashMap<(usize, crate::graph::VertexId), Vec<(Interval, Props)>> =
            HashMap::new();
        for v in &g.vertices {
            for (idx, w) in windows.iter().enumerate() {
                if let Some(covered) = v.interval.intersect(w) {
                    per.entry((idx, v.vid))
                        .or_default()
                        .push((covered, v.props.clone()));
                }
            }
        }
        for ((idx, vid), states) in per {
            let window = windows[idx];
            let covered: u64 = states.iter().map(|(iv, _)| iv.len()).sum();
            let r = covered as f64 / window.len() as f64;
            if spec.vertex_quantifier.satisfied(r) {
                let props = spec.resolve_vertex(&states);
                out_vertices.push(VertexRecord {
                    vid,
                    interval: window,
                    props,
                });
                kept.insert((idx, vid), true);
            }
        }
    }

    // Edge retention, resolution, and dangling-edge removal per window.
    let mut out_edges: Vec<EdgeRecord> = Vec::new();
    {
        let mut per: HashMap<
            (
                usize,
                crate::graph::EdgeId,
                crate::graph::VertexId,
                crate::graph::VertexId,
            ),
            Vec<(Interval, Props)>,
        > = HashMap::new();
        for e in &g.edges {
            for (idx, w) in windows.iter().enumerate() {
                if let Some(covered) = e.interval.intersect(w) {
                    per.entry((idx, e.eid, e.src, e.dst))
                        .or_default()
                        .push((covered, e.props.clone()));
                }
            }
        }
        for ((idx, eid, src, dst), states) in per {
            let window = windows[idx];
            let covered: u64 = states.iter().map(|(iv, _)| iv.len()).sum();
            let r = covered as f64 / window.len() as f64;
            if !spec.edge_quantifier.satisfied(r) {
                continue;
            }
            // Validity: both endpoints must be retained in this window.
            if !kept.contains_key(&(idx, src)) || !kept.contains_key(&(idx, dst)) {
                continue;
            }
            let props = spec.resolve_edge(&states);
            out_edges.push(EdgeRecord {
                eid,
                src,
                dst,
                interval: window,
                props,
            });
        }
    }

    let lifespan = Interval::hull_of(&windows);
    coalesce_graph(&TGraph {
        lifespan,
        vertices: out_vertices,
        edges: out_edges,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{figure1_graph_stable_ids, VertexId};
    use crate::props::Value;
    use crate::validate::validate;
    use crate::zoom::azoom::AggSpec;
    use crate::zoom::wzoom::{Quantifier, ResolveFn};

    fn school_spec() -> AZoomSpec {
        AZoomSpec::by_property("school", "school", vec![AggSpec::count("students")])
    }

    /// Reproduces Figure 2 exactly.
    #[test]
    fn azoom_reference_figure2() {
        let g = figure1_graph_stable_ids();
        let z = azoom_reference(&g, &school_spec());
        assert!(
            validate(&z).is_empty(),
            "zoom output must be a valid TGraph"
        );

        // Find MIT and CMU nodes.
        let mit: Vec<_> = z
            .vertices
            .iter()
            .filter(|v| v.props.get("school").and_then(Value::as_str) == Some("MIT"))
            .collect();
        let cmu: Vec<_> = z
            .vertices
            .iter()
            .filter(|v| v.props.get("school").and_then(Value::as_str) == Some("CMU"))
            .collect();

        // MIT: students=2 during [1,7) (Ann+Cat), students=1 during [7,9).
        assert_eq!(mit.len(), 2);
        let mit2 = mit
            .iter()
            .find(|v| v.interval == Interval::new(1, 7))
            .unwrap();
        assert_eq!(mit2.props.get("students"), Some(&Value::Int(2)));
        let mit1 = mit
            .iter()
            .find(|v| v.interval == Interval::new(7, 9))
            .unwrap();
        assert_eq!(mit1.props.get("students"), Some(&Value::Int(1)));

        // CMU: students=1 during [5,9).
        assert_eq!(cmu.len(), 1);
        assert_eq!(cmu[0].interval, Interval::new(5, 9));
        assert_eq!(cmu[0].props.get("students"), Some(&Value::Int(1)));

        // e1 redirected MIT→CMU, valid only [5,7) (Bob not at CMU before 5).
        // e2 redirected CMU→MIT, valid [7,9).
        assert_eq!(z.edges.len(), 2);
        let e1 = z.edges.iter().find(|e| e.eid.0 == 1).unwrap();
        assert_eq!(e1.interval, Interval::new(5, 7));
        let e2 = z.edges.iter().find(|e| e.eid.0 == 2).unwrap();
        assert_eq!(e2.interval, Interval::new(7, 9));
        // Endpoint checks: e1 goes MIT group → CMU group.
        assert_eq!(e1.src, mit2.vid);
        assert_eq!(e1.dst, cmu[0].vid);
        assert_eq!(e2.src, cmu[0].vid);
        assert_eq!(e2.dst, mit2.vid);
        assert_ne!(mit2.vid, cmu[0].vid);
    }

    /// Reproduces Figure 3 / Example 2.3 for `all` quantification.
    #[test]
    fn wzoom_reference_figure3_all() {
        let g = figure1_graph_stable_ids();
        let spec = WZoomSpec::points(3, Quantifier::All, Quantifier::All)
            .with_vertex_override("school", ResolveFn::Last);
        let z = wzoom_reference(&g, &spec);
        assert!(validate(&z).is_empty());

        let find = |vid: u64| -> Vec<&VertexRecord> {
            z.vertices
                .iter()
                .filter(|v| v.vid == VertexId(vid))
                .collect()
        };
        // Ann: present for all of W1 and W2 → [1,7).
        let ann = find(1);
        assert_eq!(ann.len(), 1);
        assert_eq!(ann[0].interval, Interval::new(1, 7));
        // Bob: all of W2 only → [4,7).
        let bob = find(2);
        assert_eq!(bob.len(), 1);
        assert_eq!(bob[0].interval, Interval::new(4, 7));
        // Figure 3: Bob's school resolves to CMU via last(school).
        assert_eq!(bob[0].props.get("school").unwrap().as_str(), Some("CMU"));
        // Cat: all of W1, W2; only [7,9) of W3=[7,10) → [1,7).
        let cat = find(3);
        assert_eq!(cat.len(), 1);
        assert_eq!(cat[0].interval, Interval::new(1, 7));

        // e1 [2,7): covers all of W2 only → [4,7). e2 [7,9): partial W3 → dropped.
        assert_eq!(z.edges.len(), 1);
        assert_eq!(z.edges[0].eid.0, 1);
        assert_eq!(z.edges[0].interval, Interval::new(4, 7));
    }

    /// Example 2.3's `exists` cases.
    #[test]
    fn wzoom_reference_figure3_exists() {
        let g = figure1_graph_stable_ids();
        let spec = WZoomSpec::points(3, Quantifier::Exists, Quantifier::Exists);
        let z = wzoom_reference(&g, &spec);
        assert!(validate(&z).is_empty());

        let find = |vid: u64| -> Vec<&VertexRecord> {
            z.vertices
                .iter()
                .filter(|v| v.vid == VertexId(vid))
                .collect()
        };
        // Bob: exists in W1, W2, W3 → retained over [1,10). His resolved
        // attributes change between W1 (no school) and W2/W3 (school=CMU via
        // the default `any` resolve, which picks his longest state), so the
        // coalesced result has two tuples covering [1,10).
        let mut bob = find(2);
        bob.sort_by_key(|v| v.interval.start);
        assert_eq!(bob.len(), 2);
        assert_eq!(bob[0].interval, Interval::new(1, 4));
        assert!(bob[0].props.get("school").is_none());
        assert_eq!(bob[1].interval, Interval::new(4, 10));
        assert_eq!(bob[1].props.get("school").unwrap().as_str(), Some("CMU"));
        // Cat exists in all three windows → [1,10).
        let cat = find(3);
        assert_eq!(cat[0].interval, Interval::new(1, 10));
        // Ann: W1+W2 → [1,7).
        assert_eq!(find(1)[0].interval, Interval::new(1, 7));
        // e2 exists in W3 → [7,10).
        let e2 = z.edges.iter().find(|e| e.eid.0 == 2).unwrap();
        assert_eq!(e2.interval, Interval::new(7, 10));
    }

    #[test]
    fn wzoom_window_finer_than_resolution_is_identity_shaped() {
        // 1-point windows: every state is kept verbatim (quantifier always
        // satisfied), so the result equals the coalesced input.
        let g = figure1_graph_stable_ids();
        let spec = WZoomSpec::points(1, Quantifier::All, Quantifier::All);
        let z = wzoom_reference(&g, &spec);
        let c = coalesce_graph(&g);
        assert_eq!(z.vertices, c.vertices);
        assert_eq!(z.edges, c.edges);
    }

    #[test]
    fn wzoom_dangling_edges_removed() {
        // vq=All, eq=Exists: edges can pass while endpoints fail.
        let g = figure1_graph_stable_ids();
        let spec = WZoomSpec::points(3, Quantifier::All, Quantifier::Exists);
        let z = wzoom_reference(&g, &spec);
        assert!(validate(&z).is_empty(), "no dangling edges may survive");
        // e2 [7,9) exists in W3 but Cat fails `all` in W3 → e2 dropped.
        assert!(z.edges.iter().all(|e| e.eid.0 != 2));
    }

    #[test]
    fn azoom_empty_graph() {
        let z = azoom_reference(&TGraph::new(), &school_spec());
        assert!(z.is_empty());
    }

    #[test]
    fn wzoom_changes_windows() {
        let g = figure1_graph_stable_ids();
        // 2-change windows over elementary [1,2),[2,5),[5,7),[7,9) → [1,5),[5,9).
        let spec = WZoomSpec {
            window: crate::zoom::wzoom::WindowSpec::Changes(2),
            vertex_quantifier: Quantifier::Exists,
            edge_quantifier: Quantifier::Exists,
            vertex_resolve: ResolveFn::Last,
            edge_resolve: ResolveFn::Any,
            vertex_overrides: vec![],
            edge_overrides: vec![],
        };
        let z = wzoom_reference(&g, &spec);
        assert!(validate(&z).is_empty());
        // Ann exists in both windows → [1,9).
        let ann: Vec<_> = z.vertices.iter().filter(|v| v.vid.0 == 1).collect();
        assert_eq!(ann.len(), 1);
        assert_eq!(ann[0].interval, Interval::new(1, 9));
    }

    #[test]
    fn azoom_then_validate_intermediate_snapshots() {
        // Every snapshot of the azoom output must itself be a valid graph.
        let g = figure1_graph_stable_ids();
        let z = azoom_reference(&g, &school_spec());
        for t in z.lifespan.points() {
            assert!(z.at(t).is_valid(), "snapshot at {t} invalid");
        }
    }
}
