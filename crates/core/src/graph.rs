//! The TGraph logical model (Definition 2.1): temporal vertex and edge
//! records, and the canonical in-memory interchange representation.
//!
//! A `TGraph` here is the *logical* graph — a flat, possibly uncoalesced
//! collection of vertex and edge facts, each valid during a closed-open
//! interval. The four *physical* representations of §3 (RG, VE, OG, OGC) live
//! in the `tgraph-repr` crate and convert to/from this type.

use crate::props::Props;
use crate::time::{Interval, Time};
use std::collections::BTreeMap;
use std::fmt;

/// Identifier of a vertex. `u64` to mirror the paper's use of `long` ids for
/// GraphX interoperability.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VertexId(pub u64);

/// Identifier of an edge. Edges have identity of their own because a TGraph
/// is a multigraph: multiple edges may connect the same pair of vertices.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EdgeId(pub u64);

impl fmt::Debug for VertexId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}
impl fmt::Debug for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}
impl fmt::Display for VertexId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}
impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// One temporal fact about a vertex: during `interval`, vertex `vid` existed
/// and carried exactly the properties `props`.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct VertexRecord {
    /// Vertex identity, stable across its whole history.
    pub vid: VertexId,
    /// Period of validity of this state, closed-open.
    pub interval: Interval,
    /// Property assignment during `interval` (must include `type`).
    pub props: Props,
}

impl VertexRecord {
    /// Creates a vertex fact.
    pub fn new(vid: u64, interval: Interval, props: Props) -> Self {
        VertexRecord {
            vid: VertexId(vid),
            interval,
            props,
        }
    }
}

/// One temporal fact about an edge: during `interval`, edge `eid` connected
/// `src` to `dst` carrying `props`.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct EdgeRecord {
    /// Edge identity, stable across its whole history.
    pub eid: EdgeId,
    /// Source vertex (the ρ function of Definition 2.1 is total and
    /// time-invariant: an edge's endpoints never change).
    pub src: VertexId,
    /// Destination vertex.
    pub dst: VertexId,
    /// Period of validity of this state, closed-open.
    pub interval: Interval,
    /// Property assignment during `interval` (must include `type`).
    pub props: Props,
}

impl EdgeRecord {
    /// Creates an edge fact.
    pub fn new(eid: u64, src: u64, dst: u64, interval: Interval, props: Props) -> Self {
        EdgeRecord {
            eid: EdgeId(eid),
            src: VertexId(src),
            dst: VertexId(dst),
            interval,
            props,
        }
    }
}

/// The logical evolving property graph: a bag of temporal vertex and edge
/// facts plus the graph's overall lifespan.
///
/// Records for the same entity must not overlap in time (an entity exists at
/// most once at any time point); [`crate::validate`] checks this along with
/// the referential conditions of Definition 2.1.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TGraph {
    /// Hull of all validity periods; the graph's recorded lifetime.
    pub lifespan: Interval,
    /// Vertex facts, in no particular order.
    pub vertices: Vec<VertexRecord>,
    /// Edge facts, in no particular order.
    pub edges: Vec<EdgeRecord>,
}

impl TGraph {
    /// Creates an empty TGraph with an empty lifespan.
    pub fn new() -> Self {
        TGraph {
            lifespan: Interval::empty(),
            vertices: Vec::new(),
            edges: Vec::new(),
        }
    }

    /// Builds a TGraph from records, deriving the lifespan as the hull of all
    /// record intervals.
    pub fn from_records(vertices: Vec<VertexRecord>, edges: Vec<EdgeRecord>) -> Self {
        let mut lifespan = Interval::empty();
        for v in &vertices {
            lifespan = lifespan.hull(&v.interval);
        }
        for e in &edges {
            lifespan = lifespan.hull(&e.interval);
        }
        TGraph {
            lifespan,
            vertices,
            edges,
        }
    }

    /// Number of vertex facts (tuples, not distinct vertices).
    pub fn vertex_tuple_count(&self) -> usize {
        self.vertices.len()
    }

    /// Number of edge facts (tuples, not distinct edges).
    pub fn edge_tuple_count(&self) -> usize {
        self.edges.len()
    }

    /// Number of distinct vertices.
    pub fn distinct_vertex_count(&self) -> usize {
        let mut ids: Vec<u64> = self.vertices.iter().map(|v| v.vid.0).collect();
        ids.sort_unstable();
        ids.dedup();
        ids.len()
    }

    /// Number of distinct edges.
    pub fn distinct_edge_count(&self) -> usize {
        let mut ids: Vec<u64> = self.edges.iter().map(|e| e.eid.0).collect();
        ids.sort_unstable();
        ids.dedup();
        ids.len()
    }

    /// Whether the graph holds no facts at all.
    pub fn is_empty(&self) -> bool {
        self.vertices.is_empty() && self.edges.is_empty()
    }

    /// Restricts the graph to facts overlapping `range`, clipping intervals.
    /// This mirrors the `GraphLoader` date-range filter of §4.
    pub fn slice(&self, range: Interval) -> TGraph {
        let vertices = self
            .vertices
            .iter()
            .filter_map(|v| {
                v.interval.intersect(&range).map(|iv| VertexRecord {
                    vid: v.vid,
                    interval: iv,
                    props: v.props.clone(),
                })
            })
            .collect();
        let edges = self
            .edges
            .iter()
            .filter_map(|e| {
                e.interval.intersect(&range).map(|iv| EdgeRecord {
                    eid: e.eid,
                    src: e.src,
                    dst: e.dst,
                    interval: iv,
                    props: e.props.clone(),
                })
            })
            .collect();
        TGraph::from_records(vertices, edges)
    }

    /// The state of the graph at a single time point `t` — a conventional
    /// property graph (the "snapshot" the paper's point semantics evaluate
    /// non-temporal operators over).
    pub fn at(&self, t: Time) -> StaticGraph {
        let mut vertices = BTreeMap::new();
        for v in &self.vertices {
            if v.interval.contains(t) {
                vertices.insert(v.vid, v.props.clone());
            }
        }
        let mut edges = BTreeMap::new();
        for e in &self.edges {
            if e.interval.contains(t) {
                edges.insert(e.eid, (e.src, e.dst, e.props.clone()));
            }
        }
        StaticGraph { vertices, edges }
    }

    /// The sorted set of time points at which *anything* changes: a fact
    /// starts or ends. Between two consecutive change points the graph is
    /// constant; these boundaries induce the snapshot sequence of §3.
    pub fn change_points(&self) -> Vec<Time> {
        let mut pts = Vec::with_capacity(2 * (self.vertices.len() + self.edges.len()));
        for v in &self.vertices {
            pts.push(v.interval.start);
            pts.push(v.interval.end);
        }
        for e in &self.edges {
            pts.push(e.interval.start);
            pts.push(e.interval.end);
        }
        pts.sort_unstable();
        pts.dedup();
        pts
    }
}

/// A conventional (non-temporal) property graph: the state of a TGraph at one
/// time point, or one RG snapshot's payload.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct StaticGraph {
    /// Vertices present, with their property assignment.
    pub vertices: BTreeMap<VertexId, Props>,
    /// Edges present, with endpoints and properties.
    pub edges: BTreeMap<EdgeId, (VertexId, VertexId, Props)>,
}

impl StaticGraph {
    /// Whether this is a *valid* conventional graph: every edge's endpoints
    /// are present, and no entity has an empty property set.
    pub fn is_valid(&self) -> bool {
        self.vertices.values().all(|p| !p.is_empty())
            && self.edges.values().all(|(s, d, p)| {
                !p.is_empty() && self.vertices.contains_key(s) && self.vertices.contains_key(d)
            })
    }
}

/// Builds the TGraph of the paper's Figure 1: Ann, Bob, Cat with their
/// co-author edges. Used throughout tests and the quickstart example.
///
/// ```text
/// Ann  (v1): type=person, school=MIT           T=[1,7)
/// Bob  (v2): type=person                        T=[2,5)
/// Bob  (v2): type=person, school=CMU            T=[5,9)
/// Cat  (v3): type=person, school=MIT            T=[1,9)
/// e1 (Ann→Bob): type=co-author                  T=[2,7)
/// e2 (Bob→Cat): type=co-author                  T=[7,9)
/// ```
pub fn figure1_graph() -> TGraph {
    let person = |school: Option<&str>| {
        let p = Props::typed("person");
        match school {
            Some(s) => p.with("school", s),
            None => p,
        }
    };
    TGraph::from_records(
        vec![
            VertexRecord::new(
                1,
                Interval::new(1, 7),
                person(Some("MIT")).with("name", "Ann"),
            ),
            VertexRecord::new(2, Interval::new(2, 5), person(None).with("name", "Bob")),
            VertexRecord::new(
                5,
                Interval::new(5, 9),
                person(Some("CMU")).with("name", "Bob"),
            ),
            VertexRecord::new(
                3,
                Interval::new(1, 9),
                person(Some("MIT")).with("name", "Cat"),
            ),
        ],
        vec![
            EdgeRecord::new(1, 1, 2, Interval::new(2, 5), Props::typed("co-author")),
            EdgeRecord::new(1, 1, 5, Interval::new(5, 7), Props::typed("co-author")),
            EdgeRecord::new(2, 5, 3, Interval::new(7, 9), Props::typed("co-author")),
        ],
    )
}

/// Figure 1 exactly as drawn, with Bob keeping one vertex id across his two
/// states. This is the canonical running-example graph.
pub fn figure1_graph_stable_ids() -> TGraph {
    let person = Props::typed("person");
    TGraph::from_records(
        vec![
            VertexRecord::new(
                1,
                Interval::new(1, 7),
                person.clone().with("school", "MIT").with("name", "Ann"),
            ),
            VertexRecord::new(2, Interval::new(2, 5), person.clone().with("name", "Bob")),
            VertexRecord::new(
                2,
                Interval::new(5, 9),
                person.clone().with("school", "CMU").with("name", "Bob"),
            ),
            VertexRecord::new(
                3,
                Interval::new(1, 9),
                person.with("school", "MIT").with("name", "Cat"),
            ),
        ],
        vec![
            EdgeRecord::new(1, 1, 2, Interval::new(2, 7), Props::typed("co-author")),
            EdgeRecord::new(2, 2, 3, Interval::new(7, 9), Props::typed("co-author")),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_records_derives_lifespan() {
        let g = figure1_graph_stable_ids();
        assert_eq!(g.lifespan, Interval::new(1, 9));
        assert_eq!(g.vertex_tuple_count(), 4);
        assert_eq!(g.edge_tuple_count(), 2);
        assert_eq!(g.distinct_vertex_count(), 3);
        assert_eq!(g.distinct_edge_count(), 2);
    }

    #[test]
    fn snapshot_at_time_point() {
        let g = figure1_graph_stable_ids();
        // At t=1 only Ann and Cat exist; no edges.
        let s1 = g.at(1);
        assert_eq!(s1.vertices.len(), 2);
        assert!(s1.edges.is_empty());
        assert!(s1.is_valid());
        // At t=3 Bob exists (schoolless) and e1 connects Ann→Bob.
        let s3 = g.at(3);
        assert_eq!(s3.vertices.len(), 3);
        assert_eq!(s3.edges.len(), 1);
        assert!(s3.is_valid());
        // At t=8 Bob has school=CMU and e2 connects Bob→Cat.
        let s8 = g.at(8);
        assert_eq!(s8.vertices.len(), 2);
        let bob = s8.vertices.get(&VertexId(2)).unwrap();
        assert_eq!(bob.get("school").unwrap().as_str(), Some("CMU"));
        assert_eq!(s8.edges.len(), 1);
        // At t=9 (after lifespan) nothing exists.
        let s9 = g.at(9);
        assert!(s9.vertices.is_empty() && s9.edges.is_empty());
    }

    #[test]
    fn change_points_of_running_example() {
        let g = figure1_graph_stable_ids();
        assert_eq!(g.change_points(), vec![1, 2, 5, 7, 9]);
    }

    #[test]
    fn slice_clips_intervals() {
        let g = figure1_graph_stable_ids();
        let s = g.slice(Interval::new(4, 6));
        assert_eq!(s.lifespan, Interval::new(4, 6));
        // Ann [4,6), Bob [4,5) and [5,6), Cat [4,6)
        assert_eq!(s.vertex_tuple_count(), 4);
        // e1 clipped to [4,6); e2 entirely outside.
        assert_eq!(s.edge_tuple_count(), 1);
        assert_eq!(s.edges[0].interval, Interval::new(4, 6));
    }

    #[test]
    fn static_graph_validity_detects_dangling_edge() {
        let mut s = StaticGraph::default();
        s.vertices.insert(VertexId(1), Props::typed("a"));
        s.edges
            .insert(EdgeId(1), (VertexId(1), VertexId(2), Props::typed("x")));
        assert!(!s.is_valid());
        s.vertices.insert(VertexId(2), Props::typed("a"));
        assert!(s.is_valid());
    }

    #[test]
    fn empty_graph() {
        let g = TGraph::new();
        assert!(g.is_empty());
        assert!(g.lifespan.is_empty());
        assert!(g.change_points().is_empty());
    }
}
