//! Morsel-driven, work-stealing wave execution — the engine's answer to
//! skewed partitions.
//!
//! The barrier scheduler in [`Runtime::run_indexed`](crate::Runtime::run_indexed)
//! launches one task per partition and waits for the slowest: on heavy-tailed
//! data (one partition holding half the rows) every wave costs the *hottest*
//! partition's latency while the other workers idle — the shared-memory
//! analogue of Spark's straggler problem.
//!
//! This module splits large partitions **at dispatch** into fixed-size
//! *morsels* (row-range sub-tasks over the `Arc`'d partition payloads, so
//! splitting moves no data), seeds each pool worker's deque with the morsels
//! of "its" partitions (partition *i* → deque *i mod workers*, mirroring the
//! barrier assignment), and lets idle workers **steal from the tail** of
//! busy workers' deques. Per-partition results are reassembled in morsel
//! order, so callers observe exactly the per-partition outputs the barrier
//! scheduler would have produced — only the physical task granularity
//! changes.
//!
//! Cancellation is finer-grained than the barrier path: drivers observe the
//! installed [`CancelToken`](crate::CancelToken) *between morsels*, so a
//! server deadline interrupts a hot partition mid-way instead of waiting for
//! its whole task to finish.

use crate::cancel::CancelToken;
use crate::pool::ThreadPool;
use crate::sync::lock_unpoisoned;
use crossbeam::channel::unbounded;
use crossbeam::deque::{Steal, Stealer, Worker};
use std::ops::Range;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// One unit of scheduled work: a row range of one partition.
struct Morsel {
    /// Index into the wave's flat result table.
    global: usize,
    /// Partition the rows belong to.
    part: usize,
    /// Row range within the partition.
    range: Range<usize>,
}

/// How a morsel wave ended.
pub(crate) enum WaveOutcome {
    /// Every morsel executed.
    Completed,
    /// The cancel token tripped; remaining morsels were skipped.
    Cancelled,
    /// A morsel panicked; the payload is re-thrown by the caller after the
    /// wave drained.
    Panicked(Box<dyn std::any::Any + Send + 'static>),
}

/// Result of a morsel wave: per-partition results (morsel order) plus the
/// accounting the runtime folds into [`RuntimeStats`](crate::RuntimeStats).
pub(crate) struct WaveResult<R> {
    /// Results per partition, one `Vec` entry per morsel, in row order.
    /// Empty when the wave did not complete.
    pub per_partition: Vec<Vec<R>>,
    /// Morsels executed.
    pub executed: u64,
    /// Morsels skipped (cancellation or fail-fast abort).
    pub skipped: u64,
    /// Morsels taken from another worker's deque.
    pub steals: u64,
    /// Longest single morsel, in microseconds.
    pub max_morsel_us: u64,
    /// How the wave ended.
    pub outcome: WaveOutcome,
}

/// Splits `sizes[i]` rows of each partition into morsels of at most
/// `morsel_rows` rows and executes them on the pool under work stealing.
/// Blocks until every driver has drained (no straggler can outlive the
/// wave, mirroring the batch scheduler's drain guarantee).
pub(crate) fn run_wave<R, F>(
    pool: &ThreadPool,
    sizes: &[usize],
    morsel_rows: usize,
    token: Option<CancelToken>,
    f: Arc<F>,
) -> WaveResult<R>
where
    R: Send + 'static,
    F: Fn(usize, Range<usize>) -> R + Send + Sync + 'static,
{
    let morsel_rows = morsel_rows.max(1);
    // Cut partitions into morsels; remember how many each partition got so
    // the flat result table can be reassembled per partition afterwards.
    let mut morsels: Vec<Morsel> = Vec::new();
    let mut counts: Vec<usize> = Vec::with_capacity(sizes.len());
    for (part, &rows) in sizes.iter().enumerate() {
        let mut n = 0;
        let mut lo = 0;
        while lo < rows {
            let hi = (lo + morsel_rows).min(rows);
            morsels.push(Morsel {
                global: morsels.len(),
                part,
                range: lo..hi,
            });
            lo = hi;
            n += 1;
        }
        counts.push(n);
    }
    let total = morsels.len();
    if total == 0 {
        return WaveResult {
            per_partition: sizes.iter().map(|_| Vec::new()).collect(),
            executed: 0,
            skipped: 0,
            steals: 0,
            max_morsel_us: 0,
            outcome: WaveOutcome::Completed,
        };
    }

    // Seed per-worker deques: partition i's morsels go to deque i mod k, in
    // row order — the same initial placement the barrier scheduler implies,
    // so stealing only redistributes work that would otherwise straggle.
    let k = pool.size().min(total);
    let deques: Vec<Worker<Morsel>> = (0..k).map(|_| Worker::new_fifo()).collect();
    for m in morsels {
        deques[m.part % k].push(m);
    }
    let stealers: Vec<Stealer<Morsel>> = deques.iter().map(Worker::stealer).collect();

    let abort = Arc::new(AtomicBool::new(false));
    let cancelled = Arc::new(AtomicBool::new(false));
    let steals = Arc::new(AtomicU64::new(0));
    let panic_slot: Arc<Mutex<Option<Box<dyn std::any::Any + Send + 'static>>>> =
        Arc::new(Mutex::new(None));
    let (tx, rx) = unbounded::<(usize, R, u64)>();

    for (me, local) in deques.into_iter().enumerate() {
        let stealers = stealers.clone();
        let abort = Arc::clone(&abort);
        let cancelled = Arc::clone(&cancelled);
        let steals = Arc::clone(&steals);
        let panic_slot = Arc::clone(&panic_slot);
        let token = token.clone();
        let f = Arc::clone(&f);
        let tx = tx.clone();
        pool.execute(Box::new(move || {
            let mut stolen = 0u64;
            loop {
                if abort.load(Ordering::Acquire) {
                    break;
                }
                // Own deque first (front = row order), then sweep the other
                // workers' tails. All morsels are enqueued before dispatch,
                // so empty-everywhere means the wave has no work left.
                let next = local.pop().or_else(|| {
                    (1..stealers.len()).find_map(|d| {
                        match stealers[(me + d) % stealers.len()].steal() {
                            Steal::Success(m) => {
                                stolen += 1;
                                Some(m)
                            }
                            _ => None,
                        }
                    })
                });
                let Some(m) = next else { break };
                if token.as_ref().is_some_and(CancelToken::is_cancelled) {
                    cancelled.store(true, Ordering::Release);
                    abort.store(true, Ordering::Release);
                    break;
                }
                let start = Instant::now();
                match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    f(m.part, m.range.clone())
                })) {
                    Ok(r) => {
                        let us = start.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
                        let _ = tx.send((m.global, r, us));
                    }
                    Err(payload) => {
                        let mut slot = lock_unpoisoned(&panic_slot);
                        if slot.is_none() {
                            *slot = Some(payload);
                        }
                        drop(slot);
                        abort.store(true, Ordering::Release);
                        break;
                    }
                }
            }
            steals.fetch_add(stolen, Ordering::Relaxed);
        }));
    }
    drop(tx);

    // Drain: the channel closes only when every driver has exited, so a
    // completed (or failed) wave leaves nothing running on the pool.
    let mut slots: Vec<Option<R>> = (0..total).map(|_| None).collect();
    let mut executed = 0u64;
    let mut max_morsel_us = 0u64;
    while let Ok((global, r, us)) = rx.recv() {
        slots[global] = Some(r);
        executed += 1;
        max_morsel_us = max_morsel_us.max(us);
    }

    let steals = steals.load(Ordering::Relaxed);
    let skipped = total as u64 - executed;
    let outcome = {
        let mut slot = lock_unpoisoned(&panic_slot);
        if let Some(payload) = slot.take() {
            WaveOutcome::Panicked(payload)
        } else if cancelled.load(Ordering::Acquire) {
            WaveOutcome::Cancelled
        } else {
            WaveOutcome::Completed
        }
    };
    let per_partition = match outcome {
        WaveOutcome::Completed => {
            let mut iter = slots.into_iter();
            counts
                .iter()
                .map(|&n| {
                    iter.by_ref()
                        .take(n)
                        // lint:allow(expect): a completed wave filled every slot
                        .map(|s| s.expect("missing morsel result"))
                        .collect()
                })
                .collect()
        }
        _ => Vec::new(),
    };
    WaveResult {
        per_partition,
        executed,
        skipped,
        steals,
        max_morsel_us,
        outcome,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run<R, F>(workers: usize, sizes: &[usize], morsel_rows: usize, f: F) -> WaveResult<R>
    where
        R: Send + 'static,
        F: Fn(usize, Range<usize>) -> R + Send + Sync + 'static,
    {
        let pool = ThreadPool::new(workers);
        run_wave(&pool, sizes, morsel_rows, None, Arc::new(f))
    }

    #[test]
    fn reassembles_ranges_in_partition_order() {
        let result = run(4, &[10, 0, 7, 3], 4, |part, range| (part, range));
        assert!(matches!(result.outcome, WaveOutcome::Completed));
        assert_eq!(
            result.per_partition,
            vec![
                vec![(0, 0..4), (0, 4..8), (0, 8..10)],
                vec![],
                vec![(2, 0..4), (2, 4..7)],
                vec![(3, 0..3)],
            ]
        );
        assert_eq!(result.executed, 6);
        assert_eq!(result.skipped, 0);
    }

    #[test]
    fn empty_wave_completes_without_dispatch() {
        let result = run(2, &[0, 0], 16, |part, _| part);
        assert!(matches!(result.outcome, WaveOutcome::Completed));
        assert_eq!(result.per_partition, vec![Vec::<usize>::new(), Vec::new()]);
        assert_eq!(result.executed, 0);
    }

    #[test]
    fn panic_aborts_and_drains() {
        let result = run(2, &[64], 1, |_, range| {
            if range.start == 5 {
                panic!("morsel exploded");
            }
            range.start
        });
        match result.outcome {
            WaveOutcome::Panicked(payload) => {
                let msg = payload.downcast_ref::<&str>().copied().unwrap_or("");
                assert_eq!(msg, "morsel exploded");
            }
            _ => panic!("expected a panicked wave"),
        }
        assert!(result.executed < 64, "abort must skip remaining morsels");
        assert_eq!(result.executed + result.skipped, 64);
        assert!(result.per_partition.is_empty());
    }

    #[test]
    fn cancellation_between_morsels() {
        let token = CancelToken::new();
        let pool = ThreadPool::new(1); // sequential: first morsel trips, rest skip
        let t = token.clone();
        let result = run_wave(
            &pool,
            &[32],
            1,
            Some(token),
            Arc::new(move |_, range: Range<usize>| {
                if range.start == 0 {
                    t.cancel();
                }
                range.start
            }),
        );
        assert!(matches!(result.outcome, WaveOutcome::Cancelled));
        assert!(result.executed < 32);
        assert!(result.skipped > 0);
    }

    #[test]
    fn hot_partition_is_stolen_from() {
        // One partition holds all the work; with several workers, everything
        // a non-owner executes is by definition a steal.
        let result = run(4, &[256, 0, 0, 0], 1, |_, range| {
            // Enough work per morsel that drivers overlap.
            let mut acc = range.start as u64;
            for i in 0..20_000u64 {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
            }
            acc
        });
        assert!(matches!(result.outcome, WaveOutcome::Completed));
        assert_eq!(result.executed, 256);
        assert!(
            result.steals > 0,
            "idle workers must steal from the hot partition's deque"
        );
    }

    #[test]
    fn morsel_rows_floor_is_one() {
        let result = run(2, &[3], 0, |_, range| range);
        assert_eq!(
            result.per_partition,
            vec![vec![0..1, 1..2, 2..3]],
            "morsel_rows 0 must clamp to 1, not loop forever"
        );
    }
}
