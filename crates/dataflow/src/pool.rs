//! A persistent worker thread pool built on crossbeam channels.
//!
//! The pool plays the role of Spark's executor set: every dataflow operator
//! submits one task per partition and waits for all of them to finish. Tasks
//! are `'static` closures; datasets share partition payloads via `Arc`, so
//! capturing them is a reference-count bump, not a copy.
//!
//! Batch execution is **fail-fast but fully drained**: when a task panics,
//! the remaining tasks of the same wave are skipped (their bodies never
//! run), but the wave does not unwind to the caller until every submitted
//! task has reported back — a failed wave can never leave stragglers racing
//! a subsequent wave's work on the pool.

use crossbeam::channel::{unbounded, Receiver, Sender};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// What one task of a batch reported back.
enum TaskReport<R> {
    /// The task ran to completion.
    Done(R),
    /// The task was skipped because an earlier sibling panicked.
    Skipped,
    /// The task panicked; the payload is re-thrown after the wave drains.
    Panicked(Box<dyn std::any::Any + Send + 'static>),
}

/// A fixed-size pool of worker threads executing submitted jobs.
pub struct ThreadPool {
    sender: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
    size: usize,
    tasks_run: Arc<AtomicU64>,
}

impl ThreadPool {
    /// Spawns a pool with `size` workers (at least one).
    pub fn new(size: usize) -> Self {
        let size = size.max(1);
        let (sender, receiver): (Sender<Job>, Receiver<Job>) = unbounded();
        let tasks_run = Arc::new(AtomicU64::new(0));
        let workers = (0..size)
            .map(|i| {
                let rx = receiver.clone();
                std::thread::Builder::new()
                    .name(format!("tgraph-worker-{i}"))
                    .spawn(move || {
                        while let Ok(job) = rx.recv() {
                            job();
                        }
                    })
                    // lint:allow(expect): thread spawn failure at pool construction is fatal
                    .expect("failed to spawn worker thread")
            })
            .collect();
        ThreadPool {
            sender: Some(sender),
            workers,
            size,
            tasks_run,
        }
    }

    /// Number of worker threads.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Total number of batch tasks executed since creation. Counts every
    /// [`run_batch`](ThreadPool::run_batch) task — including single-task
    /// batches run inline on the caller thread — but not raw
    /// [`execute`](ThreadPool::execute) jobs (those are scheduler plumbing,
    /// e.g. morsel-wave drivers, not logical tasks).
    pub fn tasks_run(&self) -> u64 {
        self.tasks_run.load(Ordering::Relaxed)
    }

    /// Submits one fire-and-forget job.
    pub fn execute(&self, job: Job) {
        self.sender
            .as_ref()
            // lint:allow(expect): sender only dropped in Drop; execute-after-drop is an engine bug
            .expect("pool is shut down")
            .send(job)
            // lint:allow(expect): workers outlive the sender by construction
            .expect("worker channel closed");
    }

    /// Runs a batch of result-producing tasks, blocking until all complete,
    /// and returns results in task order.
    ///
    /// Panics in a task are propagated to the caller (fail-fast, like a
    /// Spark job aborting on a task failure) — but only after the whole wave
    /// has drained: sibling tasks still queued when the panic happens skip
    /// their bodies and report back, so no task of a failed wave is left
    /// running detached when the caller resumes.
    pub fn run_batch<R: Send + 'static>(
        &self,
        tasks: Vec<Box<dyn FnOnce() -> R + Send + 'static>>,
    ) -> Vec<R> {
        let n = tasks.len();
        if n == 0 {
            return Vec::new();
        }
        // Run small batches inline: dispatch overhead dominates otherwise.
        // Inline tasks are still tasks — count them (satellite fix: the
        // inline fast path used to bypass the counter, undercounting
        // `RuntimeStats.tasks` on single-partition plans).
        if n == 1 {
            // lint:allow(unwrap): n == 1 checked on the line above
            let task = tasks.into_iter().next().unwrap();
            self.tasks_run.fetch_add(1, Ordering::Relaxed);
            return vec![task()];
        }
        let abort = Arc::new(AtomicBool::new(false));
        let (tx, rx) = unbounded::<(usize, TaskReport<R>)>();
        for (idx, task) in tasks.into_iter().enumerate() {
            let tx = tx.clone();
            let abort = Arc::clone(&abort);
            let counter = Arc::clone(&self.tasks_run);
            self.execute(Box::new(move || {
                if abort.load(Ordering::Acquire) {
                    // A sibling already panicked: skip the body, but still
                    // report so the caller's drain loop completes.
                    let _ = tx.send((idx, TaskReport::Skipped));
                    return;
                }
                // Count before running: the job's completion signal (its
                // result-channel send) must not be observable before the
                // counter reflects the task.
                counter.fetch_add(1, Ordering::Relaxed);
                let report = match std::panic::catch_unwind(std::panic::AssertUnwindSafe(task)) {
                    Ok(r) => TaskReport::Done(r),
                    Err(payload) => {
                        abort.store(true, Ordering::Release);
                        TaskReport::Panicked(payload)
                    }
                };
                let _ = tx.send((idx, report));
            }));
        }
        drop(tx);
        let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
        let mut first_panic: Option<Box<dyn std::any::Any + Send + 'static>> = None;
        for _ in 0..n {
            // lint:allow(expect): each task sends exactly once; a closed channel means a worker died
            let (idx, report) = rx.recv().expect("task result channel closed early");
            match report {
                TaskReport::Done(r) => slots[idx] = Some(r),
                TaskReport::Skipped => {}
                TaskReport::Panicked(payload) => {
                    if first_panic.is_none() {
                        first_panic = Some(payload);
                    }
                }
            }
        }
        // Every task has reported: the wave is fully drained, so unwinding
        // now cannot race tasks of this wave against later waves.
        if let Some(payload) = first_panic {
            std::panic::resume_unwind(payload);
        }
        slots
            .into_iter()
            // lint:allow(expect): every slot filled by the recv loop above
            .map(|s| s.expect("missing task result"))
            .collect()
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        // Closing the channel lets workers drain and exit.
        drop(self.sender.take());
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn runs_batch_in_order() {
        let pool = ThreadPool::new(4);
        let tasks: Vec<Box<dyn FnOnce() -> usize + Send>> =
            (0..64usize).map(|i| Box::new(move || i * 2) as _).collect();
        let results = pool.run_batch(tasks);
        assert_eq!(results, (0..64).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn executes_fire_and_forget() {
        let pool = ThreadPool::new(2);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..10 {
            let c = Arc::clone(&counter);
            pool.execute(Box::new(move || {
                c.fetch_add(1, Ordering::SeqCst);
            }));
        }
        drop(pool); // joins workers
        assert_eq!(counter.load(Ordering::SeqCst), 10);
    }

    #[test]
    fn empty_batch() {
        let pool = ThreadPool::new(2);
        let results: Vec<u32> = pool.run_batch(vec![]);
        assert!(results.is_empty());
    }

    #[test]
    fn single_inline_task_is_counted() {
        // Satellite regression test: the inline fast path must count its
        // task like any other, or `RuntimeStats.tasks` undercounts relative
        // to `waves` on single-partition plans.
        let pool = ThreadPool::new(2);
        let before = pool.tasks_run();
        let results = pool.run_batch(vec![Box::new(|| 41 + 1) as Box<dyn FnOnce() -> i32 + Send>]);
        assert_eq!(results, vec![42]);
        assert_eq!(pool.tasks_run(), before + 1, "inline task must be counted");
    }

    #[test]
    fn execute_jobs_are_not_counted_as_tasks() {
        let pool = ThreadPool::new(2);
        let done = Arc::new(AtomicUsize::new(0));
        let before = pool.tasks_run();
        for _ in 0..4 {
            let d = Arc::clone(&done);
            pool.execute(Box::new(move || {
                d.fetch_add(1, Ordering::SeqCst);
            }));
        }
        while done.load(Ordering::SeqCst) < 4 {
            std::thread::yield_now();
        }
        assert_eq!(pool.tasks_run(), before, "raw jobs are plumbing, not tasks");
    }

    #[test]
    fn task_panic_propagates() {
        let pool = ThreadPool::new(2);
        let tasks: Vec<Box<dyn FnOnce() -> u32 + Send>> = vec![
            Box::new(|| 1),
            Box::new(|| panic!("task exploded")),
            Box::new(|| 3),
        ];
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.run_batch(tasks);
        }));
        assert!(result.is_err());
    }

    #[test]
    fn failed_wave_drains_before_unwinding() {
        // Satellite regression test: when a task panics, run_batch must not
        // resume_unwind while sibling tasks are still queued/running — they
        // must all report (skipped or done) first, so a failed wave cannot
        // race a subsequent wave.
        let pool = ThreadPool::new(1); // strictly sequential queue
        let ran = Arc::new(AtomicUsize::new(0));
        let tasks: Vec<Box<dyn FnOnce() -> u32 + Send>> = (0..16u32)
            .map(|i| {
                let ran = Arc::clone(&ran);
                Box::new(move || {
                    ran.fetch_add(1, Ordering::SeqCst);
                    if i == 0 {
                        panic!("first task fails");
                    }
                    i
                }) as _
            })
            .collect();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.run_batch(tasks);
        }));
        assert!(result.is_err());
        // The panic aborted the wave: later siblings were skipped, and — the
        // actual drain guarantee — none of them can still be pending now.
        let after_unwind = ran.load(Ordering::SeqCst);
        assert!(
            after_unwind < 16,
            "siblings queued behind the panic must be skipped"
        );
        // A fresh wave on the same pool sees no stragglers from the failed
        // one: the skipped tasks already drained off the queue.
        let ran2 = Arc::clone(&ran);
        let ok: Vec<u32> = pool
            .run_batch(vec![Box::new(move || ran2.load(Ordering::SeqCst) as u32)
                as Box<dyn FnOnce() -> u32 + Send>]);
        assert_eq!(ok[0] as usize, after_unwind, "no straggler ran in between");
    }

    #[test]
    fn counts_tasks() {
        let pool = ThreadPool::new(3);
        let tasks: Vec<Box<dyn FnOnce() + Send>> = (0..5).map(|_| Box::new(|| ()) as _).collect();
        pool.run_batch(tasks);
        assert_eq!(pool.tasks_run(), 5);
    }

    #[test]
    fn pool_size_floor_is_one() {
        let pool = ThreadPool::new(0);
        assert_eq!(pool.size(), 1);
    }
}
