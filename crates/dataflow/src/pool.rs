//! A persistent worker thread pool built on crossbeam channels.
//!
//! The pool plays the role of Spark's executor set: every dataflow operator
//! submits one task per partition and waits for all of them to finish. Tasks
//! are `'static` closures; datasets share partition payloads via `Arc`, so
//! capturing them is a reference-count bump, not a copy.

use crossbeam::channel::{unbounded, Receiver, Sender};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// A fixed-size pool of worker threads executing submitted jobs.
pub struct ThreadPool {
    sender: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
    size: usize,
    tasks_run: Arc<AtomicU64>,
}

impl ThreadPool {
    /// Spawns a pool with `size` workers (at least one).
    pub fn new(size: usize) -> Self {
        let size = size.max(1);
        let (sender, receiver): (Sender<Job>, Receiver<Job>) = unbounded();
        let tasks_run = Arc::new(AtomicU64::new(0));
        let workers = (0..size)
            .map(|i| {
                let rx = receiver.clone();
                let counter = Arc::clone(&tasks_run);
                std::thread::Builder::new()
                    .name(format!("tgraph-worker-{i}"))
                    .spawn(move || {
                        while let Ok(job) = rx.recv() {
                            // Count before running: the job's completion signal
                            // (its result-channel send) must not be observable
                            // before the counter reflects the task.
                            counter.fetch_add(1, Ordering::Relaxed);
                            job();
                        }
                    })
                    // lint:allow(expect): thread spawn failure at pool construction is fatal
                    .expect("failed to spawn worker thread")
            })
            .collect();
        ThreadPool {
            sender: Some(sender),
            workers,
            size,
            tasks_run,
        }
    }

    /// Number of worker threads.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Total number of tasks executed since creation.
    pub fn tasks_run(&self) -> u64 {
        self.tasks_run.load(Ordering::Relaxed)
    }

    /// Submits one fire-and-forget job.
    pub fn execute(&self, job: Job) {
        self.sender
            .as_ref()
            // lint:allow(expect): sender only dropped in Drop; execute-after-drop is an engine bug
            .expect("pool is shut down")
            .send(job)
            // lint:allow(expect): workers outlive the sender by construction
            .expect("worker channel closed");
    }

    /// Runs a batch of result-producing tasks, blocking until all complete,
    /// and returns results in task order.
    ///
    /// Panics in a task are propagated to the caller (fail-fast, like a Spark
    /// job aborting on a task failure).
    pub fn run_batch<R: Send + 'static>(
        &self,
        tasks: Vec<Box<dyn FnOnce() -> R + Send + 'static>>,
    ) -> Vec<R> {
        let n = tasks.len();
        if n == 0 {
            return Vec::new();
        }
        // Run small batches inline: dispatch overhead dominates otherwise.
        if n == 1 {
            // lint:allow(unwrap): n == 1 checked on the line above
            let task = tasks.into_iter().next().unwrap();
            return vec![task()];
        }
        let (tx, rx) = unbounded::<(usize, std::thread::Result<R>)>();
        for (idx, task) in tasks.into_iter().enumerate() {
            let tx = tx.clone();
            self.execute(Box::new(move || {
                let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(task));
                // Receiver may be gone if the caller already panicked.
                let _ = tx.send((idx, result));
            }));
        }
        drop(tx);
        let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
        for _ in 0..n {
            // lint:allow(expect): each task sends exactly once; a closed channel means a worker died
            let (idx, result) = rx.recv().expect("task result channel closed early");
            match result {
                Ok(r) => slots[idx] = Some(r),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
        slots
            .into_iter()
            // lint:allow(expect): every slot filled by the recv loop above
            .map(|s| s.expect("missing task result"))
            .collect()
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        // Closing the channel lets workers drain and exit.
        drop(self.sender.take());
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn runs_batch_in_order() {
        let pool = ThreadPool::new(4);
        let tasks: Vec<Box<dyn FnOnce() -> usize + Send>> =
            (0..64usize).map(|i| Box::new(move || i * 2) as _).collect();
        let results = pool.run_batch(tasks);
        assert_eq!(results, (0..64).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn executes_fire_and_forget() {
        let pool = ThreadPool::new(2);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..10 {
            let c = Arc::clone(&counter);
            pool.execute(Box::new(move || {
                c.fetch_add(1, Ordering::SeqCst);
            }));
        }
        drop(pool); // joins workers
        assert_eq!(counter.load(Ordering::SeqCst), 10);
    }

    #[test]
    fn empty_batch() {
        let pool = ThreadPool::new(2);
        let results: Vec<u32> = pool.run_batch(vec![]);
        assert!(results.is_empty());
    }

    #[test]
    fn single_task_runs_inline() {
        let pool = ThreadPool::new(2);
        let before = pool.tasks_run();
        let results = pool.run_batch(vec![Box::new(|| 41 + 1) as Box<dyn FnOnce() -> i32 + Send>]);
        assert_eq!(results, vec![42]);
        assert_eq!(
            pool.tasks_run(),
            before,
            "single task must not hit the queue"
        );
    }

    #[test]
    fn task_panic_propagates() {
        let pool = ThreadPool::new(2);
        let tasks: Vec<Box<dyn FnOnce() -> u32 + Send>> = vec![
            Box::new(|| 1),
            Box::new(|| panic!("task exploded")),
            Box::new(|| 3),
        ];
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.run_batch(tasks);
        }));
        assert!(result.is_err());
    }

    #[test]
    fn counts_tasks() {
        let pool = ThreadPool::new(3);
        let tasks: Vec<Box<dyn FnOnce() + Send>> = (0..5).map(|_| Box::new(|| ()) as _).collect();
        pool.run_batch(tasks);
        assert_eq!(pool.tasks_run(), 5);
    }

    #[test]
    fn pool_size_floor_is_one() {
        let pool = ThreadPool::new(0);
        assert_eq!(pool.size(), 1);
    }
}
