//! The global memory governor: a runtime-wide byte budget charged by
//! shuffle exchanges and keyed-operator state, with spill-to-disk relief.
//!
//! # Protocol (see DESIGN.md §9)
//!
//! 1. **Charge.** After the shuffle map side materializes its bucket sets,
//!    the exchange estimates its residency with the cheap
//!    [`HeapSize`](crate::HeapSize) model (`size_of::<(K, V)>()` per record
//!    plus owned heap bytes) and charges the governor. `group_by_key` /
//!    `reduce_by_key` / `aggregate_by_key` local state charges the same way
//!    for the lifetime of the combine pass.
//! 2. **Spill.** While the governor is over budget, the exchange picks its
//!    *largest still-in-memory map output* and writes it to a run file under
//!    the spill directory ([`spill`](crate::spill) module), releasing that
//!    output's charge. Spilling repeats until the governor is back under
//!    budget or nothing spillable remains.
//! 3. **Merge.** Reduce tasks stream each output partition back together by
//!    walking map outputs *in map-partition index order*, appending bucket
//!    `p` from memory or from disk. Runs preserve record order exactly, so
//!    the merged partition is byte-identical to the all-in-memory exchange —
//!    the governor is invisible to results, lineage fingerprints, and
//!    analyzer EXPLAIN output (the same contract the morsel stealer keeps).
//!
//! A failed spill write aborts the wave with a typed
//! [`SpillError`](crate::SpillError) panic payload; already-written sibling
//! runs are deleted by RAII on unwind, so no temp files leak.

use crate::spill::{charged_size, RunHandle, RunWriter, Spill, SpillError};
use crate::sync::lock_unpoisoned;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Runtime-wide memory accounting and spill policy. One per
/// [`Runtime`](crate::Runtime), shared with the serving layer for admission
/// reservations. A budget of `0` means *unlimited*: nothing is estimated,
/// charged, or spilled.
pub struct MemGovernor {
    budget: AtomicU64,
    used: AtomicU64,
    peak: AtomicU64,
    bytes_spilled: AtomicU64,
    spill_files: AtomicU64,
    spill_dir: Mutex<PathBuf>,
    seq: AtomicU64,
}

impl MemGovernor {
    /// A governor configured from the environment: `TGRAPH_MEM_BYTES` (plain
    /// bytes, or with a `k`/`m`/`g` suffix; absent or unparsable → unlimited)
    /// and `TGRAPH_SPILL_DIR` (default: `<tmp>/tgraph-spill`).
    pub fn from_env() -> Self {
        MemGovernor {
            budget: AtomicU64::new(mem_bytes_from_env()),
            used: AtomicU64::new(0),
            peak: AtomicU64::new(0),
            bytes_spilled: AtomicU64::new(0),
            spill_files: AtomicU64::new(0),
            spill_dir: Mutex::new(spill_dir_from_env()),
            seq: AtomicU64::new(0),
        }
    }

    /// The byte budget; `0` means unlimited.
    pub fn budget(&self) -> u64 {
        self.budget.load(Ordering::Relaxed)
    }

    /// Sets the byte budget (`0` disables the governor).
    pub fn set_budget(&self, bytes: u64) {
        self.budget.store(bytes, Ordering::Relaxed);
    }

    /// Whether a budget is in force.
    pub fn enabled(&self) -> bool {
        self.budget() > 0
    }

    /// Bytes currently charged (exchanges in flight, combine state, and
    /// admission reservations).
    pub fn used(&self) -> u64 {
        self.used.load(Ordering::Relaxed)
    }

    /// High-water mark of [`used`](MemGovernor::used) over the governor's
    /// lifetime.
    pub fn peak_bytes(&self) -> u64 {
        self.peak.load(Ordering::Relaxed)
    }

    /// Total bytes written to spill runs.
    pub fn bytes_spilled(&self) -> u64 {
        self.bytes_spilled.load(Ordering::Relaxed)
    }

    /// Number of spill run files written.
    pub fn spill_files(&self) -> u64 {
        self.spill_files.load(Ordering::Relaxed)
    }

    /// The directory spill runs are written under.
    pub fn spill_dir(&self) -> PathBuf {
        lock_unpoisoned(&self.spill_dir).clone()
    }

    /// Points the governor at a different spill directory.
    pub fn set_spill_dir(&self, dir: impl Into<PathBuf>) {
        *lock_unpoisoned(&self.spill_dir) = dir.into();
    }

    /// Charges `bytes` unconditionally, returning the RAII release handle.
    /// Used for exchange residency and combine-state accounting, where the
    /// memory already exists and the honest move is to record it (and spill
    /// our way back under budget), not to refuse it.
    pub fn charge(self: &Arc<Self>, bytes: u64) -> MemCharge {
        let used = self.used.fetch_add(bytes, Ordering::Relaxed) + bytes;
        self.peak.fetch_max(used, Ordering::Relaxed);
        MemCharge {
            gov: Arc::clone(self),
            bytes,
        }
    }

    /// Attempts to reserve `bytes` without exceeding the budget; `None` when
    /// the reservation does not fit. With no budget in force the reservation
    /// trivially succeeds (and charges nothing). The serving layer's
    /// admission gate uses this to bound concurrent queries by bytes.
    pub fn try_reserve(self: &Arc<Self>, bytes: u64) -> Option<MemCharge> {
        if !self.enabled() || bytes == 0 {
            return Some(MemCharge {
                gov: Arc::clone(self),
                bytes: 0,
            });
        }
        let budget = self.budget();
        let mut used = self.used.load(Ordering::Relaxed);
        loop {
            if used.saturating_add(bytes) > budget {
                return None;
            }
            match self.used.compare_exchange_weak(
                used,
                used + bytes,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    self.peak.fetch_max(used + bytes, Ordering::Relaxed);
                    return Some(MemCharge {
                        gov: Arc::clone(self),
                        bytes,
                    });
                }
                Err(actual) => used = actual,
            }
        }
    }

    /// Whether current charges exceed the budget (always `false` when
    /// unlimited).
    pub fn over_budget(&self) -> bool {
        self.enabled() && self.used() > self.budget()
    }

    fn release(&self, bytes: u64) {
        // Saturating: a release can never underflow the gauge.
        self.used
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |u| {
                Some(u.saturating_sub(bytes))
            })
            .ok();
    }

    fn note_spill(&self, file_bytes: u64) {
        self.bytes_spilled.fetch_add(file_bytes, Ordering::Relaxed);
        self.spill_files.fetch_add(1, Ordering::Relaxed);
    }

    /// A fresh, collision-free run path under the spill directory (which is
    /// created on demand).
    fn next_run_path(&self) -> Result<PathBuf, SpillError> {
        let dir = self.spill_dir();
        std::fs::create_dir_all(&dir).map_err(|e| SpillError::Io {
            op: "create spill dir",
            path: dir.clone(),
            error: e.to_string(),
        })?;
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let unique = self as *const MemGovernor as usize;
        Ok(dir.join(format!("run-{}-{unique:x}-{seq}.tgr", std::process::id())))
    }
}

/// RAII handle for bytes charged against a [`MemGovernor`]; dropping it
/// releases the charge.
pub struct MemCharge {
    gov: Arc<MemGovernor>,
    bytes: u64,
}

impl MemCharge {
    /// Bytes this charge currently holds.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Releases part of the charge early (e.g. after spilling a map output
    /// frees its memory).
    fn shrink(&mut self, by: u64) {
        let by = by.min(self.bytes);
        self.bytes -= by;
        self.gov.release(by);
    }
}

impl Drop for MemCharge {
    fn drop(&mut self) {
        self.gov.release(self.bytes);
    }
}

/// One map output inside a governed exchange: still in memory, or spilled
/// to a run file.
enum GovernedSource<K, V> {
    Mem(Vec<Vec<(K, V)>>),
    Spilled(RunHandle),
}

/// A shuffle exchange under governor control: the map outputs (in map
/// partition order), the residency charge, and — in checked mode — the
/// per-bucket record counts for the merge audit. Shared by every reduce
/// task; dropping it releases the charge and deletes any run files.
pub(crate) struct GovernedBuckets<K, V> {
    sources: Vec<GovernedSource<K, V>>,
    /// `counts[src][bucket]`, recorded before any spill; empty unless the
    /// runtime was in checked mode at admission.
    counts: Vec<Vec<u64>>,
    _charge: Option<MemCharge>,
}

impl<K: Spill, V: Spill> GovernedBuckets<K, V> {
    /// Takes ownership of the map side's bucket sets, charges the governor,
    /// and spills largest-first until back under budget.
    ///
    /// # Panics
    /// Raises a typed [`SpillError`] panic payload if a spill write fails;
    /// already-written sibling runs are removed on unwind.
    pub fn admit(rt: &crate::Runtime, bucketed: Vec<Vec<Vec<(K, V)>>>) -> Arc<Self> {
        let gov = rt.governor();
        let counts = if rt.checked() {
            bucketed
                .iter()
                .map(|src| src.iter().map(|b| b.len() as u64).collect())
                .collect()
        } else {
            Vec::new()
        };
        if !gov.enabled() {
            // Unlimited: no estimation pass, no charge, no spills — the
            // governed exchange is exactly the ungoverned one.
            return Arc::new(GovernedBuckets {
                sources: bucketed.into_iter().map(GovernedSource::Mem).collect(),
                counts,
                _charge: None,
            });
        }
        let estimates: Vec<u64> = bucketed.iter().map(|src| estimate_source(src)).collect();
        let mut charge = gov.charge(estimates.iter().sum());
        let mut sources: Vec<GovernedSource<K, V>> =
            bucketed.into_iter().map(GovernedSource::Mem).collect();
        let mut remaining = estimates;
        while gov.over_budget() {
            // Largest still-in-memory map output first: fewest files for the
            // most relief.
            let Some(i) = (0..sources.len())
                .filter(|&i| remaining[i] > 0)
                .max_by_key(|&i| remaining[i])
            else {
                break; // everything spillable is on disk; run over budget
            };
            let GovernedSource::Mem(buckets) = &sources[i] else {
                unreachable!("remaining[i] > 0 implies an in-memory source");
            };
            match spill_source(&gov, buckets) {
                Ok(run) => {
                    gov.note_spill(run.file_bytes());
                    sources[i] = GovernedSource::Spilled(run);
                    charge.shrink(remaining[i]);
                    remaining[i] = 0;
                }
                Err(e) => {
                    // Drop sources (and with them every sealed sibling run)
                    // before unwinding: no leaked temp files.
                    drop(sources);
                    drop(charge);
                    std::panic::panic_any(e);
                }
            }
        }
        Arc::new(GovernedBuckets {
            sources,
            counts,
            _charge: Some(charge),
        })
    }

    /// Appends output partition `p`'s records to `merged`, walking map
    /// outputs in index order — the order-preserving streaming merge.
    ///
    /// # Panics
    /// Raises a typed [`SpillError`] payload if a run read fails, and (in
    /// checked mode) panics if the merged record count disagrees with the
    /// counts recorded at admission.
    pub fn append_bucket(&self, p: usize, merged: &mut Vec<(K, V)>)
    where
        K: Clone,
        V: Clone,
    {
        for (i, src) in self.sources.iter().enumerate() {
            match src {
                GovernedSource::Mem(buckets) => merged.extend_from_slice(&buckets[p]),
                GovernedSource::Spilled(run) => {
                    if let Some(counts) = self.counts.get(i) {
                        // Checked mode: the run's own metadata must agree with
                        // the count recorded before the source was spilled.
                        assert!(
                            run.bucket_records(p) == counts[p],
                            "checked mode: run bucket {p} holds {} records, \
                             map side recorded {}",
                            run.bucket_records(p),
                            counts[p]
                        );
                    }
                    if let Err(e) = run.read_bucket(p, merged) {
                        std::panic::panic_any(e);
                    }
                }
            }
        }
        if !self.counts.is_empty() {
            let expected: u64 = self.counts.iter().map(|src| src[p]).sum();
            assert!(
                merged.len() as u64 == expected,
                "checked mode: governed merge of partition {p} produced {} records, \
                 map side recorded {expected}",
                merged.len()
            );
        }
    }

    /// How many map outputs were spilled (for tests).
    #[cfg(test)]
    pub fn spilled_sources(&self) -> usize {
        self.sources
            .iter()
            .filter(|s| matches!(s, GovernedSource::Spilled(_)))
            .count()
    }
}

/// Records the residency of a keyed operator's per-partition state (the
/// grouped/combined rows `group_by_key`, `reduce_by_key`, and
/// `aggregate_by_key` hold while their pass runs) against the governor's
/// peak accounting. The state cannot be spilled — it is live operator
/// output — so the charge is recorded and immediately released: it moves
/// `peak_bytes` (and pushes concurrent exchanges toward spilling) without
/// lingering. Free when no budget is in force.
pub(crate) fn note_state<T: crate::HeapSize>(gov: &Arc<MemGovernor>, rows: &[T]) {
    if gov.enabled() {
        let est: u64 = rows.iter().map(|r| charged_size(r) as u64).sum();
        drop(gov.charge(est));
    }
}

/// The charge model for one map output: inline record size plus owned heap
/// bytes, summed over buckets.
fn estimate_source<K: Spill, V: Spill>(buckets: &[Vec<(K, V)>]) -> u64 {
    buckets
        .iter()
        .flat_map(|b| b.iter())
        .map(|rec| charged_size(rec) as u64)
        .sum()
}

/// Writes one map output's buckets to a fresh run file.
fn spill_source<K: Spill, V: Spill>(
    gov: &MemGovernor,
    buckets: &[Vec<(K, V)>],
) -> Result<RunHandle, SpillError> {
    let mut w = RunWriter::create(gov.next_run_path()?)?;
    for bucket in buckets {
        w.write_bucket(bucket)?;
    }
    w.finish()
}

/// Reads `TGRAPH_MEM_BYTES`: plain bytes or `k`/`m`/`g`-suffixed (base
/// 1024); `0`, absent, or unparsable → unlimited.
fn mem_bytes_from_env() -> u64 {
    std::env::var("TGRAPH_MEM_BYTES")
        .ok()
        .and_then(|v| parse_bytes(&v))
        .unwrap_or(0)
}

fn parse_bytes(s: &str) -> Option<u64> {
    let s = s.trim();
    let (num, shift) = match s.as_bytes().last()? {
        b'k' | b'K' => (&s[..s.len() - 1], 10),
        b'm' | b'M' => (&s[..s.len() - 1], 20),
        b'g' | b'G' => (&s[..s.len() - 1], 30),
        _ => (s, 0),
    };
    num.trim().parse::<u64>().ok()?.checked_shl(shift)
}

/// Reads `TGRAPH_SPILL_DIR` (default `<tmp>/tgraph-spill`).
fn spill_dir_from_env() -> PathBuf {
    std::env::var_os("TGRAPH_SPILL_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| std::env::temp_dir().join("tgraph-spill"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gov(budget: u64) -> Arc<MemGovernor> {
        let g = Arc::new(MemGovernor::from_env());
        g.set_budget(budget);
        g
    }

    #[test]
    fn charge_release_and_peak() {
        let g = gov(1000);
        assert!(!g.over_budget());
        let a = g.charge(600);
        let b = g.charge(600);
        assert_eq!(g.used(), 1200);
        assert!(g.over_budget());
        drop(a);
        assert_eq!(g.used(), 600);
        assert!(!g.over_budget());
        drop(b);
        assert_eq!(g.used(), 0);
        assert_eq!(g.peak_bytes(), 1200, "peak is a high-water mark");
    }

    #[test]
    fn shrink_releases_partially() {
        let g = gov(1000);
        let mut c = g.charge(800);
        c.shrink(300);
        assert_eq!(g.used(), 500);
        assert_eq!(c.bytes(), 500);
        c.shrink(10_000); // clamped to what is held
        assert_eq!(g.used(), 0);
        drop(c);
        assert_eq!(g.used(), 0);
    }

    #[test]
    fn try_reserve_respects_budget() {
        let g = gov(100);
        let r1 = g.try_reserve(60).expect("fits");
        assert!(g.try_reserve(60).is_none(), "would exceed budget");
        drop(r1);
        assert!(g.try_reserve(60).is_some(), "fits after release");
        // Unlimited governor: reservations are free.
        let free = gov(0);
        let r = free.try_reserve(u64::MAX).expect("unlimited");
        assert_eq!(r.bytes(), 0);
        assert_eq!(free.used(), 0);
    }

    #[test]
    fn parse_bytes_suffixes() {
        assert_eq!(parse_bytes("4096"), Some(4096));
        assert_eq!(parse_bytes("64k"), Some(64 << 10));
        assert_eq!(parse_bytes("3M"), Some(3 << 20));
        assert_eq!(parse_bytes("2g"), Some(2 << 30));
        assert_eq!(parse_bytes(" 8K "), Some(8 << 10));
        assert_eq!(parse_bytes("nope"), None);
        assert_eq!(parse_bytes(""), None);
    }

    fn unique_dir(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("tgraph-gov-{tag}-{}", std::process::id()))
    }

    #[test]
    fn governed_exchange_spills_and_merges_identically() {
        let rt = crate::Runtime::with_partitions(2, 2);
        rt.governor().set_spill_dir(unique_dir("merge"));
        let bucketed: Vec<Vec<Vec<(u64, String)>>> = vec![
            vec![
                vec![(0, "a".into()), (2, "c".into())],
                vec![(1, "b".into())],
            ],
            vec![
                vec![(4, "e".into())],
                vec![(3, "d".into()), (5, "f".into())],
            ],
        ];
        // Unlimited: nothing spills.
        let ex = GovernedBuckets::admit(&rt, bucketed.clone());
        assert_eq!(ex.spilled_sources(), 0);
        let mut plain0 = Vec::new();
        ex.append_bucket(0, &mut plain0);
        // One-byte budget: everything spillable spills.
        rt.set_mem_budget(1);
        let ex2 = GovernedBuckets::admit(&rt, bucketed);
        assert_eq!(ex2.spilled_sources(), 2);
        assert!(rt.governor().bytes_spilled() > 0);
        assert_eq!(rt.governor().spill_files(), 2);
        let mut spilled0 = Vec::new();
        ex2.append_bucket(0, &mut spilled0);
        assert_eq!(spilled0, plain0, "merge must be byte-identical");
    }

    #[test]
    fn exchange_drop_releases_charge_and_runs() {
        let rt = crate::Runtime::with_partitions(1, 1);
        rt.set_mem_budget(1);
        let gov = rt.governor();
        gov.set_spill_dir(unique_dir("drop"));
        let before_files = count_runs(&gov.spill_dir());
        let ex = GovernedBuckets::admit(&rt, vec![vec![vec![(1u64, 2u64), (3, 4)]]]);
        assert_eq!(ex.spilled_sources(), 1);
        assert!(count_runs(&gov.spill_dir()) > before_files);
        drop(ex);
        assert_eq!(gov.used(), 0, "charge released");
        assert_eq!(
            count_runs(&gov.spill_dir()),
            before_files,
            "run files deleted"
        );
    }

    fn count_runs(dir: &std::path::Path) -> usize {
        std::fs::read_dir(dir).map(|it| it.count()).unwrap_or(0)
    }

    #[test]
    fn failed_spill_panics_typed_and_cleans_up() {
        let rt = crate::Runtime::with_partitions(1, 1);
        rt.set_mem_budget(1);
        // Point the spill "directory" at a regular file: creation fails for
        // any uid, including root.
        let blocker =
            std::env::temp_dir().join(format!("tgraph-gov-blocker-{}", std::process::id()));
        std::fs::write(&blocker, b"x").unwrap();
        rt.governor().set_spill_dir(&blocker);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            GovernedBuckets::admit(&rt, vec![vec![vec![(1u64, 2u64)]]])
        }));
        let Err(payload) = result else {
            panic!("spill into a file path must fail");
        };
        let err = payload
            .downcast_ref::<SpillError>()
            .expect("panic payload must be a typed SpillError");
        assert!(matches!(err, SpillError::Io { .. }), "{err}");
        assert_eq!(rt.governor().used(), 0, "charge released on unwind");
        let _ = std::fs::remove_file(&blocker);
    }
}
