//! Spill codec and run files: how exchange buckets leave memory when the
//! [memory governor](crate::MemGovernor) is over budget.
//!
//! A *run* is one map partition's bucket set written to disk in a compact
//! little-endian format (the same fixed-width/length-prefixed conventions as
//! the `.tgc` columnar encoder in `tgraph-storage`, which re-exports this
//! module's [`checksum`]). Buckets are written — and later read back — in
//! bucket order, with records in exactly the order the map side produced
//! them, so a merge of spilled and in-memory sources reproduces the
//! all-in-memory exchange byte for byte.
//!
//! Records are encoded via the [`Spill`] trait: a deliberately boring,
//! exact codec (no compression, no varints) with implementations for the
//! standard types dataflow programs shuffle. Domain crates implement it for
//! their record types (`tgraph-core` for property-graph records,
//! `tgraph-repr` for the physical-representation rows).

use std::fs::File;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// A cheap estimate of the heap bytes owned by a value, *excluding* its
/// inline `size_of` footprint. The governor charges
/// `size_of::<T>() + heap_bytes()` per record; the estimate only needs to be
/// proportional to real residency, not exact (malloc headers and capacity
/// slack are ignored).
pub trait HeapSize {
    /// Heap bytes reachable from (and owned by) `self`.
    fn heap_bytes(&self) -> usize {
        0
    }
}

/// Inline plus owned-heap bytes of one value — the unit the governor charges.
pub fn charged_size<T: HeapSize>(x: &T) -> usize {
    std::mem::size_of::<T>() + x.heap_bytes()
}

/// Why a spill write or read failed. Spill failures abort the wave: the
/// engine's internal error channel is panics, so operators raise this as a
/// typed panic payload (`std::panic::panic_any(SpillError…)`) which
/// `catch_unwind` callers (tests, the serving layer) can downcast.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpillError {
    /// A filesystem operation on a run file failed.
    Io {
        /// Which operation failed (`create`, `write`, `open`, `read`, …).
        op: &'static str,
        /// The run file (or spill directory) involved.
        path: PathBuf,
        /// The underlying `std::io::Error`, stringified.
        error: String,
    },
    /// A run file's payload did not decode back (checksum mismatch,
    /// truncation, bad tag).
    Corrupt {
        /// What went wrong, including the run path when known.
        detail: String,
    },
}

impl std::fmt::Display for SpillError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpillError::Io { op, path, error } => {
                write!(f, "spill {op} failed on {}: {error}", path.display())
            }
            SpillError::Corrupt { detail } => write!(f, "spill run corrupt: {detail}"),
        }
    }
}

impl std::error::Error for SpillError {}

fn io_err(op: &'static str, path: &Path, e: std::io::Error) -> SpillError {
    SpillError::Io {
        op,
        path: path.to_path_buf(),
        error: e.to_string(),
    }
}

fn corrupt(detail: impl Into<String>) -> SpillError {
    SpillError::Corrupt {
        detail: detail.into(),
    }
}

/// The checksum guarding every run bucket (and, re-exported through
/// `tgraph-storage`, every `.tgc` chunk): a 64-bit multiply-add fold with
/// position mixing, cheap enough to run on every read and strong enough to
/// catch torn or bit-flipped writes.
pub fn checksum(payload: &[u8]) -> u64 {
    let mut acc: u64 = 0xcbf2_9ce4_8422_2325;
    for (i, b) in payload.iter().enumerate() {
        acc = acc
            .wrapping_mul(0x100_0000_01b3)
            .wrapping_add(*b as u64)
            .wrapping_add(i as u64);
    }
    acc
}

/// Bounds-checked little-endian reader over a run bucket's payload.
pub struct SpillReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> SpillReader<'a> {
    /// Reads from the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        SpillReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Consumes `n` raw bytes.
    pub fn bytes(&mut self, n: usize) -> Result<&'a [u8], SpillError> {
        if self.remaining() < n {
            return Err(corrupt(format!(
                "need {n} bytes, {} remaining",
                self.remaining()
            )));
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Consumes one byte.
    pub fn u8(&mut self) -> Result<u8, SpillError> {
        Ok(self.bytes(1)?[0])
    }

    /// Consumes a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, SpillError> {
        let b = self.bytes(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Consumes a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, SpillError> {
        let b = self.bytes(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Consumes a little-endian `i64`.
    pub fn i64(&mut self) -> Result<i64, SpillError> {
        Ok(self.u64()? as i64)
    }

    /// Consumes a `u64` length prefix, rejecting lengths that cannot fit in
    /// the remaining payload (`floor` bytes per element; pass 0 for
    /// zero-sized elements).
    pub fn len_prefix(&mut self, floor: usize) -> Result<usize, SpillError> {
        let n = self.u64()?;
        let cap = (self.remaining() as u64)
            .checked_div(floor as u64)
            .unwrap_or(u64::MAX);
        if n > cap {
            return Err(corrupt(format!(
                "length prefix {n} exceeds remaining payload ({} bytes)",
                self.remaining()
            )));
        }
        Ok(n as usize)
    }
}

/// Exact binary codec for spillable records. `unspill(spill(x)) == x` must
/// hold bit-for-bit (floats roundtrip through their bit patterns), because
/// the governor's contract is byte-identical results with spilling on or
/// off.
pub trait Spill: HeapSize + Sized {
    /// Appends the encoding of `self` to `out`.
    fn spill(&self, out: &mut Vec<u8>);
    /// Decodes one value, consuming exactly the bytes `spill` wrote.
    fn unspill(r: &mut SpillReader<'_>) -> Result<Self, SpillError>;
}

macro_rules! spill_int {
    ($($t:ty),*) => {$(
        impl HeapSize for $t {}
        impl Spill for $t {
            fn spill(&self, out: &mut Vec<u8>) {
                out.extend_from_slice(&(*self as u64).to_le_bytes());
            }
            fn unspill(r: &mut SpillReader<'_>) -> Result<Self, SpillError> {
                Ok(r.u64()? as $t)
            }
        }
    )*};
}

// Integers travel as 8 little-endian bytes regardless of native width, so a
// run written by any build decodes on any other.
spill_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl HeapSize for bool {}
impl Spill for bool {
    fn spill(&self, out: &mut Vec<u8>) {
        out.push(*self as u8);
    }
    fn unspill(r: &mut SpillReader<'_>) -> Result<Self, SpillError> {
        match r.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            t => Err(corrupt(format!("bad bool tag {t}"))),
        }
    }
}

impl HeapSize for char {}
impl Spill for char {
    fn spill(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&(*self as u32).to_le_bytes());
    }
    fn unspill(r: &mut SpillReader<'_>) -> Result<Self, SpillError> {
        let v = r.u32()?;
        char::from_u32(v).ok_or_else(|| corrupt(format!("bad char scalar {v:#x}")))
    }
}

impl HeapSize for f64 {}
impl Spill for f64 {
    fn spill(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_bits().to_le_bytes());
    }
    fn unspill(r: &mut SpillReader<'_>) -> Result<Self, SpillError> {
        Ok(f64::from_bits(r.u64()?))
    }
}

impl HeapSize for f32 {}
impl Spill for f32 {
    fn spill(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_bits().to_le_bytes());
    }
    fn unspill(r: &mut SpillReader<'_>) -> Result<Self, SpillError> {
        Ok(f32::from_bits(r.u32()?))
    }
}

impl HeapSize for () {}
impl Spill for () {
    fn spill(&self, _out: &mut Vec<u8>) {}
    fn unspill(_r: &mut SpillReader<'_>) -> Result<Self, SpillError> {
        Ok(())
    }
}

fn spill_str(s: &str, out: &mut Vec<u8>) {
    (s.len() as u64).spill(out);
    out.extend_from_slice(s.as_bytes());
}

fn unspill_string(r: &mut SpillReader<'_>) -> Result<String, SpillError> {
    let len = r.len_prefix(1)?;
    let raw = r.bytes(len)?;
    std::str::from_utf8(raw)
        .map(str::to_owned)
        .map_err(|_| corrupt("invalid UTF-8 in spilled string"))
}

impl HeapSize for String {
    fn heap_bytes(&self) -> usize {
        self.len()
    }
}
impl Spill for String {
    fn spill(&self, out: &mut Vec<u8>) {
        spill_str(self, out);
    }
    fn unspill(r: &mut SpillReader<'_>) -> Result<Self, SpillError> {
        unspill_string(r)
    }
}

impl HeapSize for std::sync::Arc<str> {
    fn heap_bytes(&self) -> usize {
        self.len()
    }
}
impl Spill for std::sync::Arc<str> {
    fn spill(&self, out: &mut Vec<u8>) {
        spill_str(self, out);
    }
    fn unspill(r: &mut SpillReader<'_>) -> Result<Self, SpillError> {
        Ok(unspill_string(r)?.into())
    }
}

impl HeapSize for &'static str {
    fn heap_bytes(&self) -> usize {
        0
    }
}

impl Spill for &'static str {
    fn spill(&self, out: &mut Vec<u8>) {
        spill_str(self, out);
    }
    fn unspill(r: &mut SpillReader<'_>) -> Result<Self, SpillError> {
        // A borrowed string cannot be reconstituted from disk without an
        // owner, so the round trip leaks each decoded string. Acceptable:
        // `&'static str` datasets are literal-sized, and the leak only
        // materializes for records that actually spilled and were read back.
        Ok(Box::leak(unspill_string(r)?.into_boxed_str()))
    }
}

impl<T: HeapSize> HeapSize for Vec<T> {
    fn heap_bytes(&self) -> usize {
        self.capacity() * std::mem::size_of::<T>()
            + self.iter().map(HeapSize::heap_bytes).sum::<usize>()
    }
}
impl<T: Spill> Spill for Vec<T> {
    fn spill(&self, out: &mut Vec<u8>) {
        (self.len() as u64).spill(out);
        for x in self {
            x.spill(out);
        }
    }
    fn unspill(r: &mut SpillReader<'_>) -> Result<Self, SpillError> {
        // Elements may be zero-width (e.g. `()`), so the length prefix is
        // only sanity-capped when elements occupy at least one byte.
        let n = r.len_prefix(0)?;
        let mut out = Vec::with_capacity(n.min(r.remaining().max(16)));
        for _ in 0..n {
            out.push(T::unspill(r)?);
        }
        Ok(out)
    }
}

impl<T: HeapSize> HeapSize for Option<T> {
    fn heap_bytes(&self) -> usize {
        self.as_ref().map_or(0, HeapSize::heap_bytes)
    }
}
impl<T: Spill> Spill for Option<T> {
    fn spill(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(x) => {
                out.push(1);
                x.spill(out);
            }
        }
    }
    fn unspill(r: &mut SpillReader<'_>) -> Result<Self, SpillError> {
        match r.u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::unspill(r)?)),
            t => Err(corrupt(format!("bad Option tag {t}"))),
        }
    }
}

impl<T: HeapSize> HeapSize for Box<T> {
    fn heap_bytes(&self) -> usize {
        std::mem::size_of::<T>() + self.as_ref().heap_bytes()
    }
}
impl<T: Spill> Spill for Box<T> {
    fn spill(&self, out: &mut Vec<u8>) {
        self.as_ref().spill(out);
    }
    fn unspill(r: &mut SpillReader<'_>) -> Result<Self, SpillError> {
        Ok(Box::new(T::unspill(r)?))
    }
}

macro_rules! spill_tuple {
    ($(($($n:tt $T:ident),+)),+ $(,)?) => {$(
        impl<$($T: HeapSize),+> HeapSize for ($($T,)+) {
            fn heap_bytes(&self) -> usize {
                0 $(+ self.$n.heap_bytes())+
            }
        }
        impl<$($T: Spill),+> Spill for ($($T,)+) {
            fn spill(&self, out: &mut Vec<u8>) {
                $(self.$n.spill(out);)+
            }
            fn unspill(r: &mut SpillReader<'_>) -> Result<Self, SpillError> {
                Ok(($($T::unspill(r)?,)+))
            }
        }
    )+};
}

spill_tuple!(
    (0 A),
    (0 A, 1 B),
    (0 A, 1 B, 2 C),
    (0 A, 1 B, 2 C, 3 D),
    (0 A, 1 B, 2 C, 3 D, 4 E),
);

/// Location of one bucket inside a run file.
#[derive(Debug, Clone, Copy)]
struct BucketMeta {
    offset: u64,
    len: u64,
    records: u64,
    checksum: u64,
}

/// Writes one map partition's buckets to a run file, bucket by bucket.
/// On any error the partially-written file is removed before the error is
/// returned, so a failed spill never leaks temp files.
pub(crate) struct RunWriter {
    file: File,
    path: PathBuf,
    buckets: Vec<BucketMeta>,
    offset: u64,
    scratch: Vec<u8>,
}

impl RunWriter {
    /// Creates (truncating) the run file at `path`.
    pub fn create(path: PathBuf) -> Result<Self, SpillError> {
        let file = File::create(&path).map_err(|e| io_err("create", &path, e))?;
        Ok(RunWriter {
            file,
            path,
            buckets: Vec::new(),
            offset: 0,
            scratch: Vec::new(),
        })
    }

    /// Encodes and appends one bucket. Buckets must be written in bucket
    /// order; record order within the bucket is preserved exactly.
    pub fn write_bucket<T: Spill>(&mut self, records: &[T]) -> Result<(), SpillError> {
        self.scratch.clear();
        for rec in records {
            rec.spill(&mut self.scratch);
        }
        let meta = BucketMeta {
            offset: self.offset,
            len: self.scratch.len() as u64,
            records: records.len() as u64,
            checksum: checksum(&self.scratch),
        };
        if let Err(e) = self.file.write_all(&self.scratch) {
            let err = io_err("write", &self.path, e);
            self.discard();
            return Err(err);
        }
        self.offset += meta.len;
        self.buckets.push(meta);
        Ok(())
    }

    /// Flushes and seals the run, returning a handle that deletes the file
    /// when dropped.
    pub fn finish(mut self) -> Result<RunHandle, SpillError> {
        if let Err(e) = self.file.flush() {
            let err = io_err("flush", &self.path, e);
            self.discard();
            return Err(err);
        }
        Ok(RunHandle {
            path: std::mem::take(&mut self.path),
            buckets: std::mem::take(&mut self.buckets),
            bytes: self.offset,
        })
    }

    /// Best-effort removal of the partial file after a failure.
    fn discard(&mut self) {
        let _ = std::fs::remove_file(&self.path);
        self.path = PathBuf::new(); // disarm: nothing left to clean up
    }
}

/// A sealed, readable run file. Dropping the handle deletes the file —
/// spilled runs are strictly transient exchange state, so both the success
/// path (exchange consumed) and the failure path (wave unwinding) converge
/// on the same RAII cleanup.
pub(crate) struct RunHandle {
    path: PathBuf,
    buckets: Vec<BucketMeta>,
    bytes: u64,
}

impl RunHandle {
    /// Total payload bytes in the file.
    pub fn file_bytes(&self) -> u64 {
        self.bytes
    }

    /// Records recorded for bucket `b` at write time.
    pub fn bucket_records(&self, b: usize) -> u64 {
        self.buckets.get(b).map_or(0, |m| m.records)
    }

    /// Reads bucket `b` back, verifying its checksum, and appends the
    /// decoded records to `out` in their original order. Each caller opens
    /// its own file handle, so concurrent reduce tasks can read one run.
    pub fn read_bucket<T: Spill>(&self, b: usize, out: &mut Vec<T>) -> Result<(), SpillError> {
        let meta = self.buckets.get(b).ok_or_else(|| {
            corrupt(format!(
                "bucket {b} out of range ({} buckets) in {}",
                self.buckets.len(),
                self.path.display()
            ))
        })?;
        let mut file = File::open(&self.path).map_err(|e| io_err("open", &self.path, e))?;
        file.seek(SeekFrom::Start(meta.offset))
            .map_err(|e| io_err("seek", &self.path, e))?;
        let mut payload = vec![0u8; meta.len as usize];
        file.read_exact(&mut payload)
            .map_err(|e| io_err("read", &self.path, e))?;
        if checksum(&payload) != meta.checksum {
            return Err(corrupt(format!(
                "checksum mismatch in bucket {b} of {}",
                self.path.display()
            )));
        }
        let mut r = SpillReader::new(&payload);
        out.reserve(meta.records as usize);
        for i in 0..meta.records {
            out.push(T::unspill(&mut r).map_err(|e| {
                corrupt(format!(
                    "record {i} of bucket {b} in {}: {e}",
                    self.path.display()
                ))
            })?);
        }
        if r.remaining() != 0 {
            return Err(corrupt(format!(
                "bucket {b} of {} has {} trailing bytes",
                self.path.display(),
                r.remaining()
            )));
        }
        Ok(())
    }
}

impl Drop for RunHandle {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Spill + PartialEq + std::fmt::Debug>(x: T) {
        let mut buf = Vec::new();
        x.spill(&mut buf);
        let mut r = SpillReader::new(&buf);
        assert_eq!(T::unspill(&mut r).unwrap(), x);
        assert_eq!(r.remaining(), 0, "codec must consume exactly its bytes");
    }

    #[test]
    fn std_types_roundtrip() {
        roundtrip(0u8);
        roundtrip(u64::MAX);
        roundtrip(-42i64);
        roundtrip(usize::MAX);
        roundtrip(true);
        roundtrip('é');
        roundtrip(1.5f64);
        roundtrip(f64::NEG_INFINITY);
        roundtrip(());
        roundtrip("héllo".to_string());
        roundtrip(std::sync::Arc::<str>::from("arc"));
        roundtrip(vec![1u64, 2, 3]);
        roundtrip(Vec::<String>::new());
        roundtrip(Some(7u32));
        roundtrip(Option::<String>::None);
        roundtrip(Box::new(9i32));
        roundtrip((1u64, "k".to_string(), vec![2i64]));
        roundtrip(vec![((), ()), ((), ())]);
    }

    #[test]
    fn nan_bits_roundtrip_exactly() {
        let x = f64::from_bits(0x7ff8_0000_dead_beef);
        let mut buf = Vec::new();
        x.spill(&mut buf);
        let mut r = SpillReader::new(&buf);
        assert_eq!(f64::unspill(&mut r).unwrap().to_bits(), x.to_bits());
    }

    #[test]
    fn truncated_payload_errors() {
        let mut buf = Vec::new();
        "hello".to_string().spill(&mut buf);
        buf.truncate(buf.len() - 2);
        let mut r = SpillReader::new(&buf);
        assert!(String::unspill(&mut r).is_err());
    }

    #[test]
    fn oversized_length_prefix_is_rejected() {
        let mut buf = Vec::new();
        (u64::MAX).spill(&mut buf); // absurd element count
        let mut r = SpillReader::new(&buf);
        assert!(Vec::<u64>::unspill(&mut r).is_err());
    }

    #[test]
    fn heap_bytes_counts_owned_payloads() {
        assert_eq!(7u64.heap_bytes(), 0);
        assert_eq!("abcd".to_string().heap_bytes(), 4);
        let v = vec!["ab".to_string()];
        assert!(v.heap_bytes() >= std::mem::size_of::<String>() + 2);
        assert!(charged_size(&v) > v.heap_bytes());
    }

    #[test]
    fn run_file_roundtrips_and_cleans_up() {
        let dir = std::env::temp_dir().join(format!("tgraph-spill-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("run-roundtrip.tgr");
        let b0: Vec<(u64, String)> = vec![(1, "a".into()), (2, "bb".into())];
        let b1: Vec<(u64, String)> = vec![];
        let b2: Vec<(u64, String)> = vec![(9, "zzz".into())];
        let mut w = RunWriter::create(path.clone()).unwrap();
        w.write_bucket(&b0).unwrap();
        w.write_bucket(&b1).unwrap();
        w.write_bucket(&b2).unwrap();
        let run = w.finish().unwrap();
        assert!(path.exists());
        assert!(run.file_bytes() > 0);
        assert_eq!(run.bucket_records(0), 2);
        let mut got: Vec<(u64, String)> = Vec::new();
        run.read_bucket(0, &mut got).unwrap();
        run.read_bucket(1, &mut got).unwrap();
        run.read_bucket(2, &mut got).unwrap();
        let mut expected = b0.clone();
        expected.extend(b2.clone());
        assert_eq!(got, expected);
        drop(run);
        assert!(!path.exists(), "dropping the handle must delete the run");
    }

    #[test]
    fn corrupted_run_is_detected() {
        let dir = std::env::temp_dir().join(format!("tgraph-spill-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("run-corrupt.tgr");
        let mut w = RunWriter::create(path.clone()).unwrap();
        w.write_bucket(&[(1u64, 2u64), (3, 4)]).unwrap();
        let run = w.finish().unwrap();
        // Flip a payload byte behind the handle's back.
        let mut raw = std::fs::read(&path).unwrap();
        raw[0] ^= 0xff;
        std::fs::write(&path, &raw).unwrap();
        let mut out: Vec<(u64, u64)> = Vec::new();
        let err = run.read_bucket(0, &mut out).unwrap_err();
        assert!(matches!(err, SpillError::Corrupt { .. }), "{err}");
    }

    #[test]
    fn failed_create_reports_typed_io_error() {
        // A run path whose parent is a regular file cannot be created — this
        // fails for any uid (unlike chmod tricks, which root ignores).
        let dir = std::env::temp_dir().join(format!("tgraph-spill-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let blocker = dir.join("not-a-dir");
        std::fs::write(&blocker, b"x").unwrap();
        let err = RunWriter::create(blocker.join("run.tgr"))
            .err()
            .expect("creating a run under a file path must fail");
        assert!(matches!(err, SpillError::Io { op: "create", .. }), "{err}");
    }
}
