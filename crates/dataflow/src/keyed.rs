//! Keyed (wide) operators: the shuffle-based second-order functions the
//! paper's algorithms are written in — `groupBy`, `reduceByKey`,
//! `aggregateByKey`, `join`, `semijoin`, and `distinct`.
//!
//! Every wide operator hash-partitions records by key across the output
//! partitions (a real shuffle with per-partition bucket exchange), so the
//! data-movement behaviour of the different TGraph representations — RG
//! shuffling a record per snapshot copy versus OG shuffling one record per
//! entity — is reproduced, not simulated.
//!
//! Shuffle outputs are stamped [`Partitioning::HashByKey`]; when a keyed
//! operator runs on an input that already carries the required tag (same key
//! type, same partition count) the shuffle is **elided**: zero records move,
//! and [`RuntimeStats::shuffles_elided`](crate::RuntimeStats) counts the
//! skip. The map side of a real shuffle fuses with any pending narrow chain
//! on the input, so `map → filter → reduce_by_key` reads its input exactly
//! once.

use crate::dataset::{decode_records, Dataset, Locality, Partitioning};
use crate::exchange::Frame;
use crate::governor::GovernedBuckets;
use crate::lineage::OpKind;
use crate::runtime::Runtime;
use crate::spill::Spill;
use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// The engine's bucket function: which partition a key belongs to under
/// `HashByKey { parts }`. Elision audits (and tests constructing
/// adversarial layouts) use it to agree with the shuffle; it is public so
/// locality-aware loaders can pre-place records in the partition the
/// exchange will route their key to, making the shuffle shard-local.
///
/// Hashes with the explicitly-seeded FNV-1a shared with
/// `lineage::fingerprint()` — *not* `DefaultHasher`, whose algorithm is
/// unspecified and free to change across Rust releases, which would
/// silently invalidate persisted partition layouts and `HashByKey` claims
/// on a toolchain bump. A golden test pins the assignments.
pub fn bucket_of<K: Hash>(key: &K, parts: usize) -> usize {
    let mut h = crate::lineage::Fnv::new();
    key.hash(&mut h);
    (h.finish() % parts as u64) as usize
}

fn hashed_by_key(partitioning: Partitioning, parts: usize) -> bool {
    partitioning == Partitioning::HashByKey { parts }
}

/// How many leading records of partition 0 the debug-build elision audit
/// samples. A full scan is reserved for checked mode.
#[cfg(debug_assertions)]
const AUDIT_SAMPLE: usize = 64;

/// Audits an elision decision: the input claims `HashByKey { parts }` and a
/// shuffle is about to be skipped on the strength of that claim.
///
/// * In debug builds, samples the first [`AUDIT_SAMPLE`] records of
///   partition 0 on the caller thread and `debug_assert`s they hash to 0.
/// * In checked mode ([`Runtime::checked`]), runs a full verification wave:
///   every record of every partition must hash to its partition index, or
///   the claim is a lie and execution aborts with a diagnostic instead of
///   silently producing wrong joins/reductions.
fn audit_elision<K, V>(rt: &Runtime, input: &Dataset<(K, V)>, parts: usize)
where
    K: Hash + Eq + Clone + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
{
    #[cfg(debug_assertions)]
    {
        let mut seen = 0usize;
        let mut misplaced = 0usize;
        input.produce(0, &mut |kv| {
            if seen < AUDIT_SAMPLE {
                seen += 1;
                if bucket_of(&kv.0, parts) != 0 {
                    misplaced += 1;
                }
            }
        });
        debug_assert!(
            misplaced == 0,
            "elision audit: {misplaced}/{seen} sampled partition-0 records do not \
             hash to partition 0 under HashByKey {{ parts: {parts} }}"
        );
    }
    if rt.checked() {
        let bad: Vec<(usize, u64)> = input
            .run_per_partition(rt, move |p, d| {
                let mut bad = 0u64;
                d.produce(p, &mut |kv| {
                    if bucket_of(&kv.0, parts) != p {
                        bad += 1;
                    }
                });
                bad
            })
            .into_iter()
            .enumerate()
            .filter(|(_, b)| *b > 0)
            .collect();
        if !bad.is_empty() {
            panic!(
                "checked mode: partitioning claim HashByKey {{ parts: {parts} }} does not \
                 hold — misplaced records per partition: {bad:?}"
            );
        }
    }
}

/// Hash-partitions a keyed dataset: output partition `p` holds exactly the
/// records whose key hashes to `p`. This is the shuffle every wide operator
/// builds on.
///
/// If the input is already hash-partitioned by key over the runtime's
/// partition count, the shuffle is elided and the input is returned as-is
/// (its pending narrow chain, if any, stays deferred).
pub fn shuffle<K, V>(rt: &Runtime, input: &Dataset<(K, V)>) -> Dataset<(K, V)>
where
    K: Hash + Eq + Clone + Send + Sync + Spill + 'static,
    V: Clone + Send + Sync + Spill + 'static,
{
    let parts = rt.partitions();
    if hashed_by_key(input.partitioning(), parts) {
        rt.note_shuffle_elided();
        audit_elision(rt, input, parts);
        return input.clone().wrap_op(
            "shuffle(elided)",
            OpKind::ElidedShuffle { parts },
            Partitioning::HashByKey { parts },
        );
    }
    // Static movement prediction from lineage row estimates, recorded before
    // execution so predicted-vs-actual columns can be compared afterwards.
    let lineage = input.lineage();
    if let Some(rows) = lineage.rows {
        rt.note_shuffle_predicted(rows, rows * std::mem::size_of::<(K, V)>() as u64);
    }
    // Map side: one fused pass splits every input partition into `parts`
    // buckets, running any pending narrow chain in the same wave. Under the
    // work-stealing scheduler (and a splittable chain) the pass runs as
    // row-range morsels instead: each morsel builds its own bucket set, and
    // the sets are merged bucket-wise in morsel (row) order, so every bucket
    // holds its records in exactly the order the barrier pass produces.
    //
    // Under a sharded layout each shard maps only the input partitions it
    // contributes (its locality mask): owned data exists nowhere else, and
    // replicated data is split by the layout's range so every global
    // partition is mapped by exactly one shard.
    let exchange = rt.exchange();
    let layout = exchange.layout();
    let mask = input.shard_mask(&layout).map(Arc::new);
    let bucketed: Vec<Vec<Vec<(K, V)>>> = match (rt.stealing(), input.split_cap()) {
        (true, Some(cap)) => {
            let sizes: Vec<usize> = (0..input.num_partitions())
                .map(|i| match &mask {
                    // Masked-out partitions hold another shard's share:
                    // zero rows here means the morsel scheduler never
                    // touches them.
                    Some(m) if !m[i] => 0,
                    _ => (cap.rows)(i),
                })
                .collect();
            let produce_range = Arc::clone(&cap.produce_range);
            rt.run_morsels(&sizes, move |i, range| {
                let mut buckets: Vec<Vec<(K, V)>> = (0..parts).map(|_| Vec::new()).collect();
                produce_range(i, range, &mut |kv| {
                    buckets[bucket_of(&kv.0, parts)].push(kv.clone());
                });
                buckets
            })
            .into_iter()
            .map(|morsels| {
                let mut merged: Vec<Vec<(K, V)>> = (0..parts).map(|_| Vec::new()).collect();
                for morsel_buckets in morsels {
                    for (b, mut bucket) in morsel_buckets.into_iter().enumerate() {
                        merged[b].append(&mut bucket);
                    }
                }
                merged
            })
            .collect()
        }
        _ => {
            let mask_task = mask.clone();
            input.run_per_partition(rt, move |i, d| {
                let mut buckets: Vec<Vec<(K, V)>> = (0..parts).map(|_| Vec::new()).collect();
                if mask_task.as_ref().is_none_or(|m| m[i]) {
                    d.produce(i, &mut |kv| {
                        buckets[bucket_of(&kv.0, parts)].push(kv.clone());
                    });
                }
                buckets
            })
        }
    };
    let moved: u64 = bucketed
        .iter()
        .map(|p| p.iter().map(|b| b.len() as u64).sum::<u64>())
        .sum();
    rt.note_shuffle(moved, moved * std::mem::size_of::<(K, V)>() as u64);
    let out = if exchange.in_process() {
        // Typed fast path (the single-process default): bucket vectors move
        // by reference, byte-for-byte as before the exchange layer existed.
        //
        // Exchange residency passes under the memory governor: the charge is
        // recorded here, and over-budget map outputs are written out as run
        // files (order preserved) before the reduce side starts. With no
        // budget in force this is a no-op pass-through.
        let governed = GovernedBuckets::admit(rt, bucketed);
        // Reduce side: partition `p` concatenates bucket `p` of every map
        // output, in map-partition order — from memory or, for spilled
        // outputs, streamed back from their run files. Identical bytes
        // either way.
        rt.run_indexed(parts, move |p| {
            let mut merged = Vec::new();
            governed.append_bucket(p, &mut merged);
            Arc::new(merged)
        })
    } else {
        // Frame path: every non-empty bucket is encoded into a wire frame
        // and routed to its owner; the reduce side decodes the returned
        // frames in global map-partition order, reproducing the in-process
        // merge byte-for-byte (absent frames are empty buckets, which
        // contribute nothing to the concatenation).
        let seq = rt.next_exchange_seq();
        let mut frames = Vec::new();
        for (i, buckets) in bucketed.into_iter().enumerate() {
            for (b, bucket) in buckets.into_iter().enumerate() {
                if bucket.is_empty() {
                    continue;
                }
                let mut payload = Vec::new();
                for kv in &bucket {
                    kv.spill(&mut payload);
                }
                frames.push(Frame {
                    seq,
                    src: i as u64,
                    bucket: b as u64,
                    records: bucket.len() as u64,
                    payload,
                });
            }
        }
        let got = match exchange.route(seq, frames, parts) {
            Ok(f) => f,
            Err(e) => std::panic::panic_any(e),
        };
        // Received payload bytes are resident until the reduce side decodes
        // them; charge the governor for the window (transient, like combine
        // state).
        let gov = rt.governor();
        let received_bytes: u64 = got.iter().map(|f| f.payload.len() as u64).sum();
        let charge = gov.enabled().then(|| gov.charge(received_bytes));
        let mut by_bucket: HashMap<usize, Vec<Frame>> = HashMap::new();
        for f in got {
            by_bucket.entry(f.bucket as usize).or_default().push(f);
        }
        for frames in by_bucket.values_mut() {
            frames.sort_by_key(|f| f.src);
        }
        let owned = layout.range_mask(parts);
        let by_bucket = Arc::new(by_bucket);
        let out = rt.run_indexed(parts, move |p| {
            let mut merged: Vec<(K, V)> = Vec::new();
            if owned[p] {
                if let Some(frames) = by_bucket.get(&p) {
                    for f in frames {
                        merged.append(&mut decode_records::<(K, V)>(f));
                    }
                }
            }
            Arc::new(merged)
        });
        drop(charge);
        out
    };
    let node = crate::lineage::PlanNode::new(
        "shuffle",
        OpKind::Shuffle { parts },
        Partitioning::HashByKey { parts },
        Some(moved),
        true,
        std::mem::size_of::<(K, V)>() as u64,
        vec![lineage],
    );
    let shuffled =
        Dataset::from_arc_partitions_lineage(out, Partitioning::HashByKey { parts }, node);
    if layout.is_sharded() {
        shuffled.with_locality(Locality::Owned(Arc::new(layout.range_mask(parts))))
    } else {
        shuffled
    }
}

/// Extension trait providing the wide operators on key–value datasets.
pub trait KeyedDataset<K, V> {
    /// Transforms values while keeping keys — and therefore the partitioning
    /// tag — intact (narrow, deferred). The lazy-plan counterpart of Spark's
    /// `mapValues`, which preserves the partitioner where `map` cannot.
    fn map_values<W, F>(&self, f: F) -> Dataset<(K, W)>
    where
        W: Clone + Send + Sync + 'static,
        F: Fn(&V) -> W + Send + Sync + 'static;

    /// Like [`map_values`](KeyedDataset::map_values) but the closure also
    /// sees the key (which it cannot change) — for value updates that depend
    /// on the key, e.g. per-key rank recomputation in iterative analytics.
    fn map_values_with_key<W, F>(&self, f: F) -> Dataset<(K, W)>
    where
        W: Clone + Send + Sync + 'static,
        F: Fn(&K, &V) -> W + Send + Sync + 'static;

    /// Groups values by key: `groupBy` of the paper's algorithms.
    ///
    /// Wide operators require [`Spill`] on the record types so the memory
    /// governor can estimate (and, over budget, spill) the exchange.
    fn group_by_key(&self, rt: &Runtime) -> Dataset<(K, Vec<V>)>
    where
        K: Spill,
        V: Spill;

    /// Reduces values per key with a commutative, associative function,
    /// combining map-side before shuffling (Spark's `reduceByKey`). On an
    /// input already hash-partitioned by key this is a single local pass
    /// with no shuffle.
    fn reduce_by_key<F>(&self, rt: &Runtime, f: F) -> Dataset<(K, V)>
    where
        K: Spill,
        V: Spill,
        F: Fn(&V, &V) -> V + Send + Sync + 'static;

    /// Aggregates values per key into an accumulator type, with map-side
    /// combine (`aggregateByKey`). `update` folds a value into an
    /// accumulator, `merge` combines two accumulators.
    fn aggregate_by_key<A, I, U, M>(
        &self,
        rt: &Runtime,
        init: I,
        update: U,
        merge: M,
    ) -> Dataset<(K, A)>
    where
        K: Spill,
        A: Clone + Send + Sync + Spill + 'static,
        I: Fn() -> A + Send + Sync + 'static,
        U: Fn(&mut A, &V) + Send + Sync + 'static,
        M: Fn(&mut A, &A) + Send + Sync + 'static;

    /// Inner hash join on the key.
    fn join<W>(&self, rt: &Runtime, other: &Dataset<(K, W)>) -> Dataset<(K, (V, W))>
    where
        K: Spill,
        V: Spill,
        W: Clone + Send + Sync + Spill + 'static;

    /// Left semijoin: keeps records whose key appears in `keys`.
    fn semi_join<W>(&self, rt: &Runtime, keys: &Dataset<(K, W)>) -> Dataset<(K, V)>
    where
        K: Spill,
        V: Spill,
        W: Clone + Send + Sync + Spill + 'static;
}

/// Per-partition combine used on both sides of `reduce_by_key`.
///
/// Keys are emitted in **first-seen order**, not hash-map iteration order:
/// given the same partition contents, the output bytes are identical across
/// runs and across processes. The distributed exchange depends on this —
/// every shard of a sharded run must produce the same result a
/// single-process run does, and `HashMap`'s per-instance random seed would
/// scramble emission order per process.
fn combine_partition<K, V, F>(part: &[(K, V)], f: &F) -> Vec<(K, V)>
where
    K: Hash + Eq + Clone,
    V: Clone,
    F: Fn(&V, &V) -> V,
{
    let mut index: HashMap<K, usize> = HashMap::with_capacity(part.len());
    let mut out: Vec<(K, V)> = Vec::new();
    for (k, v) in part {
        match index.entry(k.clone()) {
            Entry::Occupied(e) => {
                let slot = &mut out[*e.get()].1;
                *slot = f(slot, v);
            }
            Entry::Vacant(e) => {
                e.insert(out.len());
                out.push((k.clone(), v.clone()));
            }
        }
    }
    out
}

impl<K, V> KeyedDataset<K, V> for Dataset<(K, V)>
where
    K: Hash + Eq + Clone + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
{
    fn map_values<W, F>(&self, f: F) -> Dataset<(K, W)>
    where
        W: Clone + Send + Sync + 'static,
        F: Fn(&V) -> W + Send + Sync + 'static,
    {
        // Keys are untouched, so whatever hash partitioning held before
        // still holds after. The lineage records a key-preserving
        // `MapValues` (not a generic `Map` plus a claim), which is how the
        // verifier knows the invariant legitimately survives.
        let tag = self.partitioning();
        self.map(move |(k, v)| (k.clone(), f(v)))
            .relabel_op("map_values", OpKind::MapValues, tag)
    }

    fn map_values_with_key<W, F>(&self, f: F) -> Dataset<(K, W)>
    where
        W: Clone + Send + Sync + 'static,
        F: Fn(&K, &V) -> W + Send + Sync + 'static,
    {
        let tag = self.partitioning();
        self.map(move |(k, v)| (k.clone(), f(k, v))).relabel_op(
            "map_values",
            OpKind::MapValues,
            tag,
        )
    }

    fn group_by_key(&self, rt: &Runtime) -> Dataset<(K, Vec<V>)>
    where
        K: Spill,
        V: Spill,
    {
        let parts = rt.partitions();
        let gov = rt.governor();
        shuffle(rt, self)
            .map_partitions(move |part| {
                // First-seen key order, for cross-run and cross-shard
                // determinism (see `combine_partition`).
                let mut index: HashMap<K, usize> = HashMap::new();
                let mut out: Vec<(K, Vec<V>)> = Vec::new();
                for (k, v) in part {
                    match index.entry(k.clone()) {
                        Entry::Occupied(e) => out[*e.get()].1.push(v.clone()),
                        Entry::Vacant(e) => {
                            e.insert(out.len());
                            out.push((k.clone(), vec![v.clone()]));
                        }
                    }
                }
                crate::governor::note_state(&gov, &out);
                out
            })
            // Grouping within a hash partition keeps keys where they hashed.
            .relabel_op(
                "group_by_key",
                OpKind::LocalCombine,
                Partitioning::HashByKey { parts },
            )
    }

    fn reduce_by_key<F>(&self, rt: &Runtime, f: F) -> Dataset<(K, V)>
    where
        K: Spill,
        V: Spill,
        F: Fn(&V, &V) -> V + Send + Sync + 'static,
    {
        let parts = rt.partitions();
        let f = Arc::new(f);
        let gov = rt.governor();
        if hashed_by_key(self.partitioning(), parts) {
            // Already co-located by key: a single local combine pass, no
            // map-side stage, no shuffle.
            rt.note_shuffle_elided();
            audit_elision(rt, self, parts);
            return self
                .clone()
                .wrap_op(
                    "shuffle(elided)",
                    OpKind::ElidedShuffle { parts },
                    Partitioning::HashByKey { parts },
                )
                .map_partitions(move |part| {
                    let out = combine_partition(part, f.as_ref());
                    crate::governor::note_state(&gov, &out);
                    out
                })
                .relabel_op(
                    "reduce_by_key",
                    OpKind::LocalCombine,
                    Partitioning::HashByKey { parts },
                );
        }
        // Map-side combine shrinks the shuffle, as in Spark. The combine is a
        // deferred narrow stage, so it fuses with both the upstream chain and
        // the shuffle's map side: one pass over the input.
        let f1 = Arc::clone(&f);
        let gov1 = Arc::clone(&gov);
        let combined = self
            .map_partitions(move |part| {
                let out = combine_partition(part, f1.as_ref());
                crate::governor::note_state(&gov1, &out);
                out
            })
            .relabel_op(
                "combine(map-side)",
                OpKind::LocalCombine,
                self.partitioning(),
            );
        let f2 = Arc::clone(&f);
        shuffle(rt, &combined)
            .map_partitions(move |part| {
                let out = combine_partition(part, f2.as_ref());
                crate::governor::note_state(&gov, &out);
                out
            })
            .relabel_op(
                "reduce_by_key",
                OpKind::LocalCombine,
                Partitioning::HashByKey { parts },
            )
    }

    fn aggregate_by_key<A, I, U, M>(
        &self,
        rt: &Runtime,
        init: I,
        update: U,
        merge: M,
    ) -> Dataset<(K, A)>
    where
        K: Spill,
        A: Clone + Send + Sync + Spill + 'static,
        I: Fn() -> A + Send + Sync + 'static,
        U: Fn(&mut A, &V) + Send + Sync + 'static,
        M: Fn(&mut A, &A) + Send + Sync + 'static,
    {
        let parts = rt.partitions();
        let gov = rt.governor();
        let gov1 = Arc::clone(&gov);
        let fold_partition = move |part: &[(K, V)]| {
            // First-seen key order (see `combine_partition`).
            let mut index: HashMap<K, usize> = HashMap::new();
            let mut out: Vec<(K, A)> = Vec::new();
            for (k, v) in part {
                let slot = match index.entry(k.clone()) {
                    Entry::Occupied(e) => *e.get(),
                    Entry::Vacant(e) => {
                        e.insert(out.len());
                        out.push((k.clone(), init()));
                        out.len() - 1
                    }
                };
                update(&mut out[slot].1, v);
            }
            crate::governor::note_state(&gov1, &out);
            out
        };
        if hashed_by_key(self.partitioning(), parts) {
            // Keys are co-located: fold each partition once, done.
            rt.note_shuffle_elided();
            audit_elision(rt, self, parts);
            return self
                .clone()
                .wrap_op(
                    "shuffle(elided)",
                    OpKind::ElidedShuffle { parts },
                    Partitioning::HashByKey { parts },
                )
                .map_partitions(fold_partition)
                .relabel_op(
                    "aggregate_by_key",
                    OpKind::LocalCombine,
                    Partitioning::HashByKey { parts },
                );
        }
        // Map-side: fold values into per-key accumulators (deferred, fused).
        let partials = self.map_partitions(fold_partition).relabel_op(
            "combine(map-side)",
            OpKind::LocalCombine,
            self.partitioning(),
        );
        // Reduce-side: merge accumulators.
        shuffle(rt, &partials)
            .map_partitions(move |part| {
                // First-seen key order (see `combine_partition`).
                let mut index: HashMap<K, usize> = HashMap::new();
                let mut out: Vec<(K, A)> = Vec::new();
                for (k, a) in part {
                    match index.entry(k.clone()) {
                        Entry::Occupied(e) => merge(&mut out[*e.get()].1, a),
                        Entry::Vacant(e) => {
                            e.insert(out.len());
                            out.push((k.clone(), a.clone()));
                        }
                    }
                }
                crate::governor::note_state(&gov, &out);
                out
            })
            .relabel_op(
                "aggregate_by_key",
                OpKind::LocalCombine,
                Partitioning::HashByKey { parts },
            )
    }

    fn join<W>(&self, rt: &Runtime, other: &Dataset<(K, W)>) -> Dataset<(K, (V, W))>
    where
        K: Spill,
        V: Spill,
        W: Clone + Send + Sync + Spill + 'static,
    {
        let parts = rt.partitions();
        let left = shuffle(rt, self);
        let right = shuffle(rt, other);
        let (lin_l, lin_r) = (left.lineage(), right.lineage());
        let left_parts = left.parts(rt);
        let right_parts = right.parts(rt);
        let out = rt.run_indexed(parts, move |p| {
            // Build on the right, probe with the left (co-partitioned).
            let mut table: HashMap<&K, Vec<&W>> = HashMap::new();
            for (k, w) in right_parts[p].iter() {
                table.entry(k).or_default().push(w);
            }
            let mut out = Vec::new();
            for (k, v) in left_parts[p].iter() {
                if let Some(ws) = table.get(k) {
                    for w in ws {
                        out.push((k.clone(), (v.clone(), (*w).clone())));
                    }
                }
            }
            Arc::new(out)
        });
        let rows: u64 = out.iter().map(|p| p.len() as u64).sum();
        let node = crate::lineage::PlanNode::new(
            "join",
            OpKind::Join { parts },
            Partitioning::HashByKey { parts },
            Some(rows),
            true,
            std::mem::size_of::<(K, (V, W))>() as u64,
            vec![lin_l, lin_r],
        );
        let joined =
            Dataset::from_arc_partitions_lineage(out, Partitioning::HashByKey { parts }, node);
        stamp_wide_locality(rt, joined)
    }

    fn semi_join<W>(&self, rt: &Runtime, keys: &Dataset<(K, W)>) -> Dataset<(K, V)>
    where
        K: Spill,
        V: Spill,
        W: Clone + Send + Sync + Spill + 'static,
    {
        let parts = rt.partitions();
        let left = shuffle(rt, self);
        let right = shuffle(rt, keys);
        let (lin_l, lin_r) = (left.lineage(), right.lineage());
        let left_parts = left.parts(rt);
        let right_parts = right.parts(rt);
        let out = rt.run_indexed(parts, move |p| {
            let keyset: std::collections::HashSet<&K> =
                right_parts[p].iter().map(|(k, _)| k).collect();
            Arc::new(
                left_parts[p]
                    .iter()
                    .filter(|(k, _)| keyset.contains(k))
                    .cloned()
                    .collect::<Vec<_>>(),
            )
        });
        let rows: u64 = out.iter().map(|p| p.len() as u64).sum();
        let node = crate::lineage::PlanNode::new(
            "semi_join",
            OpKind::Join { parts },
            Partitioning::HashByKey { parts },
            Some(rows),
            true,
            std::mem::size_of::<(K, V)>() as u64,
            vec![lin_l, lin_r],
        );
        let joined =
            Dataset::from_arc_partitions_lineage(out, Partitioning::HashByKey { parts }, node);
        stamp_wide_locality(rt, joined)
    }
}

/// Stamps a wide operator's output with the shard's owned bucket range
/// under a sharded layout: partition `p` was reduced from co-partitioned
/// inputs whose partition-`p` content is only guaranteed present on `p`'s
/// owner. Single-process outputs stay replicated.
fn stamp_wide_locality<T: Clone + Send + Sync + 'static>(
    rt: &Runtime,
    out: Dataset<T>,
) -> Dataset<T> {
    let layout = rt.layout();
    if layout.is_sharded() {
        let parts = out.num_partitions();
        out.with_locality(Locality::Owned(Arc::new(layout.range_mask(parts))))
    } else {
        out
    }
}

/// Removes duplicate elements (by `Eq`/`Hash`) via a shuffle.
pub fn distinct<T>(rt: &Runtime, input: &Dataset<T>) -> Dataset<T>
where
    T: Hash + Eq + Clone + Send + Sync + Spill + 'static,
{
    let keyed: Dataset<(T, ())> = input.map(|x| (x.clone(), ()));
    keyed.reduce_by_key(rt, |_, _| ()).map(|(k, _)| k.clone())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rt() -> Runtime {
        Runtime::with_partitions(4, 4)
    }

    fn sorted<T: Ord>(mut v: Vec<T>) -> Vec<T> {
        v.sort();
        v
    }

    #[test]
    fn shuffle_co_locates_keys_and_tags_output() {
        let rt = rt();
        let d = Dataset::from_vec(&rt, (0..100).map(|i| (i % 10, i)).collect::<Vec<_>>());
        let s = shuffle(&rt, &d);
        assert_eq!(s.partitioning(), Partitioning::HashByKey { parts: 4 });
        // Every key must live in exactly one partition.
        for key in 0..10 {
            let holders = s
                .parts(&rt)
                .iter()
                .filter(|p| p.iter().any(|(k, _)| *k == key))
                .count();
            assert_eq!(holders, 1, "key {key} spread across partitions");
        }
        assert_eq!(s.count(&rt), 100);
        let stats = rt.stats();
        assert!(stats.shuffled_records >= 100);
        assert!(stats.shuffled_bytes >= stats.shuffled_records);
    }

    #[test]
    fn shuffle_on_prepartitioned_input_is_elided() {
        let rt = rt();
        let d = Dataset::from_vec(&rt, (0..100).map(|i| (i % 10, i)).collect::<Vec<_>>());
        let s = shuffle(&rt, &d);
        let before = rt.stats();
        let s2 = shuffle(&rt, &s);
        let delta = rt.stats().since(&before);
        assert_eq!(delta.shuffles, 0, "second shuffle must be elided");
        assert_eq!(delta.shuffled_records, 0);
        assert_eq!(delta.shuffles_elided, 1);
        assert_eq!(sorted(s2.collect(&rt)), sorted(s.collect(&rt)));
    }

    #[test]
    fn reduce_by_key_on_prepartitioned_input_does_zero_shuffles() {
        let rt = rt();
        let d = Dataset::from_vec(&rt, (0..1000u64).map(|i| (i % 13, i)).collect::<Vec<_>>());
        let s = shuffle(&rt, &d);
        let before = rt.stats();
        let r = s.reduce_by_key(&rt, |a, b| a + b);
        let got = sorted(r.collect(&rt));
        let delta = rt.stats().since(&before);
        assert_eq!(delta.shuffles, 0, "pre-partitioned reduce must not shuffle");
        assert_eq!(delta.shuffled_records, 0);
        assert_eq!(delta.shuffled_bytes, 0);
        assert_eq!(delta.shuffles_elided, 1);
        // And the answer is still right.
        let mut expected: HashMap<u64, u64> = HashMap::new();
        for i in 0..1000u64 {
            *expected.entry(i % 13).or_default() += i;
        }
        assert_eq!(got, sorted(expected.into_iter().collect()));
    }

    #[test]
    fn elision_survives_tag_preserving_narrow_ops() {
        let rt = rt();
        let d = Dataset::from_vec(&rt, (0..500u64).map(|i| (i % 9, i)).collect::<Vec<_>>());
        // coalesce-then-aggregate shape: shuffle once, then filter +
        // map_values (both tag-preserving), then re-key by the same key.
        let s = shuffle(&rt, &d)
            .filter(|(_, v)| v % 2 == 0)
            .map_values(|v| v * 10);
        assert_eq!(s.partitioning(), Partitioning::HashByKey { parts: 4 });
        let before = rt.stats();
        let r = s.reduce_by_key(&rt, |a, b| a + b);
        let out = sorted(r.collect(&rt));
        let delta = rt.stats().since(&before);
        assert_eq!(delta.shuffles, 0);
        assert_eq!(delta.shuffles_elided, 1);
        let mut expected: HashMap<u64, u64> = HashMap::new();
        for i in (0..500u64).filter(|i| i % 2 == 0) {
            *expected.entry(i % 9).or_default() += i * 10;
        }
        assert_eq!(out, sorted(expected.into_iter().collect()));
    }

    #[test]
    fn group_by_key_collects_all_values() {
        let rt = rt();
        let d = Dataset::from_vec(&rt, vec![(1, "a"), (2, "b"), (1, "c"), (1, "d")]);
        let g = d.group_by_key(&rt);
        assert_eq!(g.partitioning(), Partitioning::HashByKey { parts: 4 });
        let mut groups = g.collect(&rt);
        groups.sort_by_key(|(k, _)| *k);
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0].0, 1);
        assert_eq!(sorted(groups[0].1.clone()), vec!["a", "c", "d"]);
        assert_eq!(groups[1].1, vec!["b"]);
    }

    #[test]
    fn map_values_preserves_partitioning() {
        let rt = rt();
        let d = Dataset::from_vec(&rt, vec![(1u32, 2u32), (2, 3)]);
        assert_eq!(
            d.map_values(|v| v + 1).partitioning(),
            Partitioning::Unknown
        );
        let s = shuffle(&rt, &d);
        let mv = s.map_values(|v| v + 1);
        assert_eq!(mv.partitioning(), Partitioning::HashByKey { parts: 4 });
        assert_eq!(sorted(mv.collect(&rt)), vec![(1, 3), (2, 4)]);
    }

    #[test]
    fn reduce_by_key_matches_sequential() {
        let rt = rt();
        let data: Vec<(u32, u64)> = (0..1000).map(|i| (i % 7, i as u64)).collect();
        let mut expected: HashMap<u32, u64> = HashMap::new();
        for (k, v) in &data {
            *expected.entry(*k).or_default() += v;
        }
        let d = Dataset::from_vec(&rt, data);
        let r = d.reduce_by_key(&rt, |a, b| a + b);
        let got: HashMap<u32, u64> = r.collect(&rt).into_iter().collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn aggregate_by_key_counts() {
        let rt = rt();
        let d = Dataset::from_vec(&rt, (0..50).map(|i| (i % 5, i)).collect::<Vec<_>>());
        let a = d.aggregate_by_key(&rt, || 0usize, |acc, _| *acc += 1, |a, b| *a += b);
        let mut got = a.collect(&rt);
        got.sort();
        assert_eq!(got, (0..5).map(|k| (k, 10)).collect::<Vec<_>>());
    }

    #[test]
    fn aggregate_by_key_elides_on_prepartitioned_input() {
        let rt = rt();
        let d = Dataset::from_vec(&rt, (0..50).map(|i| (i % 5, i)).collect::<Vec<_>>());
        let s = shuffle(&rt, &d);
        let before = rt.stats();
        let a = s.aggregate_by_key(&rt, || 0usize, |acc, _| *acc += 1, |a, b| *a += b);
        let got = sorted(a.collect(&rt));
        let delta = rt.stats().since(&before);
        assert_eq!(delta.shuffles, 0);
        assert_eq!(delta.shuffles_elided, 1);
        assert_eq!(got, (0..5).map(|k| (k, 10)).collect::<Vec<_>>());
    }

    #[test]
    fn join_inner_multiplicity() {
        let rt = rt();
        let left = Dataset::from_vec(&rt, vec![(1, "l1"), (1, "l2"), (2, "l3"), (3, "l4")]);
        let right = Dataset::from_vec(&rt, vec![(1, "r1"), (2, "r2"), (2, "r3"), (4, "r4")]);
        let j = left.join(&rt, &right);
        let mut got = j.collect(&rt);
        got.sort();
        assert_eq!(
            got,
            vec![
                (1, ("l1", "r1")),
                (1, ("l2", "r1")),
                (2, ("l3", "r2")),
                (2, ("l3", "r3")),
            ]
        );
    }

    #[test]
    fn join_on_two_prepartitioned_inputs_moves_nothing() {
        let rt = rt();
        let left = shuffle(&rt, &Dataset::from_vec(&rt, vec![(1, "a"), (2, "b")]));
        let right = shuffle(&rt, &Dataset::from_vec(&rt, vec![(1, 10), (3, 30)]));
        let before = rt.stats();
        let j = left.join(&rt, &right);
        assert_eq!(j.collect(&rt), vec![(1, ("a", 10))]);
        let delta = rt.stats().since(&before);
        assert_eq!(delta.shuffles, 0);
        assert_eq!(delta.shuffled_records, 0);
        assert_eq!(delta.shuffles_elided, 2);
    }

    #[test]
    fn semi_join_filters() {
        let rt = rt();
        let left = Dataset::from_vec(&rt, vec![(1, "a"), (2, "b"), (3, "c")]);
        let right = Dataset::from_vec(&rt, vec![(1, ()), (3, ()), (9, ())]);
        let s = left.semi_join(&rt, &right);
        assert_eq!(sorted(s.collect(&rt)), vec![(1, "a"), (3, "c")]);
    }

    #[test]
    fn distinct_dedups() {
        let rt = rt();
        let d = Dataset::from_vec(&rt, vec![3, 1, 3, 2, 1, 1]);
        assert_eq!(sorted(distinct(&rt, &d).collect(&rt)), vec![1, 2, 3]);
    }

    #[test]
    fn wide_ops_on_empty_input() {
        let rt = rt();
        let d: Dataset<(u32, u32)> = Dataset::empty();
        assert_eq!(d.group_by_key(&rt).count(&rt), 0);
        assert_eq!(d.reduce_by_key(&rt, |a, _| *a).count(&rt), 0);
        let other: Dataset<(u32, u32)> = Dataset::from_vec(&rt, vec![(1, 1)]);
        assert_eq!(d.join(&rt, &other).count(&rt), 0);
        assert_eq!(other.join(&rt, &d).count(&rt), 0);
    }

    #[test]
    fn lineage_records_shuffles_and_elisions() {
        let rt = rt();
        let d = Dataset::from_vec(&rt, (0..40u64).map(|i| (i % 5, i)).collect::<Vec<_>>());
        let s = shuffle(&rt, &d);
        assert_eq!(s.lineage().op, OpKind::Shuffle { parts: 4 });
        assert_eq!(s.lineage().rows, Some(40));
        let r = s.reduce_by_key(&rt, |a, b| a + b);
        let root = r.lineage();
        assert_eq!(root.op, OpKind::LocalCombine);
        assert_eq!(root.inputs[0].op, OpKind::ElidedShuffle { parts: 4 });
        assert_eq!(root.inputs[0].inputs[0].op, OpKind::Shuffle { parts: 4 });
    }

    /// Satellite regression test: a deliberately wrong `HashByKey` tag on
    /// which an elision fires is caught by checked mode — instead of the
    /// elided reduce silently producing per-partition (wrong) results.
    ///
    /// The fixture is built so that partition 0 is entirely correct (the
    /// debug-build sampled audit passes) while partition 1 smuggles in a key
    /// that hashes to partition 0 — only the full checked-mode scan sees it.
    #[test]
    #[should_panic(expected = "partitioning claim")]
    fn checked_mode_catches_deliberately_wrong_tag() {
        let rt = Runtime::with_partitions(2, 2);
        rt.set_checked(true);
        let mut p0 = Vec::new();
        let mut p1 = Vec::new();
        for k in 0..200u64 {
            if bucket_of(&k, 2) == 0 {
                p0.push((k, 1u64));
            } else {
                p1.push((k, 1u64));
            }
        }
        // Find a fresh key that belongs to partition 0 and misplace it.
        let stray = (200..10_000u64)
            .find(|k| bucket_of(k, 2) == 0)
            .unwrap_or(200);
        p1.push((stray, 1u64));
        let wrongly_tagged = Dataset::from_partitions(vec![p0, p1])
            .with_partitioning(Partitioning::HashByKey { parts: 2 });
        // Elision fires on the strength of the tag; checked mode must abort.
        let _ = wrongly_tagged.reduce_by_key(&rt, |a, b| a + b).collect(&rt);
    }

    /// In dev (debug) builds even without checked mode, a wrong tag whose
    /// misplacement is visible in the sampled partition trips the
    /// `debug_assert` audit at the elision point.
    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "elision audit")]
    fn debug_audit_samples_partition_zero() {
        let rt = Runtime::with_partitions(2, 2);
        // Every key placed in the *wrong* partition: partition 0's sample
        // fails immediately.
        let mut p0 = Vec::new();
        let mut p1 = Vec::new();
        for k in 0..100u64 {
            if bucket_of(&k, 2) == 0 {
                p1.push((k, 1u64));
            } else {
                p0.push((k, 1u64));
            }
        }
        let wrongly_tagged = Dataset::from_partitions(vec![p0, p1])
            .with_partitioning(Partitioning::HashByKey { parts: 2 });
        let _ = wrongly_tagged.reduce_by_key(&rt, |a, b| a + b).collect(&rt);
    }

    /// With a *correct* tag, checked mode verifies and passes; results match.
    #[test]
    fn checked_mode_accepts_sound_elisions() {
        let rt = Runtime::with_partitions(2, 2);
        rt.set_checked(true);
        let d = Dataset::from_vec(&rt, (0..100u64).map(|i| (i % 7, i)).collect::<Vec<_>>());
        let s = shuffle(&rt, &d);
        let r = s.reduce_by_key(&rt, |a, b| a + b);
        let mut expected: HashMap<u64, u64> = HashMap::new();
        for i in 0..100u64 {
            *expected.entry(i % 7).or_default() += i;
        }
        assert_eq!(
            sorted(r.collect(&rt)),
            sorted(expected.into_iter().collect())
        );
    }

    #[test]
    fn shuffle_predicts_movement_from_lineage() {
        let rt = rt();
        let d = Dataset::from_vec(&rt, (0..64u64).map(|i| (i % 3, i)).collect::<Vec<_>>());
        let before = rt.stats();
        let _ = shuffle(&rt, &d).collect(&rt);
        let delta = rt.stats().since(&before);
        // Source row count is exact, so prediction matches actual movement.
        assert_eq!(delta.shuffles_estimated, 1);
        assert_eq!(delta.predicted_shuffled_records, delta.shuffled_records);
        assert_eq!(delta.predicted_shuffled_bytes, delta.shuffled_bytes);
    }

    #[test]
    fn shuffle_is_byte_identical_across_schedulers() {
        // The shuffle map side morselizes under stealing; the bucket-wise
        // morsel merge must reproduce the barrier pass exactly — not just up
        // to reordering.
        let rt = rt();
        rt.set_morsel_rows(32);
        let mut skewed: Vec<Vec<(u64, u64)>> = vec![(0..600).map(|i| (i % 17, i)).collect()];
        skewed.extend((1..4u64).map(|p| (0..100).map(|i| (i % 17, i + 1000 * p)).collect()));
        let d = Dataset::from_partitions(skewed);
        rt.set_stealing(false);
        let barrier: Vec<Vec<(u64, u64)>> = shuffle(&rt, &d)
            .parts(&rt)
            .iter()
            .map(|p| p.as_ref().clone())
            .collect();
        rt.set_stealing(true);
        let before = rt.stats();
        let stolen: Vec<Vec<(u64, u64)>> = shuffle(&rt, &d)
            .parts(&rt)
            .iter()
            .map(|p| p.as_ref().clone())
            .collect();
        rt.set_stealing(false);
        assert_eq!(stolen, barrier, "per-partition shuffle outputs must match");
        let delta = rt.stats().since(&before);
        assert!(delta.morsels > 0, "map side must have run as morsels");
    }

    #[test]
    fn reduce_by_key_matches_across_schedulers() {
        let rt = rt();
        rt.set_morsel_rows(16);
        let data: Vec<(u32, u64)> = (0..2000).map(|i| (i % 11, i as u64)).collect();
        let d = Dataset::from_vec(&rt, data);
        rt.set_stealing(false);
        let barrier = sorted(d.reduce_by_key(&rt, |a, b| a + b).collect(&rt));
        rt.set_stealing(true);
        let stolen = sorted(d.reduce_by_key(&rt, |a, b| a + b).collect(&rt));
        rt.set_stealing(false);
        assert_eq!(stolen, barrier);
    }

    #[test]
    fn elided_reduce_stays_per_partition_under_stealing() {
        // ISSUE invariant: elided-shuffle waves still execute per-partition —
        // the local combine is a map_partitions stage, which is not
        // splittable, so stealing must not morselize it (and the elision
        // accounting is unchanged).
        let rt = rt();
        let d = Dataset::from_vec(&rt, (0..500u64).map(|i| (i % 13, i)).collect::<Vec<_>>());
        let s = shuffle(&rt, &d);
        rt.set_stealing(true);
        let before = rt.stats();
        let got = sorted(s.reduce_by_key(&rt, |a, b| a + b).collect(&rt));
        rt.set_stealing(false);
        let delta = rt.stats().since(&before);
        assert_eq!(delta.shuffles, 0);
        assert_eq!(delta.shuffles_elided, 1);
        assert_eq!(
            delta.morsels, 0,
            "local combine is whole-partition: no morsels"
        );
        assert!(delta.tasks > 0, "combine ran as barrier tasks");
        let mut expected: HashMap<u64, u64> = HashMap::new();
        for i in 0..500u64 {
            *expected.entry(i % 13).or_default() += i;
        }
        assert_eq!(got, sorted(expected.into_iter().collect()));
    }

    #[test]
    fn reduce_by_key_is_order_insensitive() {
        // Commutative+associative f must give identical results regardless of
        // partitioning.
        let data: Vec<(u8, i64)> = (0..200).map(|i| ((i % 3) as u8, i as i64)).collect();
        let rt1 = Runtime::with_partitions(1, 1);
        let rt4 = Runtime::with_partitions(4, 7);
        let r1 = Dataset::from_vec(&rt1, data.clone()).reduce_by_key(&rt1, |a, b| a + b);
        let r4 = Dataset::from_vec(&rt4, data).reduce_by_key(&rt4, |a, b| a + b);
        assert_eq!(sorted(r1.collect(&rt1)), sorted(r4.collect(&rt4)));
    }
}

#[cfg(test)]
mod golden {
    //! Pins `bucket_of` assignments. If this test fails, the partitioner's
    //! hash changed — which silently invalidates every persisted
    //! `HashByKey` layout. Do not update the constants casually.
    use super::bucket_of;

    #[test]
    fn bucket_assignments_are_pinned() {
        let u64_cases: [(u64, usize); 12] = [
            (0, 5),
            (1, 4),
            (2, 7),
            (3, 6),
            (4, 1),
            (5, 0),
            (6, 3),
            (7, 2),
            (41, 4),
            (97, 4),
            (1000, 4),
            (u64::MAX, 5),
        ];
        for (k, want) in u64_cases {
            assert_eq!(bucket_of(&k, 8), want, "u64 key {k} moved buckets");
        }
        let str_cases: [(&str, usize); 6] = [
            ("", 6),
            ("a", 1),
            ("b", 6),
            ("vertex", 0),
            ("edge", 1),
            ("zoom", 7),
        ];
        for (s, want) in str_cases {
            assert_eq!(bucket_of(&s, 8), want, "str key {s:?} moved buckets");
        }
        assert_eq!(bucket_of(&(1u64, 2u64), 8), 6);
        assert_eq!(bucket_of(&(7u64, 7u64), 8), 5);
        // A non-power-of-two partition count exercises the modulo path.
        assert_eq!(bucket_of(&0u64, 3), 1);
        assert_eq!(bucket_of(&1u64, 3), 0);
        assert_eq!(bucket_of(&2u64, 3), 0);
    }

    #[test]
    fn integer_widths_hash_identically() {
        // The seeded hasher feeds every fixed-width integer through its
        // little-endian bytes, so assignments cannot depend on the platform
        // or on which `write_uN` the standard library routes through.
        assert_eq!(bucket_of(&42u64, 8), bucket_of(&42usize, 8));
        assert_eq!(bucket_of(&42i64, 8), bucket_of(&42isize, 8));
    }
}
