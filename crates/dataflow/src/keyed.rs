//! Keyed (wide) operators: the shuffle-based second-order functions the
//! paper's algorithms are written in — `groupBy`, `reduceByKey`,
//! `aggregateByKey`, `join`, `semijoin`, and `distinct`.
//!
//! Every wide operator hash-partitions records by key across the output
//! partitions (a real shuffle with per-partition bucket exchange), so the
//! data-movement behaviour of the different TGraph representations — RG
//! shuffling a record per snapshot copy versus OG shuffling one record per
//! entity — is reproduced, not simulated.

use crate::dataset::Dataset;
use crate::runtime::Runtime;
use std::collections::hash_map::{DefaultHasher, Entry};
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

fn bucket_of<K: Hash>(key: &K, parts: usize) -> usize {
    let mut h = DefaultHasher::new();
    key.hash(&mut h);
    (h.finish() % parts as u64) as usize
}

/// Hash-partitions a keyed dataset: output partition `p` holds exactly the
/// records whose key hashes to `p`. This is the shuffle every wide operator
/// builds on.
pub fn shuffle<K, V>(rt: &Runtime, input: &Dataset<(K, V)>) -> Dataset<(K, V)>
where
    K: Hash + Eq + Clone + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
{
    let parts = rt.partitions();
    // Map side: split every input partition into `parts` buckets.
    let bucketed: Dataset<Vec<(K, V)>> = input.map_partitions(rt, move |part| {
        let mut buckets: Vec<Vec<(K, V)>> = (0..parts).map(|_| Vec::new()).collect();
        for (k, v) in part {
            buckets[bucket_of(k, parts)].push((k.clone(), v.clone()));
        }
        buckets
    });
    let moved: u64 = bucketed
        .partitions()
        .iter()
        .map(|p| p.iter().map(|b| b.len() as u64).sum::<u64>())
        .sum();
    rt.note_shuffle(moved);
    // Reduce side: partition `p` concatenates bucket `p` of every map output.
    let sources: Vec<Arc<Vec<Vec<(K, V)>>>> = bucketed.partitions().to_vec();
    let sources = Arc::new(sources);
    let out = rt.run_indexed(parts, move |p| {
        let mut merged = Vec::new();
        for src in sources.iter() {
            merged.extend_from_slice(&src[p]);
        }
        merged
    });
    Dataset::from_partitions(out)
}

/// Extension trait providing the wide operators on key–value datasets.
pub trait KeyedDataset<K, V> {
    /// Groups values by key: `groupBy` of the paper's algorithms.
    fn group_by_key(&self, rt: &Runtime) -> Dataset<(K, Vec<V>)>;

    /// Reduces values per key with a commutative, associative function,
    /// combining map-side before shuffling (Spark's `reduceByKey`).
    fn reduce_by_key<F>(&self, rt: &Runtime, f: F) -> Dataset<(K, V)>
    where
        F: Fn(&V, &V) -> V + Send + Sync + 'static;

    /// Aggregates values per key into an accumulator type, with map-side
    /// combine (`aggregateByKey`). `update` folds a value into an
    /// accumulator, `merge` combines two accumulators.
    fn aggregate_by_key<A, I, U, M>(
        &self,
        rt: &Runtime,
        init: I,
        update: U,
        merge: M,
    ) -> Dataset<(K, A)>
    where
        A: Clone + Send + Sync + 'static,
        I: Fn() -> A + Send + Sync + 'static,
        U: Fn(&mut A, &V) + Send + Sync + 'static,
        M: Fn(&mut A, &A) + Send + Sync + 'static;

    /// Inner hash join on the key.
    fn join<W>(&self, rt: &Runtime, other: &Dataset<(K, W)>) -> Dataset<(K, (V, W))>
    where
        W: Clone + Send + Sync + 'static;

    /// Left semijoin: keeps records whose key appears in `keys`.
    fn semi_join<W>(&self, rt: &Runtime, keys: &Dataset<(K, W)>) -> Dataset<(K, V)>
    where
        W: Clone + Send + Sync + 'static;
}

impl<K, V> KeyedDataset<K, V> for Dataset<(K, V)>
where
    K: Hash + Eq + Clone + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
{
    fn group_by_key(&self, rt: &Runtime) -> Dataset<(K, Vec<V>)> {
        shuffle(rt, self).map_partitions(rt, |part| {
            let mut groups: HashMap<K, Vec<V>> = HashMap::new();
            for (k, v) in part {
                groups.entry(k.clone()).or_default().push(v.clone());
            }
            groups.into_iter().collect()
        })
    }

    fn reduce_by_key<F>(&self, rt: &Runtime, f: F) -> Dataset<(K, V)>
    where
        F: Fn(&V, &V) -> V + Send + Sync + 'static,
    {
        let f = Arc::new(f);
        // Map-side combine shrinks the shuffle, as in Spark.
        let f1 = Arc::clone(&f);
        let combined = self.map_partitions(rt, move |part| {
            let mut acc: HashMap<K, V> = HashMap::with_capacity(part.len());
            for (k, v) in part {
                match acc.entry(k.clone()) {
                    Entry::Occupied(mut e) => {
                        let merged = f1(e.get(), v);
                        e.insert(merged);
                    }
                    Entry::Vacant(e) => {
                        e.insert(v.clone());
                    }
                }
            }
            acc.into_iter().collect()
        });
        let f2 = Arc::clone(&f);
        shuffle(rt, &combined).map_partitions(rt, move |part| {
            let mut acc: HashMap<K, V> = HashMap::with_capacity(part.len());
            for (k, v) in part {
                match acc.entry(k.clone()) {
                    Entry::Occupied(mut e) => {
                        let merged = f2(e.get(), v);
                        e.insert(merged);
                    }
                    Entry::Vacant(e) => {
                        e.insert(v.clone());
                    }
                }
            }
            acc.into_iter().collect()
        })
    }

    fn aggregate_by_key<A, I, U, M>(
        &self,
        rt: &Runtime,
        init: I,
        update: U,
        merge: M,
    ) -> Dataset<(K, A)>
    where
        A: Clone + Send + Sync + 'static,
        I: Fn() -> A + Send + Sync + 'static,
        U: Fn(&mut A, &V) + Send + Sync + 'static,
        M: Fn(&mut A, &A) + Send + Sync + 'static,
    {
        let init = Arc::new(init);
        let init1 = Arc::clone(&init);
        let update = Arc::new(update);
        // Map-side: fold values into per-key accumulators.
        let partials = self.map_partitions(rt, move |part| {
            let mut acc: HashMap<K, A> = HashMap::new();
            for (k, v) in part {
                let a = acc.entry(k.clone()).or_insert_with(|| init1());
                update(a, v);
            }
            acc.into_iter().collect()
        });
        // Reduce-side: merge accumulators.
        let merge = Arc::new(merge);
        shuffle(rt, &partials).map_partitions(rt, move |part| {
            let mut acc: HashMap<K, A> = HashMap::new();
            for (k, a) in part {
                match acc.entry(k.clone()) {
                    Entry::Occupied(mut e) => merge(e.get_mut(), a),
                    Entry::Vacant(e) => {
                        e.insert(a.clone());
                    }
                }
            }
            acc.into_iter().collect()
        })
    }

    fn join<W>(&self, rt: &Runtime, other: &Dataset<(K, W)>) -> Dataset<(K, (V, W))>
    where
        W: Clone + Send + Sync + 'static,
    {
        let left = shuffle(rt, self);
        let right = shuffle(rt, other);
        let right_parts: Arc<Vec<_>> = Arc::new(right.partitions().to_vec());
        let left_parts: Arc<Vec<_>> = Arc::new(left.partitions().to_vec());
        let n = left_parts.len();
        let out = rt.run_indexed(n, move |p| {
            // Build on the right, probe with the left (co-partitioned).
            let mut table: HashMap<&K, Vec<&W>> = HashMap::new();
            for (k, w) in right_parts[p].iter() {
                table.entry(k).or_default().push(w);
            }
            let mut out = Vec::new();
            for (k, v) in left_parts[p].iter() {
                if let Some(ws) = table.get(k) {
                    for w in ws {
                        out.push((k.clone(), (v.clone(), (*w).clone())));
                    }
                }
            }
            out
        });
        Dataset::from_partitions(out)
    }

    fn semi_join<W>(&self, rt: &Runtime, keys: &Dataset<(K, W)>) -> Dataset<(K, V)>
    where
        W: Clone + Send + Sync + 'static,
    {
        let left = shuffle(rt, self);
        let right = shuffle(rt, keys);
        let right_parts: Arc<Vec<_>> = Arc::new(right.partitions().to_vec());
        let left_parts: Arc<Vec<_>> = Arc::new(left.partitions().to_vec());
        let n = left_parts.len();
        let out = rt.run_indexed(n, move |p| {
            let keyset: std::collections::HashSet<&K> =
                right_parts[p].iter().map(|(k, _)| k).collect();
            left_parts[p]
                .iter()
                .filter(|(k, _)| keyset.contains(k))
                .cloned()
                .collect::<Vec<_>>()
        });
        Dataset::from_partitions(out)
    }
}

/// Removes duplicate elements (by `Eq`/`Hash`) via a shuffle.
pub fn distinct<T>(rt: &Runtime, input: &Dataset<T>) -> Dataset<T>
where
    T: Hash + Eq + Clone + Send + Sync + 'static,
{
    let keyed: Dataset<(T, ())> = input.map(rt, |x| (x.clone(), ()));
    keyed
        .reduce_by_key(rt, |_, _| ())
        .map(rt, |(k, _)| k.clone())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rt() -> Runtime {
        Runtime::with_partitions(4, 4)
    }

    fn sorted<T: Ord>(mut v: Vec<T>) -> Vec<T> {
        v.sort();
        v
    }

    #[test]
    fn shuffle_co_locates_keys() {
        let rt = rt();
        let d = Dataset::from_vec(&rt, (0..100).map(|i| (i % 10, i)).collect::<Vec<_>>());
        let s = shuffle(&rt, &d);
        // Every key must live in exactly one partition.
        for key in 0..10 {
            let holders = s
                .partitions()
                .iter()
                .filter(|p| p.iter().any(|(k, _)| *k == key))
                .count();
            assert_eq!(holders, 1, "key {key} spread across partitions");
        }
        assert_eq!(s.count(&rt), 100);
        assert!(rt.stats().shuffled_records >= 100);
    }

    #[test]
    fn group_by_key_collects_all_values() {
        let rt = rt();
        let d = Dataset::from_vec(&rt, vec![(1, "a"), (2, "b"), (1, "c"), (1, "d")]);
        let g = d.group_by_key(&rt);
        let mut groups = g.collect();
        groups.sort_by_key(|(k, _)| *k);
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0].0, 1);
        assert_eq!(sorted(groups[0].1.clone()), vec!["a", "c", "d"]);
        assert_eq!(groups[1].1, vec!["b"]);
    }

    #[test]
    fn reduce_by_key_matches_sequential() {
        let rt = rt();
        let data: Vec<(u32, u64)> = (0..1000).map(|i| (i % 7, i as u64)).collect();
        let mut expected: HashMap<u32, u64> = HashMap::new();
        for (k, v) in &data {
            *expected.entry(*k).or_default() += v;
        }
        let d = Dataset::from_vec(&rt, data);
        let r = d.reduce_by_key(&rt, |a, b| a + b);
        let got: HashMap<u32, u64> = r.collect().into_iter().collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn aggregate_by_key_counts() {
        let rt = rt();
        let d = Dataset::from_vec(&rt, (0..50).map(|i| (i % 5, i)).collect::<Vec<_>>());
        let a = d.aggregate_by_key(&rt, || 0usize, |acc, _| *acc += 1, |a, b| *a += b);
        let mut got = a.collect();
        got.sort();
        assert_eq!(got, (0..5).map(|k| (k, 10)).collect::<Vec<_>>());
    }

    #[test]
    fn join_inner_multiplicity() {
        let rt = rt();
        let left = Dataset::from_vec(&rt, vec![(1, "l1"), (1, "l2"), (2, "l3"), (3, "l4")]);
        let right = Dataset::from_vec(&rt, vec![(1, "r1"), (2, "r2"), (2, "r3"), (4, "r4")]);
        let j = left.join(&rt, &right);
        let mut got = j.collect();
        got.sort();
        assert_eq!(
            got,
            vec![
                (1, ("l1", "r1")),
                (1, ("l2", "r1")),
                (2, ("l3", "r2")),
                (2, ("l3", "r3")),
            ]
        );
    }

    #[test]
    fn semi_join_filters() {
        let rt = rt();
        let left = Dataset::from_vec(&rt, vec![(1, "a"), (2, "b"), (3, "c")]);
        let right = Dataset::from_vec(&rt, vec![(1, ()), (3, ()), (9, ())]);
        let s = left.semi_join(&rt, &right);
        assert_eq!(sorted(s.collect()), vec![(1, "a"), (3, "c")]);
    }

    #[test]
    fn distinct_dedups() {
        let rt = rt();
        let d = Dataset::from_vec(&rt, vec![3, 1, 3, 2, 1, 1]);
        assert_eq!(sorted(distinct(&rt, &d).collect()), vec![1, 2, 3]);
    }

    #[test]
    fn wide_ops_on_empty_input() {
        let rt = rt();
        let d: Dataset<(u32, u32)> = Dataset::empty();
        assert_eq!(d.group_by_key(&rt).count(&rt), 0);
        assert_eq!(d.reduce_by_key(&rt, |a, _| *a).count(&rt), 0);
        let other: Dataset<(u32, u32)> = Dataset::from_vec(&rt, vec![(1, 1)]);
        assert_eq!(d.join(&rt, &other).count(&rt), 0);
        assert_eq!(other.join(&rt, &d).count(&rt), 0);
    }

    #[test]
    fn reduce_by_key_is_order_insensitive() {
        // Commutative+associative f must give identical results regardless of
        // partitioning.
        let data: Vec<(u8, i64)> = (0..200).map(|i| ((i % 3) as u8, i as i64)).collect();
        let rt1 = Runtime::with_partitions(1, 1);
        let rt4 = Runtime::with_partitions(4, 7);
        let r1 = Dataset::from_vec(&rt1, data.clone()).reduce_by_key(&rt1, |a, b| a + b);
        let r4 = Dataset::from_vec(&rt4, data).reduce_by_key(&rt4, |a, b| a + b);
        assert_eq!(sorted(r1.collect()), sorted(r4.collect()));
    }
}
