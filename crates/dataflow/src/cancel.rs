//! Cooperative cancellation for dataflow jobs: deadlines and explicit
//! abandonment threaded through the executor.
//!
//! A [`CancelToken`] is a cheap, cloneable handle carrying an "abandon this
//! work" flag plus an optional wall-clock deadline. Installing one with
//! [`CancelToken::scope`] makes every task wave launched from the enclosed
//! code check it: [`Runtime::run_indexed`](crate::Runtime::run_indexed)
//! refuses to launch a new wave once the token has tripped, and every task
//! in an in-flight wave re-checks the token before running, so a cancelled
//! query's queued partitions drain off the worker pool in microseconds
//! instead of finishing their (now pointless) work.
//!
//! Under the work-stealing scheduler
//! ([`Runtime::stealing`](crate::Runtime::stealing)) the check is finer
//! still: steal-loop drivers observe the token **between morsels**, so a
//! deadline interrupts a hot partition after at most one morsel's worth of
//! work (a few thousand rows) rather than after the partition's whole task.
//!
//! Cancellation surfaces as a typed unwind ([`Cancelled`]) that `scope`
//! converts into `Err(Cancelled)` at the boundary — operator code in between
//! needs no `Result` plumbing, mirroring how Spark propagates job
//! cancellation by interrupting task threads.
//!
//! ```
//! use tgraph_dataflow::{CancelToken, Dataset, Runtime};
//!
//! let rt = Runtime::new(2);
//! let d = Dataset::from_vec(&rt, (0..100).collect::<Vec<i64>>());
//! let token = CancelToken::new();
//! token.cancel();
//! let result = token.scope(|| d.map(|x| x * 2).collect(&rt));
//! assert!(result.is_err(), "cancelled before the wave launched");
//! ```

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// The unwind payload carried by a cancelled dataflow job. Caught and
/// converted to `Err(Cancelled)` by [`CancelToken::scope`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Cancelled;

impl std::fmt::Display for Cancelled {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("dataflow job cancelled")
    }
}

impl std::error::Error for Cancelled {}

struct Inner {
    flag: AtomicBool,
    deadline: Option<Instant>,
}

/// A cheap, cloneable cancellation handle: an explicit flag plus an optional
/// deadline. All clones observe the same flag.
#[derive(Clone)]
pub struct CancelToken {
    inner: Arc<Inner>,
}

impl CancelToken {
    /// A token with no deadline; trips only via [`CancelToken::cancel`].
    pub fn new() -> Self {
        CancelToken {
            inner: Arc::new(Inner {
                flag: AtomicBool::new(false),
                deadline: None,
            }),
        }
    }

    /// A token that additionally trips once `deadline` passes.
    pub fn with_deadline(deadline: Instant) -> Self {
        CancelToken {
            inner: Arc::new(Inner {
                flag: AtomicBool::new(false),
                deadline: Some(deadline),
            }),
        }
    }

    /// Trips the token: every holder observes cancellation from now on.
    pub fn cancel(&self) {
        self.inner.flag.store(true, Ordering::Relaxed);
    }

    /// Whether the token has tripped (explicitly or by deadline).
    pub fn is_cancelled(&self) -> bool {
        self.inner.flag.load(Ordering::Relaxed)
            || self.inner.deadline.is_some_and(|d| Instant::now() >= d)
    }

    /// The deadline, if one was set.
    pub fn deadline(&self) -> Option<Instant> {
        self.inner.deadline
    }

    /// Runs `f` with this token installed as the calling thread's current
    /// cancellation context. Task waves launched inside (directly or through
    /// any dataflow operator) check the token at wave boundaries and between
    /// partitions. Returns `Err(Cancelled)` if the work was abandoned;
    /// panics other than cancellation propagate unchanged.
    pub fn scope<R>(&self, f: impl FnOnce() -> R) -> Result<R, Cancelled> {
        let _guard = ScopeGuard::install(self.clone());
        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(f)) {
            Ok(r) => Ok(r),
            Err(payload) => {
                if payload.downcast_ref::<Cancelled>().is_some() {
                    Err(Cancelled)
                } else {
                    std::panic::resume_unwind(payload)
                }
            }
        }
    }
}

impl Default for CancelToken {
    fn default() -> Self {
        CancelToken::new()
    }
}

impl std::fmt::Debug for CancelToken {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CancelToken")
            .field("cancelled", &self.is_cancelled())
            .field("deadline", &self.inner.deadline)
            .finish()
    }
}

thread_local! {
    static CURRENT: RefCell<Option<CancelToken>> = const { RefCell::new(None) };
}

/// Restores the previously installed token when a scope exits (scopes nest).
struct ScopeGuard {
    previous: Option<CancelToken>,
}

impl ScopeGuard {
    fn install(token: CancelToken) -> ScopeGuard {
        let previous = CURRENT.with(|c| c.borrow_mut().replace(token));
        ScopeGuard { previous }
    }
}

impl Drop for ScopeGuard {
    fn drop(&mut self) {
        CURRENT.with(|c| *c.borrow_mut() = self.previous.take());
    }
}

/// The token installed on the calling thread, if any. Read by the runtime at
/// wave-dispatch time; captured into tasks so pool workers (which have their
/// own thread-locals) observe the dispatching query's token.
pub(crate) fn current() -> Option<CancelToken> {
    CURRENT.with(|c| c.borrow().clone())
}

/// Aborts the current job by unwinding with the [`Cancelled`] payload.
pub(crate) fn abort() -> ! {
    std::panic::panic_any(Cancelled)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn token_trips_on_cancel_and_deadline() {
        let t = CancelToken::new();
        assert!(!t.is_cancelled());
        t.cancel();
        assert!(t.is_cancelled());

        let expired = CancelToken::with_deadline(Instant::now() - Duration::from_millis(1));
        assert!(expired.is_cancelled());
        let future = CancelToken::with_deadline(Instant::now() + Duration::from_secs(3600));
        assert!(!future.is_cancelled());
    }

    #[test]
    fn clones_share_the_flag() {
        let t = CancelToken::new();
        let c = t.clone();
        c.cancel();
        assert!(t.is_cancelled());
    }

    #[test]
    fn scope_returns_ok_when_uncancelled() {
        let t = CancelToken::new();
        assert_eq!(t.scope(|| 41 + 1), Ok(42));
    }

    #[test]
    fn scope_catches_cancellation_unwind_only() {
        let t = CancelToken::new();
        assert_eq!(t.scope(|| abort()), Err::<(), _>(Cancelled));
        // Ordinary panics pass through.
        let other = std::panic::catch_unwind(|| {
            let _ = t.scope(|| panic!("boom"));
        });
        assert!(other.is_err());
    }

    #[test]
    fn scopes_nest_and_restore() {
        let outer = CancelToken::new();
        let inner = CancelToken::new();
        inner.cancel();
        let r = outer.scope(|| {
            assert!(!current().is_some_and(|t| t.is_cancelled()));
            let nested = inner.scope(|| {
                assert!(current().is_some_and(|t| t.is_cancelled()));
                7
            });
            assert_eq!(nested, Ok(7));
            // Outer token is current again.
            assert!(!current().is_some_and(|t| t.is_cancelled()));
            9
        });
        assert_eq!(r, Ok(9));
        assert!(current().is_none());
    }
}
