//! Small synchronization helpers shared across the workspace.

use std::sync::{Mutex, MutexGuard};

/// Locks a mutex, recovering the guard if a previous holder panicked.
///
/// This is the workspace's **single audited poison-recovery point**. Every
/// engine mutex guards state that stays structurally valid across a panic
/// (wave aborts unwind with typed payloads and drain siblings by RAII), so
/// continuing past poison is sound here — and concentrating the pattern in
/// one helper keeps that argument reviewable instead of scattered across
/// dozens of inline `unwrap_or_else(|e| e.into_inner())` copies, which the
/// `no-inline-poison-recovery` lint now rejects.
pub fn lock_unpoisoned<T: ?Sized>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    // lint:allow(poison): the single audited recovery point the lint exempts
    m.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Mutex};

    #[test]
    fn recovers_poisoned_mutex() {
        let m = Arc::new(Mutex::new(7u32));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock().expect("fresh mutex");
            panic!("poison it");
        })
        .join();
        assert!(m.is_poisoned());
        assert_eq!(*lock_unpoisoned(&m), 7);
        *lock_unpoisoned(&m) = 9;
        assert_eq!(*lock_unpoisoned(&m), 9);
    }
}
