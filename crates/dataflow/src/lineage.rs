//! Reified operator lineage: every [`Dataset`](crate::Dataset) carries an
//! [`Arc<PlanNode>`] describing the logical plan that produced it.
//!
//! The closure-based `Plan` inside a dataset is opaque — it fuses narrow
//! operators into one producer function and cannot be inspected. `PlanNode`
//! is its walkable shadow: a persistent DAG recording every operator kind,
//! every partitioning claim, every shuffle executed or elided, and static
//! row/byte estimates propagated from the sources. The `tgraph-analyze`
//! crate consumes this DAG to *prove* shuffle elisions sound (by deriving
//! partitioning facts bottom-up), to flag redundant work, and to predict
//! data movement before it happens.
//!
//! Nodes are immutable and shared: a diamond in the DAG (one subplan consumed
//! by two operators) is represented by two parents holding the same `Arc`,
//! which is exactly the signal the analyzer uses to detect re-executed
//! narrow chains.

use crate::dataset::Partitioning;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

static NEXT_ID: AtomicU64 = AtomicU64::new(0);

/// The operator class of a plan node — what the verifier reasons about.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OpKind {
    /// Materialized input partitions (leaf).
    Source {
        /// Partition count of the source.
        parts: usize,
    },
    /// Element-wise transformation; destroys any partitioning invariant.
    Map,
    /// One-to-many transformation; destroys any partitioning invariant.
    FlatMap,
    /// Predicate filter; records pass through untouched, so the input's
    /// partitioning invariant is preserved.
    Filter,
    /// Whole-partition transformation; destroys any partitioning invariant.
    MapPartitions,
    /// Key-preserving value transformation (`map_values`); preserves hash
    /// partitioning because keys are untouched.
    MapValues,
    /// Per-partition combine/grouping keyed by the same key
    /// (`reduce_by_key` / `group_by_key` local stages); key-preserving.
    LocalCombine,
    /// Concatenation of two inputs; destroys partitioning invariants.
    Union,
    /// An executed hash shuffle over `parts` partitions — establishes
    /// `HashByKey { parts }`.
    Shuffle {
        /// Output partition count (hash modulus).
        parts: usize,
    },
    /// A shuffle that was *elided* because the input claimed the required
    /// partitioning. Sound only if `HashByKey { parts }` is derivable for
    /// the input — the central fact the verifier checks.
    ElidedShuffle {
        /// Partition count the elided exchange would have used.
        parts: usize,
    },
    /// Co-partitioned hash join output — establishes `HashByKey { parts }`.
    Join {
        /// Output partition count.
        parts: usize,
    },
    /// Global sort into a single partition; destroys partitioning.
    SortByKey,
    /// Rebalance into `parts` even partitions; destroys partitioning.
    Repartition {
        /// New partition count.
        parts: usize,
    },
    /// An *unchecked* partitioning claim (`with_partitioning`): the tag was
    /// stamped by fiat, not established by an exchange. The verifier rejects
    /// claims it cannot derive from the input.
    Claim,
    /// An explicit materialization boundary (`materialize()`); preserves
    /// the input's partitioning invariant.
    Materialize,
}

impl OpKind {
    /// Whether this operator is narrow (no exchange): its work re-runs every
    /// time the plan above it executes, unless materialized.
    pub fn is_narrow(&self) -> bool {
        matches!(
            self,
            OpKind::Map
                | OpKind::FlatMap
                | OpKind::Filter
                | OpKind::MapPartitions
                | OpKind::MapValues
                | OpKind::LocalCombine
                | OpKind::Union
                | OpKind::Claim
        )
    }

    /// Whether this operator preserves its input's partitioning invariant
    /// (keys untouched, records not rerouted).
    pub fn preserves_partitioning(&self) -> bool {
        matches!(
            self,
            OpKind::Filter
                | OpKind::MapValues
                | OpKind::LocalCombine
                | OpKind::Materialize
                | OpKind::ElidedShuffle { .. }
                | OpKind::Claim
        )
    }
}

/// One node of the reified plan DAG. Immutable; shared via `Arc`.
#[derive(Clone, Debug)]
pub struct PlanNode {
    /// Process-unique id (creation order). Display ids are assigned
    /// per-rendering, so this is only used for identity/debugging.
    pub id: u64,
    /// Human-readable operator label for EXPLAIN output.
    pub label: &'static str,
    /// Operator class.
    pub op: OpKind,
    /// The partitioning tag carried by the dataset this node produced.
    pub claimed: Partitioning,
    /// Static row-count estimate for this node's output (propagated from
    /// source sizes; `None` when unknown, e.g. below a `flat_map`).
    pub rows: Option<u64>,
    /// Whether `rows` is exact (sources and 1:1 maps) or an upper-bound
    /// estimate (filters, combines).
    pub exact: bool,
    /// `size_of` one element of this node's output — the record width used
    /// for byte estimates.
    pub row_bytes: u64,
    /// Upstream plan nodes (0 for sources, 1 for most ops, 2 for joins
    /// and unions).
    pub inputs: Vec<Arc<PlanNode>>,
}

impl PlanNode {
    /// Builds a node. `rows`/`exact` describe the static size estimate of
    /// the node's output; `row_bytes` is the element width.
    pub fn new(
        label: &'static str,
        op: OpKind,
        claimed: Partitioning,
        rows: Option<u64>,
        exact: bool,
        row_bytes: u64,
        inputs: Vec<Arc<PlanNode>>,
    ) -> Arc<PlanNode> {
        Arc::new(PlanNode {
            id: NEXT_ID.fetch_add(1, Ordering::Relaxed),
            label,
            op,
            claimed,
            rows,
            exact,
            row_bytes,
            inputs,
        })
    }

    /// A source leaf with an exact element count.
    pub fn source(
        label: &'static str,
        parts: usize,
        claimed: Partitioning,
        rows: u64,
        row_bytes: u64,
    ) -> Arc<PlanNode> {
        PlanNode::new(
            label,
            OpKind::Source { parts },
            claimed,
            Some(rows),
            true,
            row_bytes,
            Vec::new(),
        )
    }

    /// Number of distinct nodes in the DAG rooted here (shared nodes counted
    /// once).
    pub fn node_count(self: &Arc<Self>) -> usize {
        let mut seen = std::collections::HashSet::new();
        fn walk(n: &Arc<PlanNode>, seen: &mut std::collections::HashSet<usize>) {
            if !seen.insert(Arc::as_ptr(n) as usize) {
                return;
            }
            for i in &n.inputs {
                walk(i, seen);
            }
        }
        walk(self, &mut seen);
        seen.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_identity_and_count() {
        let src = PlanNode::source("v", 2, Partitioning::Unknown, 10, 8);
        let a = PlanNode::new(
            "map",
            OpKind::Map,
            Partitioning::Unknown,
            Some(10),
            true,
            8,
            vec![src.clone()],
        );
        let b = PlanNode::new(
            "filter",
            OpKind::Filter,
            Partitioning::Unknown,
            Some(10),
            false,
            8,
            vec![src.clone()],
        );
        let join = PlanNode::new(
            "join",
            OpKind::Join { parts: 2 },
            Partitioning::HashByKey { parts: 2 },
            None,
            false,
            16,
            vec![a, b],
        );
        // Diamond: src shared by both sides, counted once.
        assert_eq!(join.node_count(), 4);
        assert!(OpKind::Filter.preserves_partitioning());
        assert!(!OpKind::Map.preserves_partitioning());
        assert!(OpKind::Map.is_narrow());
        assert!(!OpKind::Shuffle { parts: 2 }.is_narrow());
    }
}
