//! Reified operator lineage: every [`Dataset`](crate::Dataset) carries an
//! [`Arc<PlanNode>`] describing the logical plan that produced it.
//!
//! The closure-based `Plan` inside a dataset is opaque — it fuses narrow
//! operators into one producer function and cannot be inspected. `PlanNode`
//! is its walkable shadow: a persistent DAG recording every operator kind,
//! every partitioning claim, every shuffle executed or elided, and static
//! row/byte estimates propagated from the sources. The `tgraph-analyze`
//! crate consumes this DAG to *prove* shuffle elisions sound (by deriving
//! partitioning facts bottom-up), to flag redundant work, and to predict
//! data movement before it happens.
//!
//! Nodes are immutable and shared: a diamond in the DAG (one subplan consumed
//! by two operators) is represented by two parents holding the same `Arc`,
//! which is exactly the signal the analyzer uses to detect re-executed
//! narrow chains.

use crate::dataset::Partitioning;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

static NEXT_ID: AtomicU64 = AtomicU64::new(0);

/// The operator class of a plan node — what the verifier reasons about.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OpKind {
    /// Materialized input partitions (leaf).
    Source {
        /// Partition count of the source.
        parts: usize,
    },
    /// Element-wise transformation; destroys any partitioning invariant.
    Map,
    /// One-to-many transformation; destroys any partitioning invariant.
    FlatMap,
    /// Predicate filter; records pass through untouched, so the input's
    /// partitioning invariant is preserved.
    Filter,
    /// Whole-partition transformation; destroys any partitioning invariant.
    MapPartitions,
    /// Key-preserving value transformation (`map_values`); preserves hash
    /// partitioning because keys are untouched.
    MapValues,
    /// Per-partition combine/grouping keyed by the same key
    /// (`reduce_by_key` / `group_by_key` local stages); key-preserving.
    LocalCombine,
    /// Concatenation of two inputs; destroys partitioning invariants.
    Union,
    /// An executed hash shuffle over `parts` partitions — establishes
    /// `HashByKey { parts }`.
    Shuffle {
        /// Output partition count (hash modulus).
        parts: usize,
    },
    /// A shuffle that was *elided* because the input claimed the required
    /// partitioning. Sound only if `HashByKey { parts }` is derivable for
    /// the input — the central fact the verifier checks.
    ElidedShuffle {
        /// Partition count the elided exchange would have used.
        parts: usize,
    },
    /// Co-partitioned hash join output — establishes `HashByKey { parts }`.
    Join {
        /// Output partition count.
        parts: usize,
    },
    /// Global sort into a single partition; destroys partitioning.
    SortByKey,
    /// Rebalance into `parts` even partitions; destroys partitioning.
    Repartition {
        /// New partition count.
        parts: usize,
    },
    /// An *unchecked* partitioning claim (`with_partitioning`): the tag was
    /// stamped by fiat, not established by an exchange. The verifier rejects
    /// claims it cannot derive from the input.
    Claim,
    /// An explicit materialization boundary (`materialize()`); preserves
    /// the input's partitioning invariant.
    Materialize,
}

impl OpKind {
    /// Whether this operator is narrow (no exchange): its work re-runs every
    /// time the plan above it executes, unless materialized.
    pub fn is_narrow(&self) -> bool {
        matches!(
            self,
            OpKind::Map
                | OpKind::FlatMap
                | OpKind::Filter
                | OpKind::MapPartitions
                | OpKind::MapValues
                | OpKind::LocalCombine
                | OpKind::Union
                | OpKind::Claim
        )
    }

    /// Whether this operator preserves its input's partitioning invariant
    /// (keys untouched, records not rerouted).
    pub fn preserves_partitioning(&self) -> bool {
        matches!(
            self,
            OpKind::Filter
                | OpKind::MapValues
                | OpKind::LocalCombine
                | OpKind::Materialize
                | OpKind::ElidedShuffle { .. }
                | OpKind::Claim
        )
    }
}

/// One node of the reified plan DAG. Immutable; shared via `Arc`.
#[derive(Clone, Debug)]
pub struct PlanNode {
    /// Process-unique id (creation order). Display ids are assigned
    /// per-rendering, so this is only used for identity/debugging.
    pub id: u64,
    /// Human-readable operator label for EXPLAIN output.
    pub label: &'static str,
    /// Operator class.
    pub op: OpKind,
    /// The partitioning tag carried by the dataset this node produced.
    pub claimed: Partitioning,
    /// Static row-count estimate for this node's output (propagated from
    /// source sizes; `None` when unknown, e.g. below a `flat_map`).
    pub rows: Option<u64>,
    /// Whether `rows` is exact (sources and 1:1 maps) or an upper-bound
    /// estimate (filters, combines).
    pub exact: bool,
    /// `size_of` one element of this node's output — the record width used
    /// for byte estimates.
    pub row_bytes: u64,
    /// Upstream plan nodes (0 for sources, 1 for most ops, 2 for joins
    /// and unions).
    pub inputs: Vec<Arc<PlanNode>>,
    /// Ingest epoch of the source data this node was built from. Non-zero
    /// only on `Source` leaves loaded from an epoch segment: appending an
    /// epoch to a dataset changes the fingerprints of every plan over it, so
    /// a pre-ingest cached result can never key-collide with a post-ingest
    /// plan. Interior nodes carry 0 (the epoch is a property of the leaves).
    pub epoch: u64,
}

impl PlanNode {
    /// Builds a node. `rows`/`exact` describe the static size estimate of
    /// the node's output; `row_bytes` is the element width.
    pub fn new(
        label: &'static str,
        op: OpKind,
        claimed: Partitioning,
        rows: Option<u64>,
        exact: bool,
        row_bytes: u64,
        inputs: Vec<Arc<PlanNode>>,
    ) -> Arc<PlanNode> {
        Arc::new(PlanNode {
            id: NEXT_ID.fetch_add(1, Ordering::Relaxed),
            label,
            op,
            claimed,
            rows,
            exact,
            row_bytes,
            inputs,
            epoch: 0,
        })
    }

    /// A source leaf with an exact element count.
    pub fn source(
        label: &'static str,
        parts: usize,
        claimed: Partitioning,
        rows: u64,
        row_bytes: u64,
    ) -> Arc<PlanNode> {
        PlanNode::source_at(label, parts, claimed, rows, row_bytes, 0)
    }

    /// A source leaf stamped with the ingest epoch of the data it holds.
    /// Epoch 0 (the base snapshot) fingerprints identically to an untagged
    /// source, so pre-ingest plans are unaffected.
    pub fn source_at(
        label: &'static str,
        parts: usize,
        claimed: Partitioning,
        rows: u64,
        row_bytes: u64,
        epoch: u64,
    ) -> Arc<PlanNode> {
        Arc::new(PlanNode {
            id: NEXT_ID.fetch_add(1, Ordering::Relaxed),
            label,
            op: OpKind::Source { parts },
            claimed,
            rows: Some(rows),
            exact: true,
            row_bytes,
            inputs: Vec::new(),
            epoch,
        })
    }

    /// Number of distinct nodes in the DAG rooted here (shared nodes counted
    /// once).
    pub fn node_count(self: &Arc<Self>) -> usize {
        let mut seen = std::collections::HashSet::new();
        fn walk(n: &Arc<PlanNode>, seen: &mut std::collections::HashSet<usize>) {
            if !seen.insert(Arc::as_ptr(n) as usize) {
                return;
            }
            for i in &n.inputs {
                walk(i, seen);
            }
        }
        walk(self, &mut seen);
        seen.len()
    }
}

/// 64-bit FNV-1a with the standard explicit seed: the stable primitive
/// under [`fingerprint`], and — through its [`std::hash::Hasher`] impl —
/// under the shuffle partitioner's `bucket_of`, so persisted partition
/// layouts and elision claims cannot drift across Rust releases the way
/// `DefaultHasher` (explicitly unspecified) can.
#[derive(Clone, Copy)]
pub(crate) struct Fnv(u64);

impl Fnv {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    pub(crate) fn new() -> Fnv {
        Fnv(Self::OFFSET)
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
    }

    fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }
}

impl std::hash::Hasher for Fnv {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        Fnv::write(self, bytes);
    }

    // Fixed-width integers feed little-endian bytes regardless of host
    // endianness, so one key hashes identically on every platform.
    fn write_u8(&mut self, v: u8) {
        Fnv::write(self, &[v]);
    }
    fn write_u16(&mut self, v: u16) {
        Fnv::write(self, &v.to_le_bytes());
    }
    fn write_u32(&mut self, v: u32) {
        Fnv::write(self, &v.to_le_bytes());
    }
    fn write_u64(&mut self, v: u64) {
        Fnv::write_u64(self, v);
    }
    fn write_u128(&mut self, v: u128) {
        Fnv::write(self, &v.to_le_bytes());
    }
    fn write_usize(&mut self, v: usize) {
        Fnv::write_u64(self, v as u64);
    }
    fn write_i8(&mut self, v: i8) {
        self.write_u8(v as u8);
    }
    fn write_i16(&mut self, v: i16) {
        self.write_u16(v as u16);
    }
    fn write_i32(&mut self, v: i32) {
        self.write_u32(v as u32);
    }
    fn write_i64(&mut self, v: i64) {
        Fnv::write_u64(self, v as u64);
    }
    fn write_i128(&mut self, v: i128) {
        self.write_u128(v as u128);
    }
    fn write_isize(&mut self, v: isize) {
        Fnv::write_u64(self, v as u64);
    }
}

/// Canonical byte encoding of one node's own attributes (children excluded).
fn encode_node(node: &PlanNode, h: &mut Fnv) {
    h.write(node.label.as_bytes());
    h.write(&[0xff]); // label terminator: labels never contain 0xff
    let (tag, parts): (u8, u64) = match node.op {
        OpKind::Source { parts } => (0, parts as u64),
        OpKind::Map => (1, 0),
        OpKind::FlatMap => (2, 0),
        OpKind::Filter => (3, 0),
        OpKind::MapPartitions => (4, 0),
        OpKind::MapValues => (5, 0),
        OpKind::LocalCombine => (6, 0),
        OpKind::Union => (7, 0),
        OpKind::Shuffle { parts } => (8, parts as u64),
        OpKind::ElidedShuffle { parts } => (9, parts as u64),
        OpKind::Join { parts } => (10, parts as u64),
        OpKind::SortByKey => (11, 0),
        OpKind::Repartition { parts } => (12, parts as u64),
        OpKind::Claim => (13, 0),
        OpKind::Materialize => (14, 0),
    };
    h.write(&[tag]);
    h.write_u64(parts);
    match node.claimed {
        Partitioning::Unknown => h.write(&[0]),
        Partitioning::HashByKey { parts } => {
            h.write(&[1]);
            h.write_u64(parts as u64);
        }
    }
    match node.rows {
        None => h.write(&[0]),
        Some(r) => {
            h.write(&[1]);
            h.write_u64(r);
        }
    }
    h.write(&[u8::from(node.exact)]);
    h.write_u64(node.row_bytes);
    // Epoch 0 contributes nothing, so pre-ingest fingerprints (and their
    // golden snapshots) are unchanged; any non-zero epoch perturbs the
    // digest behind a domain separator no other field emits.
    if node.epoch != 0 {
        h.write(&[0xEB]);
        h.write_u64(node.epoch);
    }
}

/// A stable structural fingerprint of the plan DAG rooted at `root`.
///
/// Two plans fingerprint equal iff they have the same shape: the same
/// operators (labels, kinds, partition counts), the same partitioning
/// claims, the same static size estimates, and the same sharing structure —
/// a diamond over one shared subplan fingerprints differently from two
/// structurally identical but separate copies of it. Process-specific node
/// ids and `Arc` addresses do **not** participate, so the same logical query
/// over the same source data fingerprints identically across runs and
/// processes.
///
/// This is the cache key primitive of the serving layer (`tgraph-serve`
/// memoizes zoom results by request fingerprint) and is surfaced by
/// `tgraph-analyze` in EXPLAIN renderings. Collisions are possible in
/// principle (64-bit digest); key equality checks must compare a canonical
/// form alongside the fingerprint, as the serving cache does.
pub fn fingerprint(root: &Arc<PlanNode>) -> u64 {
    use std::collections::HashMap;
    // Memoized post-order (iterative, to tolerate deep narrow chains): each
    // distinct node is hashed once; later references to a shared node fold
    // in its first-visit ordinal, so `f(x, x)` (a diamond) fingerprints
    // differently from `f(x, y)` with `y` a separately built structural
    // twin of `x`.
    let mut memo: HashMap<usize, (u64, u64)> = HashMap::new(); // ptr → (hash, ordinal)
    let mut referenced: std::collections::HashSet<usize> = std::collections::HashSet::new();
    let ptr = |n: &Arc<PlanNode>| Arc::as_ptr(n) as usize;

    let mut stack: Vec<Arc<PlanNode>> = vec![Arc::clone(root)];
    while let Some(n) = stack.last().cloned() {
        if memo.contains_key(&ptr(&n)) {
            stack.pop();
            continue;
        }
        let pending: Vec<Arc<PlanNode>> = n
            .inputs
            .iter()
            .filter(|i| !memo.contains_key(&ptr(i)))
            .cloned()
            .collect();
        if !pending.is_empty() {
            stack.extend(pending);
            continue;
        }
        let mut h = Fnv::new();
        encode_node(&n, &mut h);
        h.write_u64(n.inputs.len() as u64);
        for i in &n.inputs {
            let (child_hash, child_ordinal) = memo[&ptr(i)];
            if referenced.insert(ptr(i)) {
                // First reference anywhere in the DAG: plain child digest.
                h.write_u64(child_hash);
            } else {
                // Re-reference of a shared node: fold in its first-visit
                // ordinal so `f(x, x)` differs from `f(x, y)` with `y` a
                // structural twin of `x` built separately.
                let mut h2 = Fnv(child_hash);
                h2.write(&[0xEE]);
                h2.write_u64(child_ordinal);
                h.write_u64(h2.0);
            }
        }
        let ordinal = memo.len() as u64;
        memo.insert(ptr(&n), (h.0, ordinal));
        stack.pop();
    }
    memo[&ptr(root)].0
}

/// [`fingerprint`] rendered as the fixed-width hex form used in EXPLAIN
/// output and the serving protocol (`0x` + 16 lowercase hex digits).
pub fn fingerprint_hex(root: &Arc<PlanNode>) -> String {
    format!("{:#018x}", fingerprint(root))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_identity_and_count() {
        let src = PlanNode::source("v", 2, Partitioning::Unknown, 10, 8);
        let a = PlanNode::new(
            "map",
            OpKind::Map,
            Partitioning::Unknown,
            Some(10),
            true,
            8,
            vec![src.clone()],
        );
        let b = PlanNode::new(
            "filter",
            OpKind::Filter,
            Partitioning::Unknown,
            Some(10),
            false,
            8,
            vec![src.clone()],
        );
        let join = PlanNode::new(
            "join",
            OpKind::Join { parts: 2 },
            Partitioning::HashByKey { parts: 2 },
            None,
            false,
            16,
            vec![a, b],
        );
        // Diamond: src shared by both sides, counted once.
        assert_eq!(join.node_count(), 4);
        assert!(OpKind::Filter.preserves_partitioning());
        assert!(!OpKind::Map.preserves_partitioning());
        assert!(OpKind::Map.is_narrow());
        assert!(!OpKind::Shuffle { parts: 2 }.is_narrow());
    }

    fn chain(rows: u64) -> Arc<PlanNode> {
        let src = PlanNode::source("edges", 4, Partitioning::Unknown, rows, 24);
        let m = PlanNode::new(
            "map",
            OpKind::Map,
            Partitioning::Unknown,
            Some(rows),
            true,
            16,
            vec![src],
        );
        PlanNode::new(
            "shuffle",
            OpKind::Shuffle { parts: 4 },
            Partitioning::HashByKey { parts: 4 },
            Some(rows),
            false,
            16,
            vec![m],
        )
    }

    #[test]
    fn fingerprint_is_structural_not_identity_based() {
        // Two plans built separately (different node ids, different Arc
        // addresses) fingerprint identically when structurally equal.
        let a = chain(100);
        let b = chain(100);
        assert_ne!(a.id, b.id);
        assert_eq!(fingerprint(&a), fingerprint(&b));
        // And repeatably: same value on every call.
        assert_eq!(fingerprint(&a), fingerprint(&a));
    }

    #[test]
    fn fingerprint_distinguishes_structure() {
        let base = chain(100);
        // Different static size estimate.
        assert_ne!(fingerprint(&chain(100)), fingerprint(&chain(101)));
        // Different operator kind on top.
        let filt = PlanNode::new(
            "filter",
            OpKind::Filter,
            Partitioning::HashByKey { parts: 4 },
            Some(100),
            false,
            16,
            vec![base.clone()],
        );
        let mv = PlanNode::new(
            "filter",
            OpKind::MapValues,
            Partitioning::HashByKey { parts: 4 },
            Some(100),
            false,
            16,
            vec![base.clone()],
        );
        assert_ne!(fingerprint(&filt), fingerprint(&mv));
        // Different partition counts.
        let s2 = PlanNode::new(
            "shuffle",
            OpKind::Shuffle { parts: 8 },
            Partitioning::HashByKey { parts: 8 },
            Some(100),
            false,
            16,
            vec![base.clone()],
        );
        let s3 = PlanNode::new(
            "shuffle",
            OpKind::Shuffle { parts: 16 },
            Partitioning::HashByKey { parts: 16 },
            Some(100),
            false,
            16,
            vec![base],
        );
        assert_ne!(fingerprint(&s2), fingerprint(&s3));
    }

    #[test]
    fn fingerprint_distinguishes_sharing_from_twins() {
        let union = |l: Arc<PlanNode>, r: Arc<PlanNode>| {
            PlanNode::new(
                "union",
                OpKind::Union,
                Partitioning::Unknown,
                Some(200),
                false,
                16,
                vec![l, r],
            )
        };
        // Diamond: both union inputs are the *same* subplan.
        let shared = chain(100);
        let diamond = union(shared.clone(), shared);
        // Twins: two separately built, structurally identical subplans.
        let twins = union(chain(100), chain(100));
        assert_ne!(fingerprint(&diamond), fingerprint(&twins));
    }

    #[test]
    fn fingerprint_survives_deep_chains() {
        // The walk is iterative; a plan much deeper than the thread stack
        // could hold recursively must still fingerprint.
        let mut keep: Vec<Arc<PlanNode>> = Vec::new();
        let mut n = PlanNode::source("v", 2, Partitioning::Unknown, 10, 8);
        keep.push(n.clone());
        for _ in 0..50_000 {
            n = PlanNode::new(
                "map",
                OpKind::Map,
                Partitioning::Unknown,
                Some(10),
                true,
                8,
                vec![n],
            );
            keep.push(n.clone());
        }
        let _ = fingerprint(&n);
        // Dismantle root-first so the Arc chain's Drop doesn't recurse.
        drop(n);
        keep.reverse();
    }

    #[test]
    fn fingerprint_hex_is_fixed_width() {
        let h = fingerprint_hex(&chain(100));
        assert_eq!(h.len(), 18);
        assert!(h.starts_with("0x"));
        assert!(h[2..].chars().all(|c| c.is_ascii_hexdigit()));
    }

    #[test]
    fn epoch_tag_perturbs_source_fingerprints() {
        let base = PlanNode::source("v", 2, Partitioning::Unknown, 10, 8);
        let e0 = PlanNode::source_at("v", 2, Partitioning::Unknown, 10, 8, 0);
        let e1 = PlanNode::source_at("v", 2, Partitioning::Unknown, 10, 8, 1);
        let e2 = PlanNode::source_at("v", 2, Partitioning::Unknown, 10, 8, 2);
        // Epoch 0 is the base snapshot: identical to an untagged source, so
        // pre-ingest golden fingerprints don't move.
        assert_eq!(fingerprint(&base), fingerprint(&e0));
        // Every later epoch is a distinct plan identity.
        assert_ne!(fingerprint(&e0), fingerprint(&e1));
        assert_ne!(fingerprint(&e1), fingerprint(&e2));
        // The perturbation propagates through downstream operators.
        let over = |src: &Arc<PlanNode>| {
            PlanNode::new(
                "map",
                OpKind::Map,
                Partitioning::Unknown,
                Some(10),
                true,
                8,
                vec![src.clone()],
            )
        };
        assert_ne!(fingerprint(&over(&e0)), fingerprint(&over(&e1)));
    }
}
