//! Additional dataflow operators: broadcast (map-side) joins, cogroup, and
//! small utilities.
//!
//! The broadcast join is the shared-memory analogue of GraphX's
//! vertex-mirroring multicast join (§4 of the paper): when one side of a
//! join is small, shipping it whole to every partition avoids shuffling the
//! large side entirely. Both broadcast variants are narrow: they return a
//! deferred dataset that fuses with whatever follows.

use crate::dataset::Dataset;
use crate::keyed::KeyedDataset;
use crate::runtime::Runtime;
use crate::spill::{HeapSize, Spill, SpillError, SpillReader};
use std::collections::HashMap;
use std::hash::Hash;
use std::sync::Arc;

/// Broadcast inner join: collects `small` into an immutable map shared with
/// every partition (no shuffle of `big`), then joins map-side.
pub fn broadcast_join<K, V, W>(
    rt: &Runtime,
    big: &Dataset<(K, V)>,
    small: &Dataset<(K, W)>,
) -> Dataset<(K, (V, W))>
where
    K: Hash + Eq + Clone + Send + Sync + Spill + 'static,
    V: Clone + Send + Sync + 'static,
    W: Clone + Send + Sync + Spill + 'static,
{
    let mut table: HashMap<K, Vec<W>> = HashMap::new();
    for (k, w) in small.collect(rt) {
        table.entry(k).or_default().push(w);
    }
    let table = Arc::new(table);
    big.flat_map(move |(k, v)| {
        table
            .get(k)
            .into_iter()
            .flatten()
            .map(|w| (k.clone(), (v.clone(), w.clone())))
            .collect::<Vec<_>>()
    })
}

/// Broadcast semijoin: keeps records of `big` whose key occurs in `small`.
pub fn broadcast_semi_join<K, V, W>(
    rt: &Runtime,
    big: &Dataset<(K, V)>,
    small: &Dataset<(K, W)>,
) -> Dataset<(K, V)>
where
    K: Hash + Eq + Clone + Send + Sync + Spill + 'static,
    V: Clone + Send + Sync + 'static,
    W: Clone + Send + Sync + Spill + 'static,
{
    let keys: std::collections::HashSet<K> =
        small.collect(rt).into_iter().map(|(k, _)| k).collect();
    let keys = Arc::new(keys);
    // `filter` keeps the partitioning tag: semijoining a hash-partitioned
    // dataset leaves it hash-partitioned.
    big.filter(move |(k, _)| keys.contains(k))
}

/// Cogroup: groups both datasets by key, pairing each key's value lists.
/// Keys present in only one input appear with an empty list on the other
/// side (a full outer grouping).
pub fn cogroup<K, V, W>(
    rt: &Runtime,
    left: &Dataset<(K, V)>,
    right: &Dataset<(K, W)>,
) -> Dataset<(K, (Vec<V>, Vec<W>))>
where
    K: Hash + Eq + Clone + Send + Sync + Spill + 'static,
    V: Clone + Send + Sync + Spill + 'static,
    W: Clone + Send + Sync + Spill + 'static,
{
    // Tag, union, shuffle once, then split per key. Tagging and splitting
    // are narrow stages fused into the shuffle's map side and the consumer.
    #[derive(Clone)]
    enum Side<V, W> {
        L(V),
        R(W),
    }
    impl<V: HeapSize, W: HeapSize> HeapSize for Side<V, W> {
        fn heap_bytes(&self) -> usize {
            match self {
                Side::L(v) => v.heap_bytes(),
                Side::R(w) => w.heap_bytes(),
            }
        }
    }
    impl<V: Spill, W: Spill> Spill for Side<V, W> {
        fn spill(&self, out: &mut Vec<u8>) {
            match self {
                Side::L(v) => {
                    out.push(0);
                    v.spill(out);
                }
                Side::R(w) => {
                    out.push(1);
                    w.spill(out);
                }
            }
        }
        fn unspill(r: &mut SpillReader<'_>) -> Result<Self, SpillError> {
            match r.u8()? {
                0 => Ok(Side::L(V::unspill(r)?)),
                1 => Ok(Side::R(W::unspill(r)?)),
                t => Err(SpillError::Corrupt {
                    detail: format!("bad cogroup side tag {t}"),
                }),
            }
        }
    }
    let l: Dataset<(K, Side<V, W>)> = left.map(|(k, v)| (k.clone(), Side::L(v.clone())));
    let r: Dataset<(K, Side<V, W>)> = right.map(|(k, w)| (k.clone(), Side::R(w.clone())));
    l.union(&r).group_by_key(rt).map(|(k, sides)| {
        let mut vs = Vec::new();
        let mut ws = Vec::new();
        for s in sides {
            match s {
                Side::L(v) => vs.push(v.clone()),
                Side::R(w) => ws.push(w.clone()),
            }
        }
        (k.clone(), (vs, ws))
    })
}

/// Counts occurrences per key (shuffle with map-side combine).
pub fn count_by_key<K, V>(rt: &Runtime, input: &Dataset<(K, V)>) -> Dataset<(K, u64)>
where
    K: Hash + Eq + Clone + Send + Sync + Spill + 'static,
    V: Clone + Send + Sync + 'static,
{
    input
        .map(|(k, _)| (k.clone(), 1u64))
        .reduce_by_key(rt, |a, b| a + b)
}

/// Takes up to `n` elements in partition order.
pub fn take<T>(rt: &Runtime, input: &Dataset<T>, n: usize) -> Vec<T>
where
    T: Clone + Send + Sync + Spill + 'static,
{
    let mut out = Vec::with_capacity(n);
    for part in input.parts(rt).iter() {
        for item in part.iter() {
            if out.len() == n {
                return out;
            }
            out.push(item.clone());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rt() -> Runtime {
        Runtime::with_partitions(4, 4)
    }

    fn sorted<T: Ord>(mut v: Vec<T>) -> Vec<T> {
        v.sort();
        v
    }

    #[test]
    fn broadcast_join_matches_shuffle_join() {
        let rt = rt();
        let big = Dataset::from_vec(&rt, (0..100).map(|i| (i % 7, i)).collect::<Vec<_>>());
        let small = Dataset::from_vec(&rt, vec![(0, "a"), (3, "b"), (3, "c"), (99, "d")]);
        let broadcast = sorted(broadcast_join(&rt, &big, &small).collect(&rt));
        let shuffled = sorted(big.join(&rt, &small).collect(&rt));
        assert_eq!(broadcast, shuffled);
        assert!(!broadcast.is_empty());
    }

    #[test]
    fn broadcast_join_moves_no_records() {
        let rt = rt();
        let big = Dataset::from_vec(&rt, (0..100).map(|i| (i % 7, i)).collect::<Vec<_>>());
        let small = Dataset::from_vec(&rt, vec![(0, "a"), (3, "b")]);
        let before = rt.stats();
        let joined = broadcast_join(&rt, &big, &small);
        let _ = joined.collect(&rt);
        let delta = rt.stats().since(&before);
        assert_eq!(delta.shuffles, 0, "broadcast join must not shuffle");
        assert_eq!(delta.shuffled_records, 0);
    }

    #[test]
    fn broadcast_semi_join_filters() {
        let rt = rt();
        let big = Dataset::from_vec(&rt, vec![(1, "x"), (2, "y"), (3, "z")]);
        let small = Dataset::from_vec(&rt, vec![(2, ()), (3, ())]);
        assert_eq!(
            sorted(broadcast_semi_join(&rt, &big, &small).collect(&rt)),
            vec![(2, "y"), (3, "z")]
        );
    }

    #[test]
    fn cogroup_pairs_value_lists() {
        let rt = rt();
        let left = Dataset::from_vec(&rt, vec![(1, "a"), (1, "b"), (2, "c")]);
        let right = Dataset::from_vec(&rt, vec![(1, 10), (3, 30)]);
        let mut got = cogroup(&rt, &left, &right).collect(&rt);
        got.sort_by_key(|(k, _)| *k);
        assert_eq!(got.len(), 3);
        assert_eq!(got[0].0, 1);
        assert_eq!(sorted(got[0].1 .0.clone()), vec!["a", "b"]);
        assert_eq!(got[0].1 .1, vec![10]);
        assert_eq!(got[1], (2, (vec!["c"], vec![])));
        assert_eq!(got[2], (3, (vec![], vec![30])));
    }

    #[test]
    fn count_by_key_counts() {
        let rt = rt();
        let d = Dataset::from_vec(&rt, (0..30).map(|i| (i % 3, ())).collect::<Vec<_>>());
        assert_eq!(
            sorted(count_by_key(&rt, &d).collect(&rt)),
            vec![(0, 10), (1, 10), (2, 10)]
        );
    }

    #[test]
    fn take_respects_limit_and_order() {
        let rt = rt();
        let d = Dataset::from_vec(&rt, (0..100).collect::<Vec<i32>>());
        assert_eq!(take(&rt, &d, 5), vec![0, 1, 2, 3, 4]);
        assert_eq!(take(&rt, &d, 0), Vec::<i32>::new());
        assert_eq!(take(&rt, &d, 1000).len(), 100);
    }
}
