//! `Dataset<T>` — an immutable, partitioned collection with Spark-RDD-style
//! second-order operators and **lazy, plan-based execution**.
//!
//! Narrow transformations (`map`, `filter`, `flat_map`, `map_partitions`)
//! do not run anything: they extend a deferred per-partition closure chain.
//! The chain is **fused into a single pass** over each partition when an
//! action (`collect`, `count`, `fold`, …) or a shuffle boundary (any keyed
//! operator) forces it — one task wave total, no intermediate partition
//! allocations. Elements flow through the fused chain by reference; only
//! survivors are cloned, at the materialization boundary.
//!
//! Every dataset carries a [`Partitioning`] tag. Hash shuffles stamp their
//! output `HashByKey`; tag-preserving operators (`filter`,
//! [`map_values`](crate::keyed::KeyedDataset::map_values)) keep it, so a
//! later keyed operator on the same key can skip its shuffle entirely (see
//! [`shuffle`](crate::keyed::shuffle)).
//!
//! Alongside the fused closure plan, every dataset records a reified
//! [`PlanNode`] lineage DAG (see [`crate::lineage`]). The closure chain is
//! what executes; the lineage is what the static verifier in
//! `tgraph-analyze` walks to prove elisions sound and estimate movement.

use crate::exchange::{ExchangeError, Frame, ShardLayout};
use crate::lineage::{OpKind, PlanNode};
use crate::runtime::Runtime;
use crate::spill::{Spill, SpillReader};
use std::ops::Range;
use std::sync::Arc;

/// How a dataset's records are distributed across partitions.
///
/// `HashByKey` is produced by shuffles: partition `p` holds exactly the
/// records whose key hashes to `p` under the engine's bucket function. Keyed
/// operators consult this tag to elide redundant shuffles, mirroring Spark's
/// partitioner awareness.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Partitioning {
    /// No known distribution invariant.
    Unknown,
    /// Hash-partitioned by the pair key over `parts` partitions.
    HashByKey {
        /// Partition count the hash was taken modulo.
        parts: usize,
    },
}

/// Which global partitions of a dataset physically exist on *this* shard.
///
/// Datasets keep their full global partition width on every shard — all `P`
/// partition slots exist everywhere, so partition indices, partitioning
/// tags, lineage, and elision proofs never need translation. What varies
/// per shard is which slots hold data:
///
/// * `Replicated` — every shard holds identical full content (all sources
///   built from identical inputs, and everything downstream of an
///   all-gather). Gathers are purely local.
/// * `Owned(mask)` — this shard holds data only for mask-true slots (the
///   output of a sharded exchange: each shard keeps its owned bucket
///   range). Gathers and counts must rendezvous through the exchange.
/// * `Chained` — a `union`: each side keeps its own locality, dispatched by
///   the same partition-index split the union plan uses.
///
/// Under the single-process layout every dataset is effectively
/// `Replicated` and this tag is inert.
#[derive(Clone)]
pub(crate) enum Locality {
    /// Identical full content on every shard.
    Replicated,
    /// Only mask-true global partitions are present locally.
    Owned(Arc<Vec<bool>>),
    /// Union composition: `left` covers partitions `0..split`, `right` the
    /// rest (re-indexed from zero).
    Chained {
        /// Left side's locality.
        left: Arc<Locality>,
        /// Right side's locality.
        right: Arc<Locality>,
        /// Number of partitions belonging to the left side.
        split: usize,
    },
}

impl Locality {
    /// Whether every shard holds full identical content (deep: a union of
    /// replicated sides is replicated).
    pub(crate) fn is_replicated(&self) -> bool {
        match self {
            Locality::Replicated => true,
            Locality::Owned(_) => false,
            Locality::Chained { left, right, .. } => left.is_replicated() && right.is_replicated(),
        }
    }

    /// The contribution mask under `layout` for a dataset of `parts` global
    /// partitions: which slots this shard is responsible for contributing to
    /// an exchange. Replicated content is contributed by its range owner
    /// (every shard has it; exactly one may send it), owned content by
    /// whoever holds it.
    pub(crate) fn mask(&self, layout: &ShardLayout, parts: usize) -> Vec<bool> {
        match self {
            Locality::Replicated => layout.range_mask(parts),
            Locality::Owned(m) => {
                debug_assert_eq!(m.len(), parts, "locality mask width");
                m.to_vec()
            }
            Locality::Chained { left, right, split } => {
                let mut m = left.mask(layout, *split);
                m.extend(right.mask(layout, parts - split));
                m
            }
        }
    }
}

/// The deferred execution plan behind a dataset.
#[derive(Clone)]
enum Plan<T> {
    /// Materialized partitions, shared by reference.
    Source(Arc<Vec<Arc<Vec<T>>>>),
    /// A fused chain of narrow transformations: for partition `i`, the
    /// producer pushes each element (by reference) into the sink.
    Lazy {
        parts: usize,
        producer: Arc<dyn Fn(usize, &mut dyn FnMut(&T)) + Send + Sync>,
        /// Morsel capability: present when the chain is element-wise all the
        /// way down to its source, so any source row range can be run
        /// independently (see [`SplitCap`]). `None` for whole-partition
        /// operators (`map_partitions`), which pins the plan to the barrier
        /// scheduler.
        split: Option<SplitCap<T>>,
    },
}

/// The capability that lets the work-stealing scheduler split a plan's
/// partitions into row-range morsels.
///
/// A plan is *splittable* when its fused chain is element-wise (each output
/// element depends on exactly one source element, order preserved): `map`,
/// `filter`, `flat_map`, and `union` of splittable sides qualify;
/// `map_partitions` does not. For a splittable chain, running
/// `produce_range` over consecutive ranges covering `0..rows(i)` and
/// concatenating the outputs yields exactly what one full-partition pass
/// produces — the order-preserving-merge invariant the morsel scheduler
/// relies on. Ranges always index **source** rows of partition `i`
/// (pre-filter, pre-flat-map), which is what makes morsel cuts well-defined
/// without running the chain.
pub(crate) struct SplitCap<T> {
    /// Source rows of partition `i` — the space morsel ranges are cut from.
    pub rows: Arc<dyn Fn(usize) -> usize + Send + Sync>,
    /// Streams the chain's output for source rows `range` of partition `i`.
    pub produce_range: Arc<dyn Fn(usize, Range<usize>, &mut dyn FnMut(&T)) + Send + Sync>,
}

impl<T> Clone for SplitCap<T> {
    fn clone(&self) -> Self {
        SplitCap {
            rows: Arc::clone(&self.rows),
            produce_range: Arc::clone(&self.produce_range),
        }
    }
}

/// An immutable partitioned collection with a lazy narrow-operator plan.
#[derive(Clone)]
pub struct Dataset<T> {
    plan: Plan<T>,
    partitioning: Partitioning,
    lineage: Arc<PlanNode>,
    locality: Locality,
}

impl<T: Clone + Send + Sync + 'static> Dataset<T> {
    /// Builds a dataset by splitting `items` evenly into the runtime's
    /// default partition count.
    pub fn from_vec(rt: &Runtime, items: Vec<T>) -> Self {
        Self::from_vec_with(rt.partitions(), items)
    }

    /// Builds a dataset like [`Dataset::from_vec`], stamping the source
    /// lineage leaf with the ingest epoch the items were loaded at. Plans
    /// over different epochs of the same data fingerprint differently (see
    /// [`PlanNode::source_at`]); epoch 0 is identical to `from_vec`.
    pub fn from_vec_tagged(rt: &Runtime, items: Vec<T>, epoch: u64) -> Self {
        Self::from_vec_with_tagged(rt.partitions(), items, epoch)
    }

    /// [`Dataset::from_vec_with`] with an epoch-stamped source leaf.
    pub fn from_vec_with_tagged(parts: usize, items: Vec<T>, epoch: u64) -> Self {
        let ds = Self::from_vec_with(parts, items);
        if epoch == 0 {
            return ds;
        }
        let lineage = PlanNode::source_at(
            ds.lineage.label,
            ds.num_partitions(),
            ds.partitioning,
            ds.lineage.rows.unwrap_or(0),
            ds.lineage.row_bytes,
            epoch,
        );
        Dataset { lineage, ..ds }
    }

    /// Builds a dataset split into exactly `parts` partitions.
    pub fn from_vec_with(parts: usize, items: Vec<T>) -> Self {
        let parts = parts.max(1);
        let n = items.len();
        let chunk = n.div_ceil(parts).max(1);
        let mut partitions = Vec::with_capacity(parts);
        let mut items = items;
        // Draining from the front preserves element order across partitions.
        let mut rest = items.split_off(0);
        for _ in 0..parts {
            if rest.is_empty() {
                partitions.push(Arc::new(Vec::new()));
                continue;
            }
            let tail = rest.split_off(chunk.min(rest.len()));
            partitions.push(Arc::new(rest));
            rest = tail;
        }
        debug_assert!(rest.is_empty());
        Self::from_arc_partitions(partitions, Partitioning::Unknown)
    }

    /// Wraps pre-built partitions.
    pub fn from_partitions(partitions: Vec<Vec<T>>) -> Self {
        Self::from_arc_partitions(
            partitions.into_iter().map(Arc::new).collect(),
            Partitioning::Unknown,
        )
    }

    /// Wraps pre-built shared partitions with a known partitioning tag
    /// (internal: shuffles use this to stamp their output). The lineage is
    /// a fresh `Source` leaf with the exact element count.
    pub(crate) fn from_arc_partitions(
        partitions: Vec<Arc<Vec<T>>>,
        partitioning: Partitioning,
    ) -> Self {
        let rows: u64 = partitions.iter().map(|p| p.len() as u64).sum();
        let lineage = PlanNode::source(
            "source",
            partitions.len(),
            partitioning,
            rows,
            std::mem::size_of::<T>() as u64,
        );
        Self::from_arc_partitions_lineage(partitions, partitioning, lineage)
    }

    /// Wraps pre-built shared partitions and attaches an explicit lineage
    /// node (internal: shuffles and joins record their exchange here).
    pub(crate) fn from_arc_partitions_lineage(
        partitions: Vec<Arc<Vec<T>>>,
        partitioning: Partitioning,
        lineage: Arc<PlanNode>,
    ) -> Self {
        Dataset {
            plan: Plan::Source(Arc::new(partitions)),
            partitioning,
            lineage,
            locality: Locality::Replicated,
        }
    }

    /// Replaces the locality tag (internal: exchange outputs only).
    pub(crate) fn with_locality(mut self, locality: Locality) -> Self {
        self.locality = locality;
        self
    }

    /// The per-partition contribution mask for this dataset under the
    /// runtime's shard layout, or `None` when no masking applies (single
    /// shard). Masked-out partitions hold another shard's data (or a
    /// replica another shard is responsible for contributing) and must be
    /// skipped by exchange map sides.
    pub(crate) fn shard_mask(&self, layout: &ShardLayout) -> Option<Vec<bool>> {
        if !layout.is_sharded() {
            return None;
        }
        Some(self.locality.mask(layout, self.num_partitions()))
    }

    /// An empty dataset with one empty partition.
    pub fn empty() -> Self {
        Self::from_arc_partitions(vec![Arc::new(Vec::new())], Partitioning::Unknown)
    }

    /// Number of partitions.
    pub fn num_partitions(&self) -> usize {
        match &self.plan {
            Plan::Source(parts) => parts.len(),
            Plan::Lazy { parts, .. } => *parts,
        }
    }

    /// The partitioning invariant this dataset is known to satisfy.
    pub fn partitioning(&self) -> Partitioning {
        self.partitioning
    }

    /// The reified plan DAG that produced this dataset — the input to the
    /// static verifier in `tgraph-analyze`.
    pub fn lineage(&self) -> Arc<PlanNode> {
        Arc::clone(&self.lineage)
    }

    /// Re-tags the dataset (internal: used where an operator re-establishes
    /// or invalidates a distribution invariant the type system cannot see).
    ///
    /// The lineage records this as an explicit [`OpKind::Claim`] node: the
    /// tag was stamped by fiat, not established by an exchange, so the
    /// verifier will reject it unless the claimed invariant is derivable
    /// from the input. Keyed operators that legitimately re-establish tags
    /// use [`Dataset::relabel_op`] instead, which records the real operator.
    // Production operators re-establish tags via relabel_op/wrap_op; this
    // remains the audited escape hatch (exercised by in-crate tests).
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn with_partitioning(mut self, partitioning: Partitioning) -> Self {
        self.lineage = PlanNode::new(
            "claim",
            OpKind::Claim,
            partitioning,
            self.lineage.rows,
            self.lineage.exact,
            self.lineage.row_bytes,
            vec![Arc::clone(&self.lineage)],
        );
        self.partitioning = partitioning;
        self
    }

    /// Replaces the top lineage node in place (same inputs, same size
    /// estimate) with a more precise operator kind, and re-tags the dataset.
    /// Internal: `map_values` is built on `map` but is key-preserving, and
    /// the local combine of an elided `reduce_by_key` is built on
    /// `map_partitions` but keeps keys in place — the lineage should say so.
    pub(crate) fn relabel_op(
        mut self,
        label: &'static str,
        op: OpKind,
        partitioning: Partitioning,
    ) -> Self {
        self.lineage = PlanNode::new(
            label,
            op,
            partitioning,
            self.lineage.rows,
            self.lineage.exact,
            self.lineage.row_bytes,
            self.lineage.inputs.clone(),
        );
        self.partitioning = partitioning;
        self
    }

    /// Wraps the current lineage under a new node (internal: elided shuffles
    /// record the skipped exchange this way).
    pub(crate) fn wrap_op(
        mut self,
        label: &'static str,
        op: OpKind,
        partitioning: Partitioning,
    ) -> Self {
        self.lineage = PlanNode::new(
            label,
            op,
            partitioning,
            self.lineage.rows,
            self.lineage.exact,
            self.lineage.row_bytes,
            vec![Arc::clone(&self.lineage)],
        );
        self.partitioning = partitioning;
        self
    }

    /// Streams partition `i` through `sink`, running the fused narrow chain.
    /// This is the single point where deferred plans execute.
    pub(crate) fn produce(&self, i: usize, sink: &mut dyn FnMut(&T)) {
        match &self.plan {
            Plan::Source(parts) => {
                for x in parts[i].iter() {
                    sink(x);
                }
            }
            Plan::Lazy { producer, .. } => producer(i, sink),
        }
    }

    /// The plan's morsel capability, if it is splittable (see [`SplitCap`]).
    /// Materialized sources are trivially splittable (a range is a slice);
    /// lazy chains carry the capability built up by their element-wise
    /// operators, or `None` once a whole-partition operator joined the
    /// chain.
    pub(crate) fn split_cap(&self) -> Option<SplitCap<T>> {
        match &self.plan {
            Plan::Source(parts) => {
                let sizes = Arc::clone(parts);
                let slices = Arc::clone(parts);
                Some(SplitCap {
                    rows: Arc::new(move |i| sizes[i].len()),
                    produce_range: Arc::new(move |i, range: Range<usize>, sink| {
                        for x in &slices[i][range] {
                            sink(x);
                        }
                    }),
                })
            }
            Plan::Lazy { split, .. } => split.clone(),
        }
    }

    /// Runs the plan (one fused task wave) and returns a source-backed
    /// dataset sharing the same partitioning tag. No-op when already
    /// materialized.
    ///
    /// Under a sharded layout, materializing a deferred non-replicated plan
    /// is an **all-gather**: every shard contributes its owned partitions
    /// through the exchange and receives everyone else's, so the result is
    /// full and identical everywhere ([`Locality::Replicated`]). An
    /// already-materialized dataset is returned as-is, locality included —
    /// keyed operators consume owned partitions in place.
    pub fn materialize(&self, rt: &Runtime) -> Dataset<T>
    where
        T: Spill,
    {
        match &self.plan {
            Plan::Source(_) => self.clone(),
            Plan::Lazy { .. } => {
                let partitions: Vec<Arc<Vec<T>>> = self
                    .gather_partitions(rt)
                    .into_iter()
                    .map(Arc::new)
                    .collect();
                let rows: u64 = partitions.iter().map(|p| p.len() as u64).sum();
                let lineage = PlanNode::new(
                    "materialize",
                    OpKind::Materialize,
                    self.partitioning,
                    Some(rows),
                    true,
                    std::mem::size_of::<T>() as u64,
                    vec![Arc::clone(&self.lineage)],
                );
                Self::from_arc_partitions_lineage(partitions, self.partitioning, lineage)
            }
        }
    }

    /// The materialized partitions (runs the plan if deferred).
    pub(crate) fn parts(&self, rt: &Runtime) -> Arc<Vec<Arc<Vec<T>>>>
    where
        T: Spill,
    {
        match &self.materialize(rt).plan {
            Plan::Source(parts) => Arc::clone(parts),
            Plan::Lazy { .. } => unreachable!("materialize returns a source"),
        }
    }

    /// Runs one task per partition on the pool; each task gets the partition
    /// index and the dataset, and drives the fused chain via
    /// [`Dataset::produce`].
    pub(crate) fn run_per_partition<R, F>(&self, rt: &Runtime, f: F) -> Vec<R>
    where
        R: Send + 'static,
        F: Fn(usize, &Dataset<T>) -> R + Send + Sync + 'static,
    {
        let d = self.clone();
        rt.run_indexed(self.num_partitions(), move |i| f(i, &d))
    }

    /// Runs each partition's fused chain into an owned `Vec`, using the
    /// work-stealing morsel scheduler when the runtime has it on *and* the
    /// plan is splittable; otherwise one barrier task per partition.
    /// Concatenating morsel outputs in range order reproduces the
    /// full-partition pass exactly (see [`SplitCap`]), so both schedulers
    /// return byte-identical partitions.
    fn gather_partitions(&self, rt: &Runtime) -> Vec<Vec<T>>
    where
        T: Spill,
    {
        let layout = rt.layout();
        if layout.is_sharded() && !self.locality.is_replicated() {
            return self.all_gather(rt, &layout);
        }
        if rt.stealing() {
            if let Some(cap) = self.split_cap() {
                let sizes: Vec<usize> = (0..self.num_partitions()).map(|i| (cap.rows)(i)).collect();
                let produce_range = Arc::clone(&cap.produce_range);
                return rt
                    .run_morsels(&sizes, move |i, range| {
                        let mut out = Vec::new();
                        produce_range(i, range, &mut |x| out.push(x.clone()));
                        out
                    })
                    .into_iter()
                    .map(|morsels| morsels.into_iter().flatten().collect())
                    .collect();
            }
        }
        self.run_per_partition(rt, |i, d| {
            let mut out = Vec::new();
            d.produce(i, &mut |x| out.push(x.clone()));
            out
        })
    }

    /// Reassembles the full global partition vector by exchanging owned
    /// partitions with every peer shard: each shard runs its fused chain
    /// over the partitions it contributes, encodes them as frames keyed by
    /// global partition index, and broadcasts; decoding every shard's
    /// contribution (its own included, so all shards traverse the identical
    /// decode path) yields the same full vector everywhere.
    fn all_gather(&self, rt: &Runtime, layout: &ShardLayout) -> Vec<Vec<T>>
    where
        T: Spill,
    {
        let n = self.num_partitions();
        let mask = Arc::new(self.locality.mask(layout, n));
        let mask_task = Arc::clone(&mask);
        let local: Vec<Vec<T>> = self.run_per_partition(rt, move |i, d| {
            let mut out = Vec::new();
            if mask_task[i] {
                d.produce(i, &mut |x| out.push(x.clone()));
            }
            out
        });
        let seq = rt.next_exchange_seq();
        let mut frames = Vec::with_capacity(local.len());
        for (i, p) in local.iter().enumerate() {
            if !mask[i] {
                continue;
            }
            let mut payload = Vec::new();
            for x in p {
                x.spill(&mut payload);
            }
            frames.push(Frame {
                seq,
                src: i as u64,
                bucket: i as u64,
                records: p.len() as u64,
                payload,
            });
        }
        let got = match rt.exchange().gather(seq, frames) {
            Ok(f) => f,
            Err(e) => std::panic::panic_any(e),
        };
        let mut out: Vec<Vec<T>> = (0..n).map(|_| Vec::new()).collect();
        let mut seen = vec![false; n];
        for f in got {
            let i = f.src as usize;
            if i >= n || seen[i] {
                std::panic::panic_any(ExchangeError::Frame {
                    detail: format!("gather: duplicate or out-of-range partition {i} of {n}"),
                });
            }
            seen[i] = true;
            out[i] = decode_records::<T>(&f);
        }
        out
    }

    /// Total number of elements. Runs the fused chain without materializing
    /// or cloning anything.
    ///
    /// Under a sharded layout a non-replicated dataset counts its owned
    /// partitions locally and sums per-partition counts exchanged as
    /// zero-payload frames.
    pub fn count(&self, rt: &Runtime) -> usize {
        let layout = rt.layout();
        if layout.is_sharded() && !self.locality.is_replicated() {
            let n = self.num_partitions();
            let mask = Arc::new(self.locality.mask(&layout, n));
            let mask_task = Arc::clone(&mask);
            let counts: Vec<u64> = self.run_per_partition(rt, move |i, d| {
                let mut c = 0u64;
                if mask_task[i] {
                    d.produce(i, &mut |_x| c += 1);
                }
                c
            });
            let seq = rt.next_exchange_seq();
            let frames: Vec<Frame> = counts
                .iter()
                .enumerate()
                .filter(|(i, _)| mask[*i])
                .map(|(i, c)| Frame {
                    seq,
                    src: i as u64,
                    bucket: i as u64,
                    records: *c,
                    payload: Vec::new(),
                })
                .collect();
            let got = match rt.exchange().gather(seq, frames) {
                Ok(f) => f,
                Err(e) => std::panic::panic_any(e),
            };
            let mut per = vec![0u64; n];
            for f in got {
                let i = f.src as usize;
                if i < n {
                    per[i] = f.records;
                }
            }
            return per.iter().sum::<u64>() as usize;
        }
        if rt.stealing() {
            if let Some(cap) = self.split_cap() {
                let sizes: Vec<usize> = (0..self.num_partitions()).map(|i| (cap.rows)(i)).collect();
                let produce_range = Arc::clone(&cap.produce_range);
                return rt
                    .run_morsels(&sizes, move |i, range| {
                        let mut n = 0usize;
                        produce_range(i, range, &mut |_x| n += 1);
                        n
                    })
                    .into_iter()
                    .flatten()
                    .sum();
            }
        }
        self.run_per_partition(rt, |i, d| {
            let mut n = 0usize;
            d.produce(i, &mut |_x| n += 1);
            n
        })
        .into_iter()
        .sum()
    }

    /// Materializes all elements in partition order. Partitions are gathered
    /// in parallel on the worker pool, then concatenated in order. Under a
    /// sharded layout this is an all-gather: every shard returns the same
    /// full vector (see [`Dataset::materialize`]).
    pub fn collect(&self, rt: &Runtime) -> Vec<T>
    where
        T: Spill,
    {
        let partitions = self.gather_partitions(rt);
        let total = partitions.iter().map(Vec::len).sum();
        let mut out = Vec::with_capacity(total);
        for p in partitions {
            out.extend(p);
        }
        out
    }

    /// Element-wise transformation (narrow, deferred).
    pub fn map<U, F>(&self, f: F) -> Dataset<U>
    where
        U: Clone + Send + Sync + 'static,
        F: Fn(&T) -> U + Send + Sync + 'static,
    {
        let up = self.clone();
        let f = Arc::new(f);
        let lineage = PlanNode::new(
            "map",
            OpKind::Map,
            Partitioning::Unknown,
            self.lineage.rows,
            self.lineage.exact,
            std::mem::size_of::<U>() as u64,
            vec![Arc::clone(&self.lineage)],
        );
        let split = up.split_cap().map(|cap| {
            let f = Arc::clone(&f);
            SplitCap {
                rows: Arc::clone(&cap.rows),
                produce_range: Arc::new(move |i, range: Range<usize>, sink| {
                    (cap.produce_range)(i, range, &mut |x| {
                        let u = f(x);
                        sink(&u);
                    });
                }),
            }
        });
        Dataset {
            plan: Plan::Lazy {
                parts: self.num_partitions(),
                producer: Arc::new(move |i, sink| {
                    up.produce(i, &mut |x| {
                        let u = f(x);
                        sink(&u);
                    });
                }),
                split,
            },
            partitioning: Partitioning::Unknown,
            lineage,
            locality: self.locality.clone(),
        }
    }

    /// Element-to-many transformation (narrow, deferred).
    pub fn flat_map<U, I, F>(&self, f: F) -> Dataset<U>
    where
        U: Clone + Send + Sync + 'static,
        I: IntoIterator<Item = U>,
        F: Fn(&T) -> I + Send + Sync + 'static,
    {
        let up = self.clone();
        let f = Arc::new(f);
        let lineage = PlanNode::new(
            "flat_map",
            OpKind::FlatMap,
            Partitioning::Unknown,
            None,
            false,
            std::mem::size_of::<U>() as u64,
            vec![Arc::clone(&self.lineage)],
        );
        let split = up.split_cap().map(|cap| {
            let f = Arc::clone(&f);
            SplitCap {
                rows: Arc::clone(&cap.rows),
                produce_range: Arc::new(move |i, range: Range<usize>, sink| {
                    (cap.produce_range)(i, range, &mut |x| {
                        for u in f(x) {
                            sink(&u);
                        }
                    });
                }),
            }
        });
        Dataset {
            plan: Plan::Lazy {
                parts: self.num_partitions(),
                producer: Arc::new(move |i, sink| {
                    up.produce(i, &mut |x| {
                        for u in f(x) {
                            sink(&u);
                        }
                    });
                }),
                split,
            },
            partitioning: Partitioning::Unknown,
            lineage,
            locality: self.locality.clone(),
        }
    }

    /// Keeps elements satisfying the predicate (narrow, deferred).
    /// Elements pass through untouched, so the partitioning tag is kept: a
    /// filtered hash-partitioned dataset is still hash-partitioned.
    pub fn filter<F>(&self, f: F) -> Dataset<T>
    where
        F: Fn(&T) -> bool + Send + Sync + 'static,
    {
        let up = self.clone();
        let f = Arc::new(f);
        let lineage = PlanNode::new(
            "filter",
            OpKind::Filter,
            self.partitioning,
            self.lineage.rows,
            false,
            std::mem::size_of::<T>() as u64,
            vec![Arc::clone(&self.lineage)],
        );
        let split = up.split_cap().map(|cap| {
            let f = Arc::clone(&f);
            SplitCap {
                rows: Arc::clone(&cap.rows),
                produce_range: Arc::new(move |i, range: Range<usize>, sink| {
                    (cap.produce_range)(i, range, &mut |x| {
                        if f(x) {
                            sink(x);
                        }
                    });
                }),
            }
        });
        Dataset {
            plan: Plan::Lazy {
                parts: self.num_partitions(),
                producer: Arc::new(move |i, sink| {
                    up.produce(i, &mut |x| {
                        if f(x) {
                            sink(x);
                        }
                    });
                }),
                split,
            },
            partitioning: self.partitioning,
            lineage,
            locality: self.locality.clone(),
        }
    }

    /// Whole-partition transformation (narrow, deferred). The closure sees
    /// the partition as a slice; when the upstream plan is already
    /// materialized the slice is borrowed directly, otherwise the fused
    /// chain buffers the partition first.
    pub fn map_partitions<U, F>(&self, f: F) -> Dataset<U>
    where
        U: Clone + Send + Sync + 'static,
        F: Fn(&[T]) -> Vec<U> + Send + Sync + 'static,
    {
        let up = self.clone();
        let lineage = PlanNode::new(
            "map_partitions",
            OpKind::MapPartitions,
            Partitioning::Unknown,
            self.lineage.rows,
            false,
            std::mem::size_of::<U>() as u64,
            vec![Arc::clone(&self.lineage)],
        );
        Dataset {
            plan: Plan::Lazy {
                parts: self.num_partitions(),
                producer: Arc::new(move |i, sink| {
                    let out = match &up.plan {
                        Plan::Source(parts) => f(&parts[i]),
                        Plan::Lazy { .. } => {
                            let mut buf = Vec::new();
                            up.produce(i, &mut |x| buf.push(x.clone()));
                            f(&buf)
                        }
                    };
                    for u in &out {
                        sink(u);
                    }
                }),
                // Whole-partition closures see all rows at once: no morsel
                // cut can be proven output-equivalent, so the chain loses
                // its split capability here.
                split: None,
            },
            partitioning: Partitioning::Unknown,
            lineage,
            locality: self.locality.clone(),
        }
    }

    /// Concatenates two datasets. Deferred: partition lists are appended and
    /// no data moves; each side keeps its own fused chain.
    pub fn union(&self, other: &Dataset<T>) -> Dataset<T> {
        let left = self.clone();
        let right = other.clone();
        let split = left.num_partitions();
        let rows = match (self.lineage.rows, other.lineage.rows) {
            (Some(a), Some(b)) => Some(a + b),
            _ => None,
        };
        let lineage = PlanNode::new(
            "union",
            OpKind::Union,
            Partitioning::Unknown,
            rows,
            self.lineage.exact && other.lineage.exact,
            std::mem::size_of::<T>() as u64,
            vec![Arc::clone(&self.lineage), Arc::clone(&other.lineage)],
        );
        let split_cap = match (left.split_cap(), right.split_cap()) {
            // Union appends partition lists, so the capability dispatches on
            // the partition index: both sides stay splittable independently.
            (Some(l), Some(r)) => Some(SplitCap {
                rows: {
                    let (l, r) = (Arc::clone(&l.rows), Arc::clone(&r.rows));
                    Arc::new(move |i| if i < split { l(i) } else { r(i - split) })
                },
                produce_range: Arc::new(move |i, range: Range<usize>, sink| {
                    if i < split {
                        (l.produce_range)(i, range, sink);
                    } else {
                        (r.produce_range)(i - split, range, sink);
                    }
                }),
            }),
            _ => None,
        };
        Dataset {
            plan: Plan::Lazy {
                parts: split + right.num_partitions(),
                producer: Arc::new(move |i, sink| {
                    if i < split {
                        left.produce(i, sink);
                    } else {
                        right.produce(i - split, sink);
                    }
                }),
                split: split_cap,
            },
            partitioning: Partitioning::Unknown,
            lineage,
            locality: Locality::Chained {
                left: Arc::new(self.locality.clone()),
                right: Arc::new(other.locality.clone()),
                split,
            },
        }
    }

    /// Parallel fold: folds each partition through the fused chain, then
    /// reduces the partials on the caller thread.
    ///
    /// Under a sharded layout each shard folds only the partitions it
    /// holds; per-partition partials rendezvous through the exchange and
    /// are combined in global partition-index order, so every shard reduces
    /// the identical sequence a single process would.
    pub fn fold<A, F, G>(&self, rt: &Runtime, init: A, fold: F, combine: G) -> A
    where
        A: Send + Sync + Clone + Spill + 'static,
        F: Fn(A, &T) -> A + Send + Sync + 'static,
        G: Fn(A, A) -> A + Send + Sync + 'static,
    {
        let layout = rt.layout();
        let sharded = layout.is_sharded() && !self.locality.is_replicated();
        let mask = Arc::new(if sharded {
            self.locality.mask(&layout, self.num_partitions())
        } else {
            vec![true; self.num_partitions()]
        });
        let init2 = init.clone();
        let mask_task = Arc::clone(&mask);
        let partials = self.run_per_partition(rt, move |i, d| {
            let mut acc = Some(init2.clone());
            if mask_task[i] {
                d.produce(i, &mut |x| {
                    // Accumulator is re-Some'd on every iteration; None here is
                    // an engine bug, not user input.
                    // lint:allow(expect): move-in/out accumulator invariant
                    let prev = acc.take().expect("fold accumulator");
                    acc = Some(fold(prev, x));
                });
            }
            // lint:allow(expect): same invariant as above
            acc.expect("fold accumulator")
        });
        if !sharded {
            return partials.into_iter().fold(init, combine);
        }
        let n = partials.len();
        let seq = rt.next_exchange_seq();
        let frames: Vec<Frame> = partials
            .iter()
            .enumerate()
            .filter(|(i, _)| mask[*i])
            .map(|(i, a)| {
                let mut payload = Vec::new();
                a.spill(&mut payload);
                Frame {
                    seq,
                    src: i as u64,
                    bucket: i as u64,
                    records: 1,
                    payload,
                }
            })
            .collect();
        let got = match rt.exchange().gather(seq, frames) {
            Ok(f) => f,
            Err(e) => std::panic::panic_any(e),
        };
        // Every shard decodes all partials (its own included) and combines
        // them in global index order — the exact partial sequence a single
        // process folds.
        let mut slots: Vec<Option<A>> = (0..n).map(|_| None).collect();
        for f in got {
            let i = f.src as usize;
            if i >= n || slots[i].is_some() {
                std::panic::panic_any(ExchangeError::Frame {
                    detail: format!("fold: duplicate or out-of-range partial {i} of {n}"),
                });
            }
            let mut r = SpillReader::new(&f.payload);
            let a = match A::unspill(&mut r) {
                Ok(a) => a,
                Err(e) => std::panic::panic_any(ExchangeError::Frame {
                    detail: format!("fold partial: {e}"),
                }),
            };
            slots[i] = Some(a);
        }
        slots
            .into_iter()
            .map(|s| s.unwrap_or_else(|| init.clone()))
            .fold(init.clone(), combine)
    }

    /// Collects into a single-partition dataset sorted by a key (used to
    /// enforce deterministic layouts, e.g. before coalescing folds).
    pub fn sort_by_key<K, F>(&self, rt: &Runtime, key: F) -> Dataset<T>
    where
        K: Ord,
        F: Fn(&T) -> K + Send + Sync + 'static,
        T: Spill,
    {
        let mut all = self.collect(rt);
        all.sort_by_key(|a| key(a));
        let lineage = PlanNode::new(
            "sort_by_key",
            OpKind::SortByKey,
            Partitioning::Unknown,
            Some(all.len() as u64),
            true,
            std::mem::size_of::<T>() as u64,
            vec![Arc::clone(&self.lineage)],
        );
        Self::from_arc_partitions_lineage(vec![Arc::new(all)], Partitioning::Unknown, lineage)
    }

    /// Rebalances into `parts` evenly sized partitions.
    pub fn repartition(&self, rt: &Runtime, parts: usize) -> Dataset<T>
    where
        T: Spill,
    {
        let all = self.collect(rt);
        let rows = all.len() as u64;
        let mut out = Self::from_vec_with(parts, all);
        out.lineage = PlanNode::new(
            "repartition",
            OpKind::Repartition {
                parts: out.num_partitions(),
            },
            Partitioning::Unknown,
            Some(rows),
            true,
            std::mem::size_of::<T>() as u64,
            vec![Arc::clone(&self.lineage)],
        );
        out
    }
}

/// Decodes a frame's payload back into its typed records. Codec violations
/// (truncated or trailing payload bytes) surface as typed
/// [`ExchangeError`] panic payloads, mirroring the spill-path discipline.
pub(crate) fn decode_records<T: Spill>(f: &Frame) -> Vec<T> {
    let mut r = SpillReader::new(&f.payload);
    // Cap the pre-allocation: `records` is wire data and must not be able
    // to force an arbitrary allocation before decode proves it out.
    let mut out = Vec::with_capacity(f.records.min(1 << 20) as usize);
    for k in 0..f.records {
        match T::unspill(&mut r) {
            Ok(x) => out.push(x),
            Err(e) => std::panic::panic_any(ExchangeError::Frame {
                detail: format!("record {k} of {}: {e}", f.records),
            }),
        }
    }
    if r.remaining() != 0 {
        std::panic::panic_any(ExchangeError::Frame {
            detail: format!("{} trailing payload bytes after decode", r.remaining()),
        });
    }
    out
}

impl<T: Clone + Send + Sync + 'static> FromIterator<T> for Dataset<T> {
    /// Collects into a single-partition dataset. Use
    /// [`Dataset::from_vec`] to control partitioning.
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        Dataset::from_partitions(vec![iter.into_iter().collect()])
    }
}

impl<T> std::fmt::Debug for Dataset<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.plan {
            Plan::Source(parts) => write!(
                f,
                "Dataset({} partitions, {} elements, {:?})",
                parts.len(),
                parts.iter().map(|p| p.len()).sum::<usize>(),
                self.partitioning,
            ),
            Plan::Lazy { parts, .. } => {
                write!(
                    f,
                    "Dataset({parts} partitions, deferred, {:?})",
                    self.partitioning
                )
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rt() -> Runtime {
        Runtime::with_partitions(4, 4)
    }

    #[test]
    fn from_vec_preserves_order_and_balance() {
        let rt = rt();
        let d = Dataset::from_vec(&rt, (0..10).collect());
        assert_eq!(d.num_partitions(), 4);
        assert_eq!(d.collect(&rt), (0..10).collect::<Vec<_>>());
        // ceil(10/4) = 3 → sizes 3,3,3,1
        let sizes: Vec<usize> = d.parts(&rt).iter().map(|p| p.len()).collect();
        assert_eq!(sizes, vec![3, 3, 3, 1]);
    }

    #[test]
    fn from_vec_more_partitions_than_items() {
        let rt = Runtime::with_partitions(2, 8);
        let d = Dataset::from_vec(&rt, vec![1, 2, 3]);
        assert_eq!(d.num_partitions(), 8);
        assert_eq!(d.count(&rt), 3);
    }

    #[test]
    fn map_filter_flat_map() {
        let rt = rt();
        let d = Dataset::from_vec(&rt, (0..100).collect::<Vec<i64>>());
        let doubled = d.map(|x| x * 2);
        assert_eq!(
            doubled.collect(&rt),
            (0..100).map(|x| x * 2).collect::<Vec<_>>()
        );
        let evens = d.filter(|x| x % 2 == 0);
        assert_eq!(evens.count(&rt), 50);
        let pairs = d.flat_map(|x| vec![*x, *x]);
        assert_eq!(pairs.count(&rt), 200);
    }

    #[test]
    fn narrow_chain_is_deferred_and_fuses_into_one_wave() {
        let rt = rt();
        // This test asserts barrier-scheduler task accounting; pin the mode
        // so it holds under TGRAPH_STEAL=1 too (steal-mode accounting is
        // covered by steal_mode_matches_barrier_results).
        rt.set_stealing(false);
        let d = Dataset::from_vec(&rt, (0..1000).collect::<Vec<i64>>());
        let before = rt.stats();
        let chained = d.map(|x| x + 1).filter(|x| x % 3 == 0).map(|x| x * 10);
        // Building the chain runs nothing.
        let mid = rt.stats();
        assert_eq!(mid.waves, before.waves, "narrow ops must not launch tasks");
        assert_eq!(mid.tasks, before.tasks);
        let out = chained.collect(&rt);
        let after = rt.stats();
        assert_eq!(
            after.waves - before.waves,
            1,
            "map→filter→map + collect = one wave"
        );
        assert_eq!(after.tasks - before.tasks, 4, "one task per partition");
        let expected: Vec<i64> = (0..1000)
            .map(|x| x + 1)
            .filter(|x| x % 3 == 0)
            .map(|x| x * 10)
            .collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn filter_preserves_partitioning_tag_and_maps_reset_it() {
        let d: Dataset<(u32, u32)> = Dataset::from_partitions(vec![vec![(1, 1)], vec![(2, 2)]]);
        let tagged = d.with_partitioning(Partitioning::HashByKey { parts: 2 });
        assert_eq!(
            tagged.filter(|_| true).partitioning(),
            Partitioning::HashByKey { parts: 2 }
        );
        assert_eq!(tagged.map(|x| *x).partitioning(), Partitioning::Unknown);
        assert_eq!(
            tagged.flat_map(|x| vec![*x]).partitioning(),
            Partitioning::Unknown
        );
        assert_eq!(
            tagged.map_partitions(|p| p.to_vec()).partitioning(),
            Partitioning::Unknown
        );
    }

    #[test]
    fn materialize_is_idempotent_and_keeps_tag() {
        let rt = rt();
        let d = Dataset::from_vec(&rt, (0..10).collect::<Vec<i32>>())
            .with_partitioning(Partitioning::HashByKey { parts: 4 });
        let lazy = d.filter(|x| x % 2 == 0);
        let m = lazy.materialize(&rt);
        assert_eq!(m.partitioning(), Partitioning::HashByKey { parts: 4 });
        assert_eq!(m.collect(&rt), lazy.collect(&rt));
        let before = rt.stats().waves;
        let m2 = m.materialize(&rt);
        assert_eq!(
            rt.stats().waves,
            before,
            "re-materializing a source is free"
        );
        assert_eq!(m2.collect(&rt), m.collect(&rt));
    }

    #[test]
    fn fold_sums() {
        let rt = rt();
        let d = Dataset::from_vec(&rt, (1..=100).collect::<Vec<i64>>());
        let sum = d.fold(&rt, 0i64, |acc, x| acc + x, |a, b| a + b);
        assert_eq!(sum, 5050);
        // Fold over a fused chain sees transformed elements.
        let sum2 = d
            .map(|x| x * 2)
            .fold(&rt, 0i64, |acc, x| acc + x, |a, b| a + b);
        assert_eq!(sum2, 10100);
    }

    #[test]
    fn union_concatenates_and_stays_lazy() {
        let rt = rt();
        let a = Dataset::from_vec(&rt, vec![1, 2]);
        let b = Dataset::from_vec(&rt, vec![3]);
        let before = rt.stats().waves;
        let u = a.map(|x| x * 10).union(&b.map(|x| x * 10));
        assert_eq!(rt.stats().waves, before, "union of lazy chains is deferred");
        assert_eq!(u.count(&rt), 3);
        let mut all = u.collect(&rt);
        all.sort();
        assert_eq!(all, vec![10, 20, 30]);
    }

    #[test]
    fn sort_by_key_orders_globally() {
        let rt = rt();
        let d = Dataset::from_vec(&rt, vec![5, 3, 9, 1, 7]);
        assert_eq!(d.sort_by_key(&rt, |x| *x).collect(&rt), vec![1, 3, 5, 7, 9]);
    }

    #[test]
    fn empty_dataset() {
        let rt = rt();
        let d: Dataset<i32> = Dataset::empty();
        assert_eq!(d.count(&rt), 0);
        assert!(d.collect(&rt).is_empty());
    }

    #[test]
    fn repartition_keeps_elements() {
        let rt = rt();
        let d = Dataset::from_partitions(vec![vec![1, 2, 3], vec![4]]);
        let r = d.repartition(&rt, 3);
        assert_eq!(r.num_partitions(), 3);
        assert_eq!(r.collect(&rt), vec![1, 2, 3, 4]);
    }

    #[test]
    fn from_iterator() {
        let rt = rt();
        let d: Dataset<i32> = (0..5).collect();
        assert_eq!(d.num_partitions(), 1);
        assert_eq!(d.collect(&rt), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn map_partitions_sees_whole_partition() {
        let rt = rt();
        let d = Dataset::from_vec(&rt, (0..12).collect::<Vec<i32>>());
        let sums = d.map_partitions(|p| vec![p.iter().sum::<i32>()]);
        assert_eq!(sums.count(&rt), 4);
        assert_eq!(sums.collect(&rt).iter().sum::<i32>(), 66);
        // And composes with a fused upstream chain.
        let sums2 = d
            .map(|x| x + 1)
            .map_partitions(|p| vec![p.iter().sum::<i32>()]);
        assert_eq!(sums2.collect(&rt).iter().sum::<i32>(), 78);
    }

    #[test]
    fn lineage_records_operator_chain() {
        let rt = rt();
        let d = Dataset::from_vec(&rt, (0..10).collect::<Vec<i64>>());
        let chained = d.map(|x| x + 1).filter(|x| x % 2 == 0);
        let root = chained.lineage();
        assert_eq!(root.op, OpKind::Filter);
        assert_eq!(root.inputs[0].op, OpKind::Map);
        assert_eq!(root.inputs[0].inputs[0].op, OpKind::Source { parts: 4 });
        assert_eq!(root.inputs[0].inputs[0].rows, Some(10));
        assert!(root.inputs[0].inputs[0].exact);
        // filter keeps the row estimate but downgrades it to a bound.
        assert_eq!(root.rows, Some(10));
        assert!(!root.exact);
    }

    #[test]
    fn steal_mode_matches_barrier_results() {
        let rt = rt();
        rt.set_morsel_rows(16); // many morsels over the skewed partition
        let mut parts: Vec<Vec<i64>> = vec![(0..500).collect()]; // hot: 500 of ~800 rows
        parts.extend((0..3).map(|p| (0..100).map(|x| x + 1000 * (p + 1)).collect()));
        let d = Dataset::from_partitions(parts);
        let chain = |d: &Dataset<i64>| {
            d.map(|x| x * 3)
                .filter(|x| x % 2 == 0)
                .flat_map(|x| [*x, -*x])
        };
        rt.set_stealing(false);
        let barrier = chain(&d).collect(&rt);
        let barrier_count = chain(&d).count(&rt);
        rt.set_stealing(true);
        let before = rt.stats();
        let stolen = chain(&d).collect(&rt);
        let stolen_count = chain(&d).count(&rt);
        rt.set_stealing(false);
        assert_eq!(stolen, barrier, "schedulers must agree byte-for-byte");
        assert_eq!(stolen_count, barrier_count);
        let delta = rt.stats().since(&before);
        assert!(delta.morsels > 0, "steal mode must execute morsels");
        assert_eq!(delta.tasks, 0, "steal mode bypasses barrier tasks");
    }

    #[test]
    fn map_partitions_loses_split_capability() {
        let rt = rt();
        let d = Dataset::from_vec(&rt, (0..64).collect::<Vec<i32>>());
        assert!(d.map(|x| x + 1).split_cap().is_some());
        assert!(d.union(&d).split_cap().is_some());
        let pinned = d.map_partitions(|p| p.to_vec());
        assert!(pinned.split_cap().is_none());
        assert!(
            pinned.map(|x| *x).split_cap().is_none(),
            "capability cannot reappear downstream of a whole-partition op"
        );
        // With stealing on, a non-splittable plan falls back to the barrier
        // scheduler — and still returns the right answer.
        rt.set_stealing(true);
        let before = rt.stats();
        assert_eq!(pinned.collect(&rt), (0..64).collect::<Vec<_>>());
        rt.set_stealing(false);
        let delta = rt.stats().since(&before);
        assert_eq!(delta.morsels, 0);
        assert!(delta.tasks > 0, "fallback runs as barrier tasks");
    }

    #[test]
    fn steal_mode_union_splits_both_sides() {
        let rt = rt();
        rt.set_morsel_rows(8);
        let a = Dataset::from_vec(&rt, (0..100i64).collect());
        let b = Dataset::from_vec(&rt, (100..150i64).collect());
        let u = a.map(|x| x * 2).union(&b.map(|x| x * 2));
        rt.set_stealing(true);
        let got = u.collect(&rt);
        rt.set_stealing(false);
        assert_eq!(got, (0..150i64).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn with_partitioning_records_a_claim_node() {
        let d: Dataset<(u32, u32)> = Dataset::from_partitions(vec![vec![(1, 1)], vec![(2, 2)]]);
        let tagged = d.with_partitioning(Partitioning::HashByKey { parts: 2 });
        let root = tagged.lineage();
        assert_eq!(root.op, OpKind::Claim);
        assert_eq!(root.claimed, Partitioning::HashByKey { parts: 2 });
        assert_eq!(root.inputs[0].op, OpKind::Source { parts: 2 });
    }
}
