//! `Dataset<T>` — an immutable, partitioned, in-memory collection with
//! Spark-RDD-style second-order operators.
//!
//! Partitions are shared behind `Arc`, so narrow transformations (map,
//! filter, flatMap) read their input partition without copying it, and
//! cloning a dataset is free. All operators execute eagerly on the
//! [`Runtime`]'s worker pool, one task per partition.

use crate::runtime::Runtime;
use std::sync::Arc;

/// An immutable partitioned collection.
#[derive(Clone)]
pub struct Dataset<T> {
    partitions: Vec<Arc<Vec<T>>>,
}

impl<T: Send + Sync + 'static> Dataset<T> {
    /// Builds a dataset by splitting `items` evenly into the runtime's
    /// default partition count.
    pub fn from_vec(rt: &Runtime, items: Vec<T>) -> Self {
        Self::from_vec_with(rt.partitions(), items)
    }

    /// Builds a dataset split into exactly `parts` partitions.
    pub fn from_vec_with(parts: usize, items: Vec<T>) -> Self {
        let parts = parts.max(1);
        let n = items.len();
        let chunk = n.div_ceil(parts).max(1);
        let mut partitions = Vec::with_capacity(parts);
        let mut items = items;
        // Draining from the front preserves element order across partitions.
        let mut rest = items.split_off(0);
        for _ in 0..parts {
            if rest.is_empty() {
                partitions.push(Arc::new(Vec::new()));
                continue;
            }
            let tail = rest.split_off(chunk.min(rest.len()));
            partitions.push(Arc::new(rest));
            rest = tail;
        }
        debug_assert!(rest.is_empty());
        Dataset { partitions }
    }

    /// Wraps pre-built partitions.
    pub fn from_partitions(partitions: Vec<Vec<T>>) -> Self {
        Dataset { partitions: partitions.into_iter().map(Arc::new).collect() }
    }

    /// An empty dataset with one empty partition.
    pub fn empty() -> Self {
        Dataset { partitions: vec![Arc::new(Vec::new())] }
    }

    /// Number of partitions.
    pub fn num_partitions(&self) -> usize {
        self.partitions.len()
    }

    /// Borrow of the raw partitions.
    pub fn partitions(&self) -> &[Arc<Vec<T>>] {
        &self.partitions
    }

    /// Total number of elements (parallel count).
    pub fn count(&self, rt: &Runtime) -> usize {
        let parts = self.partitions.clone();
        rt.run_indexed(parts.len(), move |i| parts[i].len())
            .into_iter()
            .sum()
    }

    /// Materializes all elements in partition order.
    pub fn collect(&self) -> Vec<T>
    where
        T: Clone,
    {
        let mut out = Vec::with_capacity(self.partitions.iter().map(|p| p.len()).sum());
        for p in &self.partitions {
            out.extend(p.iter().cloned());
        }
        out
    }

    /// Element-wise transformation (narrow).
    pub fn map<U, F>(&self, rt: &Runtime, f: F) -> Dataset<U>
    where
        U: Send + Sync + 'static,
        F: Fn(&T) -> U + Send + Sync + 'static,
    {
        let f = Arc::new(f);
        self.map_partitions(rt, move |part| part.iter().map(|x| f(x)).collect())
    }

    /// Element-to-many transformation (narrow).
    pub fn flat_map<U, I, F>(&self, rt: &Runtime, f: F) -> Dataset<U>
    where
        U: Send + Sync + 'static,
        I: IntoIterator<Item = U>,
        F: Fn(&T) -> I + Send + Sync + 'static,
    {
        let f = Arc::new(f);
        self.map_partitions(rt, move |part| part.iter().flat_map(|x| f(x)).collect())
    }

    /// Keeps elements satisfying the predicate (narrow).
    pub fn filter<F>(&self, rt: &Runtime, f: F) -> Dataset<T>
    where
        T: Clone,
        F: Fn(&T) -> bool + Send + Sync + 'static,
    {
        let f = Arc::new(f);
        self.map_partitions(rt, move |part| {
            part.iter().filter(|x| f(x)).cloned().collect()
        })
    }

    /// Whole-partition transformation — the building block every narrow
    /// operator lowers to. One pool task per partition.
    pub fn map_partitions<U, F>(&self, rt: &Runtime, f: F) -> Dataset<U>
    where
        U: Send + Sync + 'static,
        F: Fn(&[T]) -> Vec<U> + Send + Sync + 'static,
    {
        let parts = self.partitions.clone();
        let out = rt.run_indexed(parts.len(), move |i| f(&parts[i]));
        Dataset { partitions: out.into_iter().map(Arc::new).collect() }
    }

    /// Concatenates two datasets (partition lists are appended; no data moves).
    pub fn union(&self, other: &Dataset<T>) -> Dataset<T> {
        let mut partitions = self.partitions.clone();
        partitions.extend(other.partitions.iter().cloned());
        Dataset { partitions }
    }

    /// Parallel fold: folds each partition, then reduces the partials.
    pub fn fold<A, F, G>(&self, rt: &Runtime, init: A, fold: F, combine: G) -> A
    where
        A: Send + Sync + Clone + 'static,
        F: Fn(A, &T) -> A + Send + Sync + 'static,
        G: Fn(A, A) -> A + Send + Sync + 'static,
    {
        let parts = self.partitions.clone();
        let fold = Arc::new(fold);
        let init2 = init.clone();
        let partials = rt.run_indexed(parts.len(), move |i| {
            parts[i].iter().fold(init2.clone(), |acc, x| fold(acc, x))
        });
        partials.into_iter().fold(init, combine)
    }

    /// Collects into a single-partition dataset sorted by a key (used to
    /// enforce deterministic layouts, e.g. before coalescing folds).
    pub fn sort_by_key<K, F>(&self, _rt: &Runtime, key: F) -> Dataset<T>
    where
        T: Clone,
        K: Ord,
        F: Fn(&T) -> K + Send + Sync + 'static,
    {
        let mut all = self.collect();
        all.sort_by(|a, b| key(a).cmp(&key(b)));
        Dataset { partitions: vec![Arc::new(all)] }
    }

    /// Rebalances into `parts` evenly sized partitions.
    pub fn repartition(&self, parts: usize) -> Dataset<T>
    where
        T: Clone,
    {
        Self::from_vec_with(parts, self.collect())
    }
}

impl<T: Send + Sync + 'static> FromIterator<T> for Dataset<T> {
    /// Collects into a single-partition dataset. Use
    /// [`Dataset::from_vec`] to control partitioning.
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        Dataset::from_partitions(vec![iter.into_iter().collect()])
    }
}

impl<T> std::fmt::Debug for Dataset<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Dataset({} partitions, {} elements)",
            self.partitions.len(),
            self.partitions.iter().map(|p| p.len()).sum::<usize>()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rt() -> Runtime {
        Runtime::with_partitions(4, 4)
    }

    #[test]
    fn from_vec_preserves_order_and_balance() {
        let rt = rt();
        let d = Dataset::from_vec(&rt, (0..10).collect());
        assert_eq!(d.num_partitions(), 4);
        assert_eq!(d.collect(), (0..10).collect::<Vec<_>>());
        // ceil(10/4) = 3 → sizes 3,3,3,1
        let sizes: Vec<usize> = d.partitions().iter().map(|p| p.len()).collect();
        assert_eq!(sizes, vec![3, 3, 3, 1]);
    }

    #[test]
    fn from_vec_more_partitions_than_items() {
        let rt = Runtime::with_partitions(2, 8);
        let d = Dataset::from_vec(&rt, vec![1, 2, 3]);
        assert_eq!(d.num_partitions(), 8);
        assert_eq!(d.count(&rt), 3);
    }

    #[test]
    fn map_filter_flat_map() {
        let rt = rt();
        let d = Dataset::from_vec(&rt, (0..100).collect::<Vec<i64>>());
        let doubled = d.map(&rt, |x| x * 2);
        assert_eq!(doubled.collect(), (0..100).map(|x| x * 2).collect::<Vec<_>>());
        let evens = d.filter(&rt, |x| x % 2 == 0);
        assert_eq!(evens.count(&rt), 50);
        let pairs = d.flat_map(&rt, |x| vec![*x, *x]);
        assert_eq!(pairs.count(&rt), 200);
    }

    #[test]
    fn fold_sums() {
        let rt = rt();
        let d = Dataset::from_vec(&rt, (1..=100).collect::<Vec<i64>>());
        let sum = d.fold(&rt, 0i64, |acc, x| acc + x, |a, b| a + b);
        assert_eq!(sum, 5050);
    }

    #[test]
    fn union_concatenates() {
        let rt = rt();
        let a = Dataset::from_vec(&rt, vec![1, 2]);
        let b = Dataset::from_vec(&rt, vec![3]);
        let u = a.union(&b);
        assert_eq!(u.count(&rt), 3);
        let mut all = u.collect();
        all.sort();
        assert_eq!(all, vec![1, 2, 3]);
    }

    #[test]
    fn sort_by_key_orders_globally() {
        let rt = rt();
        let d = Dataset::from_vec(&rt, vec![5, 3, 9, 1, 7]);
        assert_eq!(d.sort_by_key(&rt, |x| *x).collect(), vec![1, 3, 5, 7, 9]);
    }

    #[test]
    fn empty_dataset() {
        let rt = rt();
        let d: Dataset<i32> = Dataset::empty();
        assert_eq!(d.count(&rt), 0);
        assert!(d.collect().is_empty());
    }

    #[test]
    fn repartition_keeps_elements() {
        let d = Dataset::from_partitions(vec![vec![1, 2, 3], vec![4]]);
        let r = d.repartition(3);
        assert_eq!(r.num_partitions(), 3);
        assert_eq!(r.collect(), vec![1, 2, 3, 4]);
    }

    #[test]
    fn from_iterator() {
        let d: Dataset<i32> = (0..5).collect();
        assert_eq!(d.num_partitions(), 1);
        assert_eq!(d.collect(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn map_partitions_sees_whole_partition() {
        let rt = rt();
        let d = Dataset::from_vec(&rt, (0..12).collect::<Vec<i32>>());
        let sums = d.map_partitions(&rt, |p| vec![p.iter().sum::<i32>()]);
        assert_eq!(sums.count(&rt), 4);
        assert_eq!(sums.collect().iter().sum::<i32>(), 66);
    }
}
