//! The dataflow runtime: worker pool, partitioning defaults, and execution
//! statistics.

use crate::pool::ThreadPool;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Snapshot of execution statistics — the shared-memory analogue of Spark's
/// shuffle read/write metrics plus executor accounting.
///
/// `waves` counts task batches launched on the pool: a fully fused narrow
/// chain costs exactly one wave regardless of how many operators it chains,
/// so `waves` is the observable proof that operator fusion (or shuffle
/// elision) happened. `shuffled_bytes` approximates moved volume as
/// `records × size_of::<record>()`; heap payloads behind pointers are not
/// followed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RuntimeStats {
    /// Tasks executed on the pool.
    pub tasks: u64,
    /// Task waves (batches) launched — one per materialization or shuffle
    /// stage.
    pub waves: u64,
    /// Number of shuffle stages executed.
    pub shuffles: u64,
    /// Shuffles skipped because the input already carried the required
    /// hash partitioning.
    pub shuffles_elided: u64,
    /// Records that crossed a partition boundary in shuffles.
    pub shuffled_records: u64,
    /// Approximate bytes moved in shuffles (records × record size).
    pub shuffled_bytes: u64,
    /// Executed shuffles for which a static row estimate existed before
    /// execution (a prediction was recorded).
    pub shuffles_estimated: u64,
    /// Records the plan lineage predicted would move, summed over estimated
    /// shuffles. Compare with `shuffled_records` for predicted-vs-actual.
    pub predicted_shuffled_records: u64,
    /// Bytes the plan lineage predicted would move.
    pub predicted_shuffled_bytes: u64,
}

impl RuntimeStats {
    /// Statistics accumulated since an earlier snapshot
    /// (per-experiment deltas: `rt.stats().since(&before)`).
    pub fn since(&self, earlier: &RuntimeStats) -> RuntimeStats {
        RuntimeStats {
            tasks: self.tasks - earlier.tasks,
            waves: self.waves - earlier.waves,
            shuffles: self.shuffles - earlier.shuffles,
            shuffles_elided: self.shuffles_elided - earlier.shuffles_elided,
            shuffled_records: self.shuffled_records - earlier.shuffled_records,
            shuffled_bytes: self.shuffled_bytes - earlier.shuffled_bytes,
            shuffles_estimated: self.shuffles_estimated - earlier.shuffles_estimated,
            predicted_shuffled_records: self.predicted_shuffled_records
                - earlier.predicted_shuffled_records,
            predicted_shuffled_bytes: self.predicted_shuffled_bytes
                - earlier.predicted_shuffled_bytes,
        }
    }
}

/// The execution context every dataflow operator runs against.
///
/// Owns the worker pool and the default partition count (Spark's
/// `spark.default.parallelism`). Cheap to share: wrap in `Arc` or pass by
/// reference.
pub struct Runtime {
    pool: ThreadPool,
    partitions: usize,
    waves: AtomicU64,
    shuffles: AtomicU64,
    shuffles_elided: AtomicU64,
    shuffled_records: AtomicU64,
    shuffled_bytes: AtomicU64,
    shuffles_estimated: AtomicU64,
    predicted_shuffled_records: AtomicU64,
    predicted_shuffled_bytes: AtomicU64,
    checked: AtomicBool,
}

impl Runtime {
    /// Creates a runtime with `workers` threads and `2 × workers` default
    /// partitions.
    pub fn new(workers: usize) -> Self {
        Self::with_partitions(workers, workers.max(1) * 2)
    }

    /// Creates a runtime with an explicit default partition count.
    pub fn with_partitions(workers: usize, partitions: usize) -> Self {
        Runtime {
            pool: ThreadPool::new(workers),
            partitions: partitions.max(1),
            waves: AtomicU64::new(0),
            shuffles: AtomicU64::new(0),
            shuffles_elided: AtomicU64::new(0),
            shuffled_records: AtomicU64::new(0),
            shuffled_bytes: AtomicU64::new(0),
            shuffles_estimated: AtomicU64::new(0),
            predicted_shuffled_records: AtomicU64::new(0),
            predicted_shuffled_bytes: AtomicU64::new(0),
            checked: AtomicBool::new(checked_from_env()),
        }
    }

    /// A single-threaded runtime with one partition (useful in tests and as
    /// the sequential baseline in benchmarks).
    pub fn sequential() -> Self {
        Self::with_partitions(1, 1)
    }

    /// Runtime sized to the machine: one worker per available core.
    pub fn default_parallel() -> Self {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4);
        Self::new(cores)
    }

    /// Default number of partitions for new datasets and shuffles.
    pub fn partitions(&self) -> usize {
        self.partitions
    }

    /// Number of pool workers.
    pub fn workers(&self) -> usize {
        self.pool.size()
    }

    /// Runs `n` indexed tasks in parallel, returning results in index order.
    /// Each non-empty batch counts as one wave.
    pub fn run_indexed<R, F>(&self, n: usize, f: F) -> Vec<R>
    where
        R: Send + 'static,
        F: Fn(usize) -> R + Send + Sync + 'static,
    {
        if n > 0 {
            self.waves.fetch_add(1, Ordering::Relaxed);
        }
        let f = Arc::new(f);
        let tasks: Vec<Box<dyn FnOnce() -> R + Send>> = (0..n)
            .map(|i| {
                let f = Arc::clone(&f);
                Box::new(move || f(i)) as _
            })
            .collect();
        self.pool.run_batch(tasks)
    }

    /// Records shuffle volume (called by keyed operators).
    pub(crate) fn note_shuffle(&self, records: u64, bytes: u64) {
        self.shuffles.fetch_add(1, Ordering::Relaxed);
        self.shuffled_records.fetch_add(records, Ordering::Relaxed);
        self.shuffled_bytes.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Records a shuffle skipped thanks to an existing hash partitioning.
    pub(crate) fn note_shuffle_elided(&self) {
        self.shuffles_elided.fetch_add(1, Ordering::Relaxed);
    }

    /// Records the statically predicted volume of a shuffle about to
    /// execute (from lineage row estimates).
    pub(crate) fn note_shuffle_predicted(&self, records: u64, bytes: u64) {
        self.shuffles_estimated.fetch_add(1, Ordering::Relaxed);
        self.predicted_shuffled_records
            .fetch_add(records, Ordering::Relaxed);
        self.predicted_shuffled_bytes
            .fetch_add(bytes, Ordering::Relaxed);
    }

    /// Whether checked execution mode is on: elision points verify claimed
    /// partitionings record-by-record, and representation switches validate
    /// their TGraph against Definition 2.1. Enabled at construction when the
    /// environment variable `TGRAPH_CHECKED` is `1` or `true`, or explicitly
    /// via [`Runtime::set_checked`].
    pub fn checked(&self) -> bool {
        self.checked.load(Ordering::Relaxed)
    }

    /// Turns checked execution mode on or off.
    pub fn set_checked(&self, on: bool) {
        self.checked.store(on, Ordering::Relaxed);
    }

    /// Current execution statistics.
    pub fn stats(&self) -> RuntimeStats {
        RuntimeStats {
            tasks: self.pool.tasks_run(),
            waves: self.waves.load(Ordering::Relaxed),
            shuffles: self.shuffles.load(Ordering::Relaxed),
            shuffles_elided: self.shuffles_elided.load(Ordering::Relaxed),
            shuffled_records: self.shuffled_records.load(Ordering::Relaxed),
            shuffled_bytes: self.shuffled_bytes.load(Ordering::Relaxed),
            shuffles_estimated: self.shuffles_estimated.load(Ordering::Relaxed),
            predicted_shuffled_records: self.predicted_shuffled_records.load(Ordering::Relaxed),
            predicted_shuffled_bytes: self.predicted_shuffled_bytes.load(Ordering::Relaxed),
        }
    }
}

/// Reads the `TGRAPH_CHECKED` environment gate (`1`/`true` → on).
fn checked_from_env() -> bool {
    matches!(
        std::env::var("TGRAPH_CHECKED").as_deref(),
        Ok("1") | Ok("true")
    )
}

impl std::fmt::Debug for Runtime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Runtime")
            .field("workers", &self.workers())
            .field("partitions", &self.partitions)
            .field("stats", &self.stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indexed_results_in_order() {
        let rt = Runtime::new(4);
        let out = rt.run_indexed(100, |i| i * i);
        assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn sequential_runtime() {
        let rt = Runtime::sequential();
        assert_eq!(rt.workers(), 1);
        assert_eq!(rt.partitions(), 1);
        assert_eq!(rt.run_indexed(3, |i| i), vec![0, 1, 2]);
    }

    #[test]
    fn stats_track_shuffles() {
        let rt = Runtime::new(2);
        assert_eq!(rt.stats().shuffles, 0);
        rt.note_shuffle(10, 160);
        rt.note_shuffle(5, 80);
        rt.note_shuffle_elided();
        let s = rt.stats();
        assert_eq!(s.shuffles, 2);
        assert_eq!(s.shuffled_records, 15);
        assert_eq!(s.shuffled_bytes, 240);
        assert_eq!(s.shuffles_elided, 1);
    }

    #[test]
    fn waves_count_batches() {
        let rt = Runtime::new(2);
        assert_eq!(rt.stats().waves, 0);
        rt.run_indexed(4, |i| i);
        rt.run_indexed(1, |i| i);
        let empty: Vec<usize> = rt.run_indexed(0, |i| i);
        assert!(empty.is_empty());
        assert_eq!(rt.stats().waves, 2, "empty batches are not waves");
    }

    #[test]
    fn stats_since_deltas() {
        let rt = Runtime::new(2);
        rt.run_indexed(4, |i| i);
        let before = rt.stats();
        rt.run_indexed(4, |i| i);
        rt.note_shuffle(7, 70);
        let d = rt.stats().since(&before);
        assert_eq!(d.waves, 1);
        assert_eq!(d.shuffles, 1);
        assert_eq!(d.shuffled_records, 7);
    }

    #[test]
    fn checked_mode_toggles() {
        let rt = Runtime::new(1);
        let initial = rt.checked();
        rt.set_checked(true);
        assert!(rt.checked());
        rt.set_checked(false);
        assert!(!rt.checked());
        rt.set_checked(initial);
    }

    #[test]
    fn predicted_movement_counters() {
        let rt = Runtime::new(1);
        rt.note_shuffle_predicted(100, 800);
        rt.note_shuffle(90, 720);
        let s = rt.stats();
        assert_eq!(s.shuffles_estimated, 1);
        assert_eq!(s.predicted_shuffled_records, 100);
        assert_eq!(s.predicted_shuffled_bytes, 800);
    }

    #[test]
    fn partitions_floor_is_one() {
        let rt = Runtime::with_partitions(2, 0);
        assert_eq!(rt.partitions(), 1);
    }
}
