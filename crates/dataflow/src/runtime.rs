//! The dataflow runtime: worker pool, partitioning defaults, and execution
//! statistics.

use crate::cancel;
use crate::exchange::{self, Exchange, ExchangeCounters, InProcessExchange, ShardLayout};
use crate::governor::MemGovernor;
use crate::pool::ThreadPool;
use crate::steal;
use crate::sync::lock_unpoisoned;
use std::ops::Range;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Snapshot of execution statistics — the shared-memory analogue of Spark's
/// shuffle read/write metrics plus executor accounting.
///
/// `waves` counts task batches launched on the pool: a fully fused narrow
/// chain costs exactly one wave regardless of how many operators it chains,
/// so `waves` is the observable proof that operator fusion (or shuffle
/// elision) happened. `shuffled_bytes` approximates moved volume as
/// `records × size_of::<record>()`; heap payloads behind pointers are not
/// followed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RuntimeStats {
    /// Tasks executed on the pool.
    pub tasks: u64,
    /// Task waves (batches) launched — one per materialization or shuffle
    /// stage.
    pub waves: u64,
    /// Number of shuffle stages executed.
    pub shuffles: u64,
    /// Shuffles skipped because the input already carried the required
    /// hash partitioning.
    pub shuffles_elided: u64,
    /// Records that crossed a partition boundary in shuffles.
    pub shuffled_records: u64,
    /// Approximate bytes moved in shuffles (records × record size).
    pub shuffled_bytes: u64,
    /// Executed shuffles for which a static row estimate existed before
    /// execution (a prediction was recorded).
    pub shuffles_estimated: u64,
    /// Records the plan lineage predicted would move, summed over estimated
    /// shuffles. Compare with `shuffled_records` for predicted-vs-actual.
    pub predicted_shuffled_records: u64,
    /// Bytes the plan lineage predicted would move.
    pub predicted_shuffled_bytes: u64,
    /// Task waves refused at dispatch because the caller's
    /// [`CancelToken`](crate::CancelToken) had tripped — no task launched.
    pub waves_cancelled: u64,
    /// Tasks that observed a tripped token at start and exited without
    /// running their partition.
    pub tasks_cancelled: u64,
    /// Morsels (row-range sub-tasks) executed by work-stealing waves. Zero
    /// unless [`Runtime::stealing`] is on; morsel waves do not bump `tasks`.
    pub morsels: u64,
    /// Morsels executed by a worker other than the one whose deque they were
    /// seeded on — the work-stealing scheduler's skew-absorption counter.
    pub steals: u64,
    /// Sum over waves of that wave's longest scheduled unit (task or
    /// morsel), in µs. A wave's wall time can never be below its longest
    /// unit, so `max_task_us / wave_us` close to 1 means waves were
    /// straggler-bound (the skew the morsel scheduler exists to fix).
    pub max_task_us: u64,
    /// Sum of wave wall-clock times, in µs.
    pub wave_us: u64,
    /// Total bytes written to spill run files by the memory governor. Zero
    /// unless a budget is in force (`TGRAPH_MEM_BYTES` /
    /// [`Runtime::set_mem_budget`]) and an exchange exceeded it.
    pub bytes_spilled: u64,
    /// Number of spill run files written by the memory governor.
    pub spill_files: u64,
    /// High-water mark of bytes charged against the memory governor
    /// (exchange residency, combine state, admission reservations). Unlike
    /// the other counters this is a *gauge maximum*, not a monotonic sum:
    /// [`since`](RuntimeStats::since) carries the current value through
    /// instead of subtracting.
    pub peak_bytes: u64,
    /// Payload bytes handed to the [`Exchange`] for routing. Zero on the
    /// default in-process fast path; counts loopback traffic in framed mode
    /// (`TGRAPH_EXCHANGE=framed`) and wire traffic under a
    /// [`TcpExchange`](crate::TcpExchange).
    pub bytes_exchanged: u64,
    /// Data frames handed to the exchange for routing.
    pub frames_sent: u64,
    /// Data frames delivered by the exchange (own contributions included).
    pub frames_received: u64,
    /// Exchange waits that actually blocked on remote frames.
    pub exchange_stalls: u64,
}

impl RuntimeStats {
    /// Statistics accumulated since an earlier snapshot
    /// (per-experiment deltas: `rt.stats().since(&before)`).
    pub fn since(&self, earlier: &RuntimeStats) -> RuntimeStats {
        RuntimeStats {
            tasks: self.tasks - earlier.tasks,
            waves: self.waves - earlier.waves,
            shuffles: self.shuffles - earlier.shuffles,
            shuffles_elided: self.shuffles_elided - earlier.shuffles_elided,
            shuffled_records: self.shuffled_records - earlier.shuffled_records,
            shuffled_bytes: self.shuffled_bytes - earlier.shuffled_bytes,
            shuffles_estimated: self.shuffles_estimated - earlier.shuffles_estimated,
            predicted_shuffled_records: self.predicted_shuffled_records
                - earlier.predicted_shuffled_records,
            predicted_shuffled_bytes: self.predicted_shuffled_bytes
                - earlier.predicted_shuffled_bytes,
            waves_cancelled: self.waves_cancelled - earlier.waves_cancelled,
            tasks_cancelled: self.tasks_cancelled - earlier.tasks_cancelled,
            morsels: self.morsels - earlier.morsels,
            steals: self.steals - earlier.steals,
            max_task_us: self.max_task_us - earlier.max_task_us,
            wave_us: self.wave_us - earlier.wave_us,
            bytes_spilled: self.bytes_spilled - earlier.bytes_spilled,
            spill_files: self.spill_files - earlier.spill_files,
            // A high-water mark has no meaningful delta; report the level.
            peak_bytes: self.peak_bytes,
            bytes_exchanged: self.bytes_exchanged - earlier.bytes_exchanged,
            frames_sent: self.frames_sent - earlier.frames_sent,
            frames_received: self.frames_received - earlier.frames_received,
            exchange_stalls: self.exchange_stalls - earlier.exchange_stalls,
        }
    }
}

/// A point-in-time marker of a runtime's cumulative counters, for
/// per-request accounting on a long-lived shared [`Runtime`].
///
/// Counters on a `Runtime` are cumulative for the process lifetime; a server
/// executing many queries against one runtime wants *deltas*. Take a
/// snapshot before the work and ask it for the delta after:
///
/// ```
/// use tgraph_dataflow::{Dataset, Runtime};
/// let rt = Runtime::new(2);
/// let snap = rt.snapshot();
/// let _ = Dataset::from_vec(&rt, vec![1, 2, 3]).collect(&rt);
/// assert_eq!(snap.delta(&rt).waves, 1);
/// ```
///
/// Under concurrent queries the delta includes every query's work in the
/// window — the snapshot isolates *time*, not *ownership*. Callers that need
/// per-query isolation must serialize (or accept the approximation, as the
/// serving layer's `/stats` aggregates do).
#[derive(Clone, Copy, Debug)]
pub struct StatsSnapshot {
    base: RuntimeStats,
}

impl StatsSnapshot {
    /// Counters accumulated on `rt` since this snapshot was taken.
    pub fn delta(&self, rt: &Runtime) -> RuntimeStats {
        rt.stats().since(&self.base)
    }

    /// The absolute counters at snapshot time.
    pub fn base(&self) -> RuntimeStats {
        self.base
    }
}

/// The execution context every dataflow operator runs against.
///
/// Owns the worker pool and the default partition count (Spark's
/// `spark.default.parallelism`). Cheap to share: wrap in `Arc` or pass by
/// reference.
pub struct Runtime {
    pool: ThreadPool,
    partitions: usize,
    waves: AtomicU64,
    shuffles: AtomicU64,
    shuffles_elided: AtomicU64,
    shuffled_records: AtomicU64,
    shuffled_bytes: AtomicU64,
    shuffles_estimated: AtomicU64,
    predicted_shuffled_records: AtomicU64,
    predicted_shuffled_bytes: AtomicU64,
    waves_cancelled: AtomicU64,
    tasks_cancelled: AtomicU64,
    morsels: AtomicU64,
    steals: AtomicU64,
    max_task_us: AtomicU64,
    wave_us: AtomicU64,
    checked: AtomicBool,
    stealing: AtomicBool,
    morsel_rows: AtomicUsize,
    governor: Arc<MemGovernor>,
    exchange: Mutex<Arc<dyn Exchange>>,
    exchange_counters: Arc<ExchangeCounters>,
    exchange_seq: AtomicU64,
}

impl Runtime {
    /// Creates a runtime with `workers` threads and `2 × workers` default
    /// partitions.
    pub fn new(workers: usize) -> Self {
        Self::with_partitions(workers, workers.max(1) * 2)
    }

    /// Creates a runtime with an explicit default partition count.
    pub fn with_partitions(workers: usize, partitions: usize) -> Self {
        let exchange_counters = Arc::new(ExchangeCounters::default());
        Runtime {
            pool: ThreadPool::new(workers),
            partitions: partitions.max(1),
            waves: AtomicU64::new(0),
            shuffles: AtomicU64::new(0),
            shuffles_elided: AtomicU64::new(0),
            shuffled_records: AtomicU64::new(0),
            shuffled_bytes: AtomicU64::new(0),
            shuffles_estimated: AtomicU64::new(0),
            predicted_shuffled_records: AtomicU64::new(0),
            predicted_shuffled_bytes: AtomicU64::new(0),
            waves_cancelled: AtomicU64::new(0),
            tasks_cancelled: AtomicU64::new(0),
            morsels: AtomicU64::new(0),
            steals: AtomicU64::new(0),
            max_task_us: AtomicU64::new(0),
            wave_us: AtomicU64::new(0),
            checked: AtomicBool::new(checked_from_env()),
            stealing: AtomicBool::new(stealing_from_env()),
            morsel_rows: AtomicUsize::new(morsel_rows_from_env()),
            governor: Arc::new(MemGovernor::from_env()),
            exchange: Mutex::new(Arc::new(InProcessExchange::new(
                exchange::framed_from_env(),
                Arc::clone(&exchange_counters),
            ))),
            exchange_counters,
            exchange_seq: AtomicU64::new(0),
        }
    }

    /// A single-threaded runtime with one partition (useful in tests and as
    /// the sequential baseline in benchmarks).
    pub fn sequential() -> Self {
        Self::with_partitions(1, 1)
    }

    /// Runtime sized to the machine: one worker per available core.
    pub fn default_parallel() -> Self {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4);
        Self::new(cores)
    }

    /// Default number of partitions for new datasets and shuffles.
    pub fn partitions(&self) -> usize {
        self.partitions
    }

    /// Number of pool workers.
    pub fn workers(&self) -> usize {
        self.pool.size()
    }

    /// Runs `n` indexed tasks in parallel, returning results in index order.
    /// Each non-empty batch counts as one wave.
    ///
    /// If the calling thread has a [`CancelToken`](crate::CancelToken)
    /// installed (via [`CancelToken::scope`](crate::CancelToken::scope)) and
    /// it has tripped, the wave is refused before any task launches; tasks
    /// of an already-launched wave re-check the token before running, so a
    /// cancelled query's queued partitions drain without doing their work.
    /// Cancellation unwinds with [`Cancelled`](crate::Cancelled), which the
    /// owning scope converts to `Err(Cancelled)`.
    pub fn run_indexed<R, F>(&self, n: usize, f: F) -> Vec<R>
    where
        R: Send + 'static,
        F: Fn(usize) -> R + Send + Sync + 'static,
    {
        let token = cancel::current();
        if let Some(t) = &token {
            if t.is_cancelled() {
                self.waves_cancelled.fetch_add(1, Ordering::Relaxed);
                cancel::abort();
            }
        }
        if n > 0 {
            self.waves.fetch_add(1, Ordering::Relaxed);
        }
        let f = Arc::new(f);
        let cancelled_tasks = Arc::new(AtomicU64::new(0));
        let max_task_us = Arc::new(AtomicU64::new(0));
        let tasks: Vec<Box<dyn FnOnce() -> R + Send>> = (0..n)
            .map(|i| {
                let f = Arc::clone(&f);
                let token = token.clone();
                let cancelled_tasks = Arc::clone(&cancelled_tasks);
                let max_task_us = Arc::clone(&max_task_us);
                Box::new(move || {
                    if let Some(t) = &token {
                        if t.is_cancelled() {
                            cancelled_tasks.fetch_add(1, Ordering::Relaxed);
                            cancel::abort();
                        }
                    }
                    let start = Instant::now();
                    let r = f(i);
                    max_task_us.fetch_max(elapsed_us(start), Ordering::Relaxed);
                    r
                }) as _
            })
            .collect();
        let wave_start = Instant::now();
        let result =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| self.pool.run_batch(tasks)));
        if n > 0 {
            self.wave_us
                .fetch_add(elapsed_us(wave_start), Ordering::Relaxed);
            self.max_task_us
                .fetch_add(max_task_us.load(Ordering::Relaxed), Ordering::Relaxed);
        }
        self.tasks_cancelled
            .fetch_add(cancelled_tasks.load(Ordering::Relaxed), Ordering::Relaxed);
        match result {
            Ok(r) => r,
            Err(payload) => std::panic::resume_unwind(payload),
        }
    }

    /// Runs one wave of morsel-granular work under the work-stealing
    /// scheduler: partition `i` (of `sizes[i]` rows) is split into row-range
    /// morsels of at most [`Runtime::morsel_rows`] rows, and `f(i, range)`
    /// is invoked once per morsel. Results come back per partition, in row
    /// order, so concatenating partition `i`'s entries reproduces exactly
    /// what one task over `0..sizes[i]` would have produced for any
    /// range-distributive `f` (the element-wise narrow chains the dataset
    /// layer feeds in).
    ///
    /// Cancellation mirrors [`run_indexed`](Runtime::run_indexed) but is
    /// finer-grained: drivers observe the installed
    /// [`CancelToken`](crate::CancelToken) between morsels, so a hot
    /// partition stops mid-way instead of running its full task.
    pub fn run_morsels<R, F>(&self, sizes: &[usize], f: F) -> Vec<Vec<R>>
    where
        R: Send + 'static,
        F: Fn(usize, Range<usize>) -> R + Send + Sync + 'static,
    {
        let token = cancel::current();
        if let Some(t) = &token {
            if t.is_cancelled() {
                self.waves_cancelled.fetch_add(1, Ordering::Relaxed);
                cancel::abort();
            }
        }
        if sizes.iter().any(|&s| s > 0) {
            self.waves.fetch_add(1, Ordering::Relaxed);
        }
        let wave_start = Instant::now();
        let result = steal::run_wave(&self.pool, sizes, self.morsel_rows(), token, Arc::new(f));
        self.wave_us
            .fetch_add(elapsed_us(wave_start), Ordering::Relaxed);
        self.morsels.fetch_add(result.executed, Ordering::Relaxed);
        self.steals.fetch_add(result.steals, Ordering::Relaxed);
        self.max_task_us
            .fetch_add(result.max_morsel_us, Ordering::Relaxed);
        match result.outcome {
            steal::WaveOutcome::Completed => result.per_partition,
            steal::WaveOutcome::Cancelled => {
                self.tasks_cancelled
                    .fetch_add(result.skipped, Ordering::Relaxed);
                cancel::abort()
            }
            steal::WaveOutcome::Panicked(payload) => std::panic::resume_unwind(payload),
        }
    }

    /// Records shuffle volume (called by keyed operators).
    pub(crate) fn note_shuffle(&self, records: u64, bytes: u64) {
        self.shuffles.fetch_add(1, Ordering::Relaxed);
        self.shuffled_records.fetch_add(records, Ordering::Relaxed);
        self.shuffled_bytes.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Records a shuffle skipped thanks to an existing hash partitioning.
    pub(crate) fn note_shuffle_elided(&self) {
        self.shuffles_elided.fetch_add(1, Ordering::Relaxed);
    }

    /// Records the statically predicted volume of a shuffle about to
    /// execute (from lineage row estimates).
    pub(crate) fn note_shuffle_predicted(&self, records: u64, bytes: u64) {
        self.shuffles_estimated.fetch_add(1, Ordering::Relaxed);
        self.predicted_shuffled_records
            .fetch_add(records, Ordering::Relaxed);
        self.predicted_shuffled_bytes
            .fetch_add(bytes, Ordering::Relaxed);
    }

    /// Whether checked execution mode is on: elision points verify claimed
    /// partitionings record-by-record, and representation switches validate
    /// their TGraph against Definition 2.1. Enabled at construction when the
    /// environment variable `TGRAPH_CHECKED` is `1` or `true`, or explicitly
    /// via [`Runtime::set_checked`].
    pub fn checked(&self) -> bool {
        self.checked.load(Ordering::Relaxed)
    }

    /// Turns checked execution mode on or off.
    pub fn set_checked(&self, on: bool) {
        self.checked.store(on, Ordering::Relaxed);
    }

    /// Whether the work-stealing morsel scheduler is on: actions over
    /// splittable (element-wise) plans and shuffle map sides run as
    /// row-range morsels with idle workers stealing from busy ones, instead
    /// of one barrier task per partition. Enabled at construction when the
    /// environment variable `TGRAPH_STEAL` is `1` or `true`, or explicitly
    /// via [`Runtime::set_stealing`]. Off by default until the skew benches
    /// have confirmed it across workloads.
    pub fn stealing(&self) -> bool {
        self.stealing.load(Ordering::Relaxed)
    }

    /// Turns the work-stealing morsel scheduler on or off.
    pub fn set_stealing(&self, on: bool) {
        self.stealing.store(on, Ordering::Relaxed);
    }

    /// Maximum rows per morsel for the work-stealing scheduler (default
    /// 4096, overridable via `TGRAPH_MORSEL_ROWS`). Small enough that a hot
    /// partition splits into many stealable units, large enough that the
    /// per-morsel dispatch cost is amortized over thousands of rows.
    pub fn morsel_rows(&self) -> usize {
        self.morsel_rows.load(Ordering::Relaxed)
    }

    /// Sets the morsel granularity (floor 1 row).
    pub fn set_morsel_rows(&self, rows: usize) {
        self.morsel_rows.store(rows.max(1), Ordering::Relaxed);
    }

    /// The runtime's [memory governor](MemGovernor): the shared byte-budget
    /// accountant that shuffle exchanges charge and the serving layer
    /// reserves against.
    pub fn governor(&self) -> Arc<MemGovernor> {
        Arc::clone(&self.governor)
    }

    /// The governor's byte budget (`0` = unlimited). Initialized from
    /// `TGRAPH_MEM_BYTES` at construction.
    pub fn mem_budget(&self) -> u64 {
        self.governor.budget()
    }

    /// Sets the governor's byte budget; `0` disables budgeting (and with it
    /// estimation and spilling). Results are byte-identical either way —
    /// only memory residency and the spill counters change.
    pub fn set_mem_budget(&self, bytes: u64) {
        self.governor.set_budget(bytes);
    }

    /// The installed [`Exchange`]: the routing layer every shuffle and
    /// sharded gather goes through. Defaults to an [`InProcessExchange`]
    /// (framed when `TGRAPH_EXCHANGE=framed`).
    pub fn exchange(&self) -> Arc<dyn Exchange> {
        Arc::clone(&lock_unpoisoned(&self.exchange))
    }

    /// Installs an exchange implementation (e.g. a
    /// [`TcpExchange`](crate::TcpExchange) built with this runtime's
    /// [`exchange_counters`](Runtime::exchange_counters)). Swapping the
    /// exchange while a wave is in flight is a logic error.
    pub fn set_exchange(&self, ex: Arc<dyn Exchange>) {
        *lock_unpoisoned(&self.exchange) = ex;
    }

    /// The counters a custom exchange should share so its traffic shows up
    /// in [`Runtime::stats`].
    pub fn exchange_counters(&self) -> Arc<ExchangeCounters> {
        Arc::clone(&self.exchange_counters)
    }

    /// This participant's slice of the global partition space (from the
    /// installed exchange).
    pub fn layout(&self) -> ShardLayout {
        self.exchange().layout()
    }

    /// Allocates the next exchange-operation sequence number. Sharded
    /// participants executing the same plan from the same
    /// [`set_exchange_seq_base`](Runtime::set_exchange_seq_base) allocate
    /// identical sequences in identical order, which is what lets frames
    /// rendezvous without a control channel.
    pub(crate) fn next_exchange_seq(&self) -> u64 {
        self.exchange_seq.fetch_add(1, Ordering::SeqCst)
    }

    /// Re-bases the exchange sequence counter (coordinators pick one epoch
    /// per query; every shard calls this with the same base before
    /// executing).
    pub fn set_exchange_seq_base(&self, base: u64) {
        self.exchange_seq.store(base, Ordering::SeqCst);
    }

    /// Current execution statistics.
    pub fn stats(&self) -> RuntimeStats {
        RuntimeStats {
            tasks: self.pool.tasks_run(),
            waves: self.waves.load(Ordering::Relaxed),
            shuffles: self.shuffles.load(Ordering::Relaxed),
            shuffles_elided: self.shuffles_elided.load(Ordering::Relaxed),
            shuffled_records: self.shuffled_records.load(Ordering::Relaxed),
            shuffled_bytes: self.shuffled_bytes.load(Ordering::Relaxed),
            shuffles_estimated: self.shuffles_estimated.load(Ordering::Relaxed),
            predicted_shuffled_records: self.predicted_shuffled_records.load(Ordering::Relaxed),
            predicted_shuffled_bytes: self.predicted_shuffled_bytes.load(Ordering::Relaxed),
            waves_cancelled: self.waves_cancelled.load(Ordering::Relaxed),
            tasks_cancelled: self.tasks_cancelled.load(Ordering::Relaxed),
            morsels: self.morsels.load(Ordering::Relaxed),
            steals: self.steals.load(Ordering::Relaxed),
            max_task_us: self.max_task_us.load(Ordering::Relaxed),
            wave_us: self.wave_us.load(Ordering::Relaxed),
            bytes_spilled: self.governor.bytes_spilled(),
            spill_files: self.governor.spill_files(),
            peak_bytes: self.governor.peak_bytes(),
            bytes_exchanged: self
                .exchange_counters
                .bytes_exchanged
                .load(Ordering::Relaxed),
            frames_sent: self.exchange_counters.frames_sent.load(Ordering::Relaxed),
            frames_received: self
                .exchange_counters
                .frames_received
                .load(Ordering::Relaxed),
            exchange_stalls: self
                .exchange_counters
                .exchange_stalls
                .load(Ordering::Relaxed),
        }
    }

    /// Marks the current counter values for later per-request delta
    /// accounting (see [`StatsSnapshot`]).
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot { base: self.stats() }
    }
}

/// Reads the `TGRAPH_CHECKED` environment gate (`1`/`true` → on).
fn checked_from_env() -> bool {
    matches!(
        std::env::var("TGRAPH_CHECKED").as_deref(),
        Ok("1") | Ok("true")
    )
}

/// Reads the `TGRAPH_STEAL` environment gate (`1`/`true` → on).
fn stealing_from_env() -> bool {
    matches!(
        std::env::var("TGRAPH_STEAL").as_deref(),
        Ok("1") | Ok("true")
    )
}

/// Reads `TGRAPH_MORSEL_ROWS` (rows per morsel; default 4096, floor 1).
fn morsel_rows_from_env() -> usize {
    std::env::var("TGRAPH_MORSEL_ROWS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .map_or(4096, |n| n.max(1))
}

/// Microseconds elapsed since `start`, saturating at `u64::MAX`.
fn elapsed_us(start: Instant) -> u64 {
    start.elapsed().as_micros().min(u128::from(u64::MAX)) as u64
}

impl std::fmt::Debug for Runtime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Runtime")
            .field("workers", &self.workers())
            .field("partitions", &self.partitions)
            .field("stats", &self.stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indexed_results_in_order() {
        let rt = Runtime::new(4);
        let out = rt.run_indexed(100, |i| i * i);
        assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn sequential_runtime() {
        let rt = Runtime::sequential();
        assert_eq!(rt.workers(), 1);
        assert_eq!(rt.partitions(), 1);
        assert_eq!(rt.run_indexed(3, |i| i), vec![0, 1, 2]);
    }

    #[test]
    fn stats_track_shuffles() {
        let rt = Runtime::new(2);
        assert_eq!(rt.stats().shuffles, 0);
        rt.note_shuffle(10, 160);
        rt.note_shuffle(5, 80);
        rt.note_shuffle_elided();
        let s = rt.stats();
        assert_eq!(s.shuffles, 2);
        assert_eq!(s.shuffled_records, 15);
        assert_eq!(s.shuffled_bytes, 240);
        assert_eq!(s.shuffles_elided, 1);
    }

    #[test]
    fn waves_count_batches() {
        let rt = Runtime::new(2);
        assert_eq!(rt.stats().waves, 0);
        rt.run_indexed(4, |i| i);
        rt.run_indexed(1, |i| i);
        let empty: Vec<usize> = rt.run_indexed(0, |i| i);
        assert!(empty.is_empty());
        assert_eq!(rt.stats().waves, 2, "empty batches are not waves");
    }

    #[test]
    fn stats_since_deltas() {
        let rt = Runtime::new(2);
        rt.run_indexed(4, |i| i);
        let before = rt.stats();
        rt.run_indexed(4, |i| i);
        rt.note_shuffle(7, 70);
        let d = rt.stats().since(&before);
        assert_eq!(d.waves, 1);
        assert_eq!(d.shuffles, 1);
        assert_eq!(d.shuffled_records, 7);
    }

    #[test]
    fn checked_mode_toggles() {
        let rt = Runtime::new(1);
        let initial = rt.checked();
        rt.set_checked(true);
        assert!(rt.checked());
        rt.set_checked(false);
        assert!(!rt.checked());
        rt.set_checked(initial);
    }

    #[test]
    fn predicted_movement_counters() {
        let rt = Runtime::new(1);
        rt.note_shuffle_predicted(100, 800);
        rt.note_shuffle(90, 720);
        let s = rt.stats();
        assert_eq!(s.shuffles_estimated, 1);
        assert_eq!(s.predicted_shuffled_records, 100);
        assert_eq!(s.predicted_shuffled_bytes, 800);
    }

    #[test]
    fn partitions_floor_is_one() {
        let rt = Runtime::with_partitions(2, 0);
        assert_eq!(rt.partitions(), 1);
    }

    #[test]
    fn snapshot_delta_matches_since() {
        let rt = Runtime::new(2);
        rt.run_indexed(4, |i| i);
        let snap = rt.snapshot();
        rt.run_indexed(4, |i| i);
        rt.note_shuffle(3, 24);
        let d = snap.delta(&rt);
        assert_eq!(d.waves, 1);
        assert_eq!(d.shuffles, 1);
        assert_eq!(d.shuffled_records, 3);
        assert_eq!(snap.base().waves, 1);
    }

    #[test]
    fn tripped_token_refuses_the_wave_before_launch() {
        use crate::cancel::CancelToken;
        let rt = Runtime::new(2);
        let token = CancelToken::new();
        token.cancel();
        let before = rt.stats();
        let result = token.scope(|| rt.run_indexed(8, |i| i));
        assert!(result.is_err());
        let d = rt.stats().since(&before);
        assert_eq!(d.waves, 0, "no wave may launch after cancellation");
        assert_eq!(d.tasks, 0, "no task may run after cancellation");
        assert_eq!(d.waves_cancelled, 1);
    }

    #[test]
    fn expired_deadline_counts_as_cancelled() {
        use crate::cancel::CancelToken;
        let rt = Runtime::new(2);
        let token = CancelToken::with_deadline(
            std::time::Instant::now() - std::time::Duration::from_millis(1),
        );
        let result = token.scope(|| rt.run_indexed(4, |i| i));
        assert!(result.is_err());
        assert_eq!(rt.stats().waves_cancelled, 1);
    }

    #[test]
    fn mid_wave_cancellation_drains_queued_tasks() {
        use crate::cancel::CancelToken;
        // One worker so tasks run strictly in sequence: the first task trips
        // the token, every queued task after it must observe it and exit
        // without running its body.
        let rt = Runtime::new(1);
        let token = CancelToken::new();
        let body_runs = Arc::new(AtomicU64::new(0));
        let result = {
            let t = token.clone();
            let body_runs = Arc::clone(&body_runs);
            token.scope(move || {
                rt.run_indexed(16, move |i| {
                    body_runs.fetch_add(1, Ordering::Relaxed);
                    if i == 0 {
                        t.cancel();
                    }
                    i
                })
            })
        };
        assert_eq!(result, Err(crate::cancel::Cancelled));
        assert!(
            body_runs.load(Ordering::Relaxed) < 16,
            "queued tasks must drain without running their bodies"
        );
    }

    #[test]
    fn morsel_wave_reassembles_per_partition() {
        let rt = Runtime::new(4);
        rt.set_morsel_rows(4);
        let out = rt.run_morsels(&[10, 0, 5], |part, range| (part, range.start, range.end));
        assert_eq!(
            out,
            vec![
                vec![(0, 0, 4), (0, 4, 8), (0, 8, 10)],
                vec![],
                vec![(2, 0, 4), (2, 4, 5)],
            ]
        );
        let s = rt.stats();
        assert_eq!(s.morsels, 5);
        assert_eq!(s.waves, 1, "a morsel wave is one wave");
        assert_eq!(s.tasks, 0, "morsel waves do not bump the task counter");
    }

    #[test]
    fn morsel_wave_skew_is_stolen() {
        // One hot partition: with 4 workers and 1-row morsels, idle workers
        // must steal from the hot deque, and the counters must show it.
        let rt = Runtime::new(4);
        rt.set_morsel_rows(1);
        let out = rt.run_morsels(&[128, 0, 0, 0], |_, range| {
            let mut acc = range.start as u64;
            for i in 0..20_000u64 {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
            }
            acc
        });
        assert_eq!(out[0].len(), 128);
        let s = rt.stats();
        assert_eq!(s.morsels, 128);
        assert!(s.steals > 0, "skewed wave must record steals");
        assert!(s.wave_us > 0 && s.max_task_us > 0);
    }

    #[test]
    fn morsel_wave_cancellation_skips_remaining() {
        use crate::cancel::CancelToken;
        let rt = Runtime::with_partitions(1, 1); // sequential drivers
        rt.set_morsel_rows(1);
        let token = CancelToken::new();
        let result = {
            let t = token.clone();
            token.scope(move || {
                rt.run_morsels(&[32], move |_, range| {
                    if range.start == 0 {
                        t.cancel();
                    }
                    range.start
                })
            })
        };
        assert_eq!(result, Err(crate::cancel::Cancelled));
    }

    #[test]
    fn morsel_wave_panic_propagates_after_drain() {
        let rt = Runtime::new(2);
        rt.set_morsel_rows(1);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            rt.run_morsels(&[16], |_, range| {
                if range.start == 3 {
                    panic!("morsel failed");
                }
                range.start
            })
        }));
        assert!(result.is_err());
    }

    #[test]
    fn stealing_gate_toggles() {
        let rt = Runtime::new(1);
        let initial = rt.stealing();
        rt.set_stealing(true);
        assert!(rt.stealing());
        rt.set_stealing(false);
        assert!(!rt.stealing());
        rt.set_stealing(initial);
    }

    #[test]
    fn morsel_rows_floor_is_one() {
        let rt = Runtime::new(1);
        rt.set_morsel_rows(0);
        assert_eq!(rt.morsel_rows(), 1);
        rt.set_morsel_rows(100);
        assert_eq!(rt.morsel_rows(), 100);
    }

    #[test]
    fn barrier_waves_record_timing_skew() {
        let rt = Runtime::new(2);
        rt.run_indexed(4, |i| {
            std::thread::sleep(std::time::Duration::from_millis(1 + i as u64));
            i
        });
        let s = rt.stats();
        assert!(s.max_task_us > 0, "longest task duration must be recorded");
        assert!(
            s.wave_us >= s.max_task_us,
            "wave wall time bounds its longest task"
        );
    }

    #[test]
    fn uncancelled_scope_runs_normally() {
        use crate::cancel::CancelToken;
        let rt = Runtime::new(2);
        let token = CancelToken::new();
        let out = token.scope(|| rt.run_indexed(4, |i| i * 3));
        assert_eq!(out, Ok(vec![0, 3, 6, 9]));
        assert_eq!(rt.stats().waves_cancelled, 0);
        assert_eq!(rt.stats().tasks_cancelled, 0);
    }
}
