//! The dataflow runtime: worker pool, partitioning defaults, and execution
//! statistics.

use crate::cancel;
use crate::pool::ThreadPool;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Snapshot of execution statistics — the shared-memory analogue of Spark's
/// shuffle read/write metrics plus executor accounting.
///
/// `waves` counts task batches launched on the pool: a fully fused narrow
/// chain costs exactly one wave regardless of how many operators it chains,
/// so `waves` is the observable proof that operator fusion (or shuffle
/// elision) happened. `shuffled_bytes` approximates moved volume as
/// `records × size_of::<record>()`; heap payloads behind pointers are not
/// followed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RuntimeStats {
    /// Tasks executed on the pool.
    pub tasks: u64,
    /// Task waves (batches) launched — one per materialization or shuffle
    /// stage.
    pub waves: u64,
    /// Number of shuffle stages executed.
    pub shuffles: u64,
    /// Shuffles skipped because the input already carried the required
    /// hash partitioning.
    pub shuffles_elided: u64,
    /// Records that crossed a partition boundary in shuffles.
    pub shuffled_records: u64,
    /// Approximate bytes moved in shuffles (records × record size).
    pub shuffled_bytes: u64,
    /// Executed shuffles for which a static row estimate existed before
    /// execution (a prediction was recorded).
    pub shuffles_estimated: u64,
    /// Records the plan lineage predicted would move, summed over estimated
    /// shuffles. Compare with `shuffled_records` for predicted-vs-actual.
    pub predicted_shuffled_records: u64,
    /// Bytes the plan lineage predicted would move.
    pub predicted_shuffled_bytes: u64,
    /// Task waves refused at dispatch because the caller's
    /// [`CancelToken`](crate::CancelToken) had tripped — no task launched.
    pub waves_cancelled: u64,
    /// Tasks that observed a tripped token at start and exited without
    /// running their partition.
    pub tasks_cancelled: u64,
}

impl RuntimeStats {
    /// Statistics accumulated since an earlier snapshot
    /// (per-experiment deltas: `rt.stats().since(&before)`).
    pub fn since(&self, earlier: &RuntimeStats) -> RuntimeStats {
        RuntimeStats {
            tasks: self.tasks - earlier.tasks,
            waves: self.waves - earlier.waves,
            shuffles: self.shuffles - earlier.shuffles,
            shuffles_elided: self.shuffles_elided - earlier.shuffles_elided,
            shuffled_records: self.shuffled_records - earlier.shuffled_records,
            shuffled_bytes: self.shuffled_bytes - earlier.shuffled_bytes,
            shuffles_estimated: self.shuffles_estimated - earlier.shuffles_estimated,
            predicted_shuffled_records: self.predicted_shuffled_records
                - earlier.predicted_shuffled_records,
            predicted_shuffled_bytes: self.predicted_shuffled_bytes
                - earlier.predicted_shuffled_bytes,
            waves_cancelled: self.waves_cancelled - earlier.waves_cancelled,
            tasks_cancelled: self.tasks_cancelled - earlier.tasks_cancelled,
        }
    }
}

/// A point-in-time marker of a runtime's cumulative counters, for
/// per-request accounting on a long-lived shared [`Runtime`].
///
/// Counters on a `Runtime` are cumulative for the process lifetime; a server
/// executing many queries against one runtime wants *deltas*. Take a
/// snapshot before the work and ask it for the delta after:
///
/// ```
/// use tgraph_dataflow::{Dataset, Runtime};
/// let rt = Runtime::new(2);
/// let snap = rt.snapshot();
/// let _ = Dataset::from_vec(&rt, vec![1, 2, 3]).collect(&rt);
/// assert_eq!(snap.delta(&rt).waves, 1);
/// ```
///
/// Under concurrent queries the delta includes every query's work in the
/// window — the snapshot isolates *time*, not *ownership*. Callers that need
/// per-query isolation must serialize (or accept the approximation, as the
/// serving layer's `/stats` aggregates do).
#[derive(Clone, Copy, Debug)]
pub struct StatsSnapshot {
    base: RuntimeStats,
}

impl StatsSnapshot {
    /// Counters accumulated on `rt` since this snapshot was taken.
    pub fn delta(&self, rt: &Runtime) -> RuntimeStats {
        rt.stats().since(&self.base)
    }

    /// The absolute counters at snapshot time.
    pub fn base(&self) -> RuntimeStats {
        self.base
    }
}

/// The execution context every dataflow operator runs against.
///
/// Owns the worker pool and the default partition count (Spark's
/// `spark.default.parallelism`). Cheap to share: wrap in `Arc` or pass by
/// reference.
pub struct Runtime {
    pool: ThreadPool,
    partitions: usize,
    waves: AtomicU64,
    shuffles: AtomicU64,
    shuffles_elided: AtomicU64,
    shuffled_records: AtomicU64,
    shuffled_bytes: AtomicU64,
    shuffles_estimated: AtomicU64,
    predicted_shuffled_records: AtomicU64,
    predicted_shuffled_bytes: AtomicU64,
    waves_cancelled: AtomicU64,
    tasks_cancelled: AtomicU64,
    checked: AtomicBool,
}

impl Runtime {
    /// Creates a runtime with `workers` threads and `2 × workers` default
    /// partitions.
    pub fn new(workers: usize) -> Self {
        Self::with_partitions(workers, workers.max(1) * 2)
    }

    /// Creates a runtime with an explicit default partition count.
    pub fn with_partitions(workers: usize, partitions: usize) -> Self {
        Runtime {
            pool: ThreadPool::new(workers),
            partitions: partitions.max(1),
            waves: AtomicU64::new(0),
            shuffles: AtomicU64::new(0),
            shuffles_elided: AtomicU64::new(0),
            shuffled_records: AtomicU64::new(0),
            shuffled_bytes: AtomicU64::new(0),
            shuffles_estimated: AtomicU64::new(0),
            predicted_shuffled_records: AtomicU64::new(0),
            predicted_shuffled_bytes: AtomicU64::new(0),
            waves_cancelled: AtomicU64::new(0),
            tasks_cancelled: AtomicU64::new(0),
            checked: AtomicBool::new(checked_from_env()),
        }
    }

    /// A single-threaded runtime with one partition (useful in tests and as
    /// the sequential baseline in benchmarks).
    pub fn sequential() -> Self {
        Self::with_partitions(1, 1)
    }

    /// Runtime sized to the machine: one worker per available core.
    pub fn default_parallel() -> Self {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4);
        Self::new(cores)
    }

    /// Default number of partitions for new datasets and shuffles.
    pub fn partitions(&self) -> usize {
        self.partitions
    }

    /// Number of pool workers.
    pub fn workers(&self) -> usize {
        self.pool.size()
    }

    /// Runs `n` indexed tasks in parallel, returning results in index order.
    /// Each non-empty batch counts as one wave.
    ///
    /// If the calling thread has a [`CancelToken`](crate::CancelToken)
    /// installed (via [`CancelToken::scope`](crate::CancelToken::scope)) and
    /// it has tripped, the wave is refused before any task launches; tasks
    /// of an already-launched wave re-check the token before running, so a
    /// cancelled query's queued partitions drain without doing their work.
    /// Cancellation unwinds with [`Cancelled`](crate::Cancelled), which the
    /// owning scope converts to `Err(Cancelled)`.
    pub fn run_indexed<R, F>(&self, n: usize, f: F) -> Vec<R>
    where
        R: Send + 'static,
        F: Fn(usize) -> R + Send + Sync + 'static,
    {
        let token = cancel::current();
        if let Some(t) = &token {
            if t.is_cancelled() {
                self.waves_cancelled.fetch_add(1, Ordering::Relaxed);
                cancel::abort();
            }
        }
        if n > 0 {
            self.waves.fetch_add(1, Ordering::Relaxed);
        }
        let f = Arc::new(f);
        let cancelled_tasks = Arc::new(AtomicU64::new(0));
        let tasks: Vec<Box<dyn FnOnce() -> R + Send>> = (0..n)
            .map(|i| {
                let f = Arc::clone(&f);
                let token = token.clone();
                let cancelled_tasks = Arc::clone(&cancelled_tasks);
                Box::new(move || {
                    if let Some(t) = &token {
                        if t.is_cancelled() {
                            cancelled_tasks.fetch_add(1, Ordering::Relaxed);
                            cancel::abort();
                        }
                    }
                    f(i)
                }) as _
            })
            .collect();
        let result =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| self.pool.run_batch(tasks)));
        self.tasks_cancelled
            .fetch_add(cancelled_tasks.load(Ordering::Relaxed), Ordering::Relaxed);
        match result {
            Ok(r) => r,
            Err(payload) => std::panic::resume_unwind(payload),
        }
    }

    /// Records shuffle volume (called by keyed operators).
    pub(crate) fn note_shuffle(&self, records: u64, bytes: u64) {
        self.shuffles.fetch_add(1, Ordering::Relaxed);
        self.shuffled_records.fetch_add(records, Ordering::Relaxed);
        self.shuffled_bytes.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Records a shuffle skipped thanks to an existing hash partitioning.
    pub(crate) fn note_shuffle_elided(&self) {
        self.shuffles_elided.fetch_add(1, Ordering::Relaxed);
    }

    /// Records the statically predicted volume of a shuffle about to
    /// execute (from lineage row estimates).
    pub(crate) fn note_shuffle_predicted(&self, records: u64, bytes: u64) {
        self.shuffles_estimated.fetch_add(1, Ordering::Relaxed);
        self.predicted_shuffled_records
            .fetch_add(records, Ordering::Relaxed);
        self.predicted_shuffled_bytes
            .fetch_add(bytes, Ordering::Relaxed);
    }

    /// Whether checked execution mode is on: elision points verify claimed
    /// partitionings record-by-record, and representation switches validate
    /// their TGraph against Definition 2.1. Enabled at construction when the
    /// environment variable `TGRAPH_CHECKED` is `1` or `true`, or explicitly
    /// via [`Runtime::set_checked`].
    pub fn checked(&self) -> bool {
        self.checked.load(Ordering::Relaxed)
    }

    /// Turns checked execution mode on or off.
    pub fn set_checked(&self, on: bool) {
        self.checked.store(on, Ordering::Relaxed);
    }

    /// Current execution statistics.
    pub fn stats(&self) -> RuntimeStats {
        RuntimeStats {
            tasks: self.pool.tasks_run(),
            waves: self.waves.load(Ordering::Relaxed),
            shuffles: self.shuffles.load(Ordering::Relaxed),
            shuffles_elided: self.shuffles_elided.load(Ordering::Relaxed),
            shuffled_records: self.shuffled_records.load(Ordering::Relaxed),
            shuffled_bytes: self.shuffled_bytes.load(Ordering::Relaxed),
            shuffles_estimated: self.shuffles_estimated.load(Ordering::Relaxed),
            predicted_shuffled_records: self.predicted_shuffled_records.load(Ordering::Relaxed),
            predicted_shuffled_bytes: self.predicted_shuffled_bytes.load(Ordering::Relaxed),
            waves_cancelled: self.waves_cancelled.load(Ordering::Relaxed),
            tasks_cancelled: self.tasks_cancelled.load(Ordering::Relaxed),
        }
    }

    /// Marks the current counter values for later per-request delta
    /// accounting (see [`StatsSnapshot`]).
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot { base: self.stats() }
    }
}

/// Reads the `TGRAPH_CHECKED` environment gate (`1`/`true` → on).
fn checked_from_env() -> bool {
    matches!(
        std::env::var("TGRAPH_CHECKED").as_deref(),
        Ok("1") | Ok("true")
    )
}

impl std::fmt::Debug for Runtime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Runtime")
            .field("workers", &self.workers())
            .field("partitions", &self.partitions)
            .field("stats", &self.stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indexed_results_in_order() {
        let rt = Runtime::new(4);
        let out = rt.run_indexed(100, |i| i * i);
        assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn sequential_runtime() {
        let rt = Runtime::sequential();
        assert_eq!(rt.workers(), 1);
        assert_eq!(rt.partitions(), 1);
        assert_eq!(rt.run_indexed(3, |i| i), vec![0, 1, 2]);
    }

    #[test]
    fn stats_track_shuffles() {
        let rt = Runtime::new(2);
        assert_eq!(rt.stats().shuffles, 0);
        rt.note_shuffle(10, 160);
        rt.note_shuffle(5, 80);
        rt.note_shuffle_elided();
        let s = rt.stats();
        assert_eq!(s.shuffles, 2);
        assert_eq!(s.shuffled_records, 15);
        assert_eq!(s.shuffled_bytes, 240);
        assert_eq!(s.shuffles_elided, 1);
    }

    #[test]
    fn waves_count_batches() {
        let rt = Runtime::new(2);
        assert_eq!(rt.stats().waves, 0);
        rt.run_indexed(4, |i| i);
        rt.run_indexed(1, |i| i);
        let empty: Vec<usize> = rt.run_indexed(0, |i| i);
        assert!(empty.is_empty());
        assert_eq!(rt.stats().waves, 2, "empty batches are not waves");
    }

    #[test]
    fn stats_since_deltas() {
        let rt = Runtime::new(2);
        rt.run_indexed(4, |i| i);
        let before = rt.stats();
        rt.run_indexed(4, |i| i);
        rt.note_shuffle(7, 70);
        let d = rt.stats().since(&before);
        assert_eq!(d.waves, 1);
        assert_eq!(d.shuffles, 1);
        assert_eq!(d.shuffled_records, 7);
    }

    #[test]
    fn checked_mode_toggles() {
        let rt = Runtime::new(1);
        let initial = rt.checked();
        rt.set_checked(true);
        assert!(rt.checked());
        rt.set_checked(false);
        assert!(!rt.checked());
        rt.set_checked(initial);
    }

    #[test]
    fn predicted_movement_counters() {
        let rt = Runtime::new(1);
        rt.note_shuffle_predicted(100, 800);
        rt.note_shuffle(90, 720);
        let s = rt.stats();
        assert_eq!(s.shuffles_estimated, 1);
        assert_eq!(s.predicted_shuffled_records, 100);
        assert_eq!(s.predicted_shuffled_bytes, 800);
    }

    #[test]
    fn partitions_floor_is_one() {
        let rt = Runtime::with_partitions(2, 0);
        assert_eq!(rt.partitions(), 1);
    }

    #[test]
    fn snapshot_delta_matches_since() {
        let rt = Runtime::new(2);
        rt.run_indexed(4, |i| i);
        let snap = rt.snapshot();
        rt.run_indexed(4, |i| i);
        rt.note_shuffle(3, 24);
        let d = snap.delta(&rt);
        assert_eq!(d.waves, 1);
        assert_eq!(d.shuffles, 1);
        assert_eq!(d.shuffled_records, 3);
        assert_eq!(snap.base().waves, 1);
    }

    #[test]
    fn tripped_token_refuses_the_wave_before_launch() {
        use crate::cancel::CancelToken;
        let rt = Runtime::new(2);
        let token = CancelToken::new();
        token.cancel();
        let before = rt.stats();
        let result = token.scope(|| rt.run_indexed(8, |i| i));
        assert!(result.is_err());
        let d = rt.stats().since(&before);
        assert_eq!(d.waves, 0, "no wave may launch after cancellation");
        assert_eq!(d.tasks, 0, "no task may run after cancellation");
        assert_eq!(d.waves_cancelled, 1);
    }

    #[test]
    fn expired_deadline_counts_as_cancelled() {
        use crate::cancel::CancelToken;
        let rt = Runtime::new(2);
        let token = CancelToken::with_deadline(
            std::time::Instant::now() - std::time::Duration::from_millis(1),
        );
        let result = token.scope(|| rt.run_indexed(4, |i| i));
        assert!(result.is_err());
        assert_eq!(rt.stats().waves_cancelled, 1);
    }

    #[test]
    fn mid_wave_cancellation_drains_queued_tasks() {
        use crate::cancel::CancelToken;
        // One worker so tasks run strictly in sequence: the first task trips
        // the token, every queued task after it must observe it and exit
        // without running its body.
        let rt = Runtime::new(1);
        let token = CancelToken::new();
        let body_runs = Arc::new(AtomicU64::new(0));
        let result = {
            let t = token.clone();
            let body_runs = Arc::clone(&body_runs);
            token.scope(move || {
                rt.run_indexed(16, move |i| {
                    body_runs.fetch_add(1, Ordering::Relaxed);
                    if i == 0 {
                        t.cancel();
                    }
                    i
                })
            })
        };
        assert_eq!(result, Err(crate::cancel::Cancelled));
        assert!(
            body_runs.load(Ordering::Relaxed) < 16,
            "queued tasks must drain without running their bodies"
        );
    }

    #[test]
    fn uncancelled_scope_runs_normally() {
        use crate::cancel::CancelToken;
        let rt = Runtime::new(2);
        let token = CancelToken::new();
        let out = token.scope(|| rt.run_indexed(4, |i| i * 3));
        assert_eq!(out, Ok(vec![0, 3, 6, 9]));
        assert_eq!(rt.stats().waves_cancelled, 0);
        assert_eq!(rt.stats().tasks_cancelled, 0);
    }
}
