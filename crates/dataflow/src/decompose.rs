//! Decomposable aggregation states: the algebraic contract incremental
//! maintenance rests on.
//!
//! An aggregate is *decomposable* when its partial states form a commutative
//! semigroup under [`Decomposable::merge`]: evaluating the aggregate over a
//! partitioned input and merging the partial states yields the same result
//! as evaluating it over the whole input at once. This is the property that
//! lets
//!
//! * wide operators compute per-partition partials and combine them after
//!   the exchange instead of shipping raw rows, and
//! * the ingest subsystem patch a cached zoom result from a delta: the
//!   cached state covers the old epochs, the delta's partial state covers
//!   the new one, and `merge` reconciles them without revisiting history.
//!
//! Implementors must satisfy, for all states `a`, `b`, `c` produced from
//! disjoint slices of one logical input:
//!
//! * **commutativity** — `merge(a, b) == merge(b, a)`;
//! * **associativity** — `merge(merge(a, b), c) == merge(a, merge(b, c))`.
//!
//! `tgraph_core::zoom::azoom::AggAccumulator` (the aZoom^T aggregate state)
//! implements this trait; its property tests pin the laws down.

/// A mergeable partial-aggregation state. See the module docs for the laws.
pub trait Decomposable {
    /// Folds another partial state (over a disjoint slice of the input)
    /// into `self`.
    fn merge(&mut self, other: &Self);
}

/// Merges an iterator of partial states into one, or `None` for an empty
/// iterator. With the trait laws, the result is independent of the order in
/// which states are supplied.
pub fn merge_states<T: Decomposable>(states: impl IntoIterator<Item = T>) -> Option<T> {
    let mut it = states.into_iter();
    let mut acc = it.next()?;
    for s in it {
        acc.merge(&s);
    }
    Some(acc)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Clone, Debug, PartialEq)]
    struct Sum(i64);
    impl Decomposable for Sum {
        fn merge(&mut self, other: &Self) {
            self.0 += other.0;
        }
    }

    #[test]
    fn merge_states_folds_all_partials() {
        assert_eq!(merge_states(vec![Sum(1), Sum(2), Sum(3)]), Some(Sum(6)));
        assert_eq!(merge_states(Vec::<Sum>::new()), None);
        assert_eq!(merge_states(vec![Sum(7)]), Some(Sum(7)));
    }
}
