//! The pure, checkable core of the exchange protocol.
//!
//! [`ProtocolCore`] is the inbound state machine of one exchange
//! participant: which data frames and FIN sentinels have arrived per
//! exchange operation, which peers are known dead, and whether the stream
//! itself has been poisoned by an unattributable failure. It is **pure** —
//! no locks, no condvars, no sockets, no clocks — which is what makes it
//! checkable: the real [`TcpExchange`](crate::TcpExchange) inbox wraps it in
//! a `Mutex`/`Condvar` pair and loops [`ProtocolCore::poll`] under the
//! condvar, while the `tgraph-analyze` model checker drives the *same*
//! transition functions through every interleaving of a bounded N-shard
//! wave, with fault injection, and checks invariants at every state.
//!
//! # Protocol (version 2)
//!
//! Within one exchange operation (`seq`):
//!
//! * Every **data frame** is uniquely keyed by `(src, bucket)` — each global
//!   map partition produces at most one frame per destination bucket, and
//!   each global partition is mapped by exactly one shard. A second frame
//!   with an already-seen key is a protocol violation (TCP never
//!   duplicates; a duplicate means a peer bug) and poisons the inbox.
//! * Every peer ends its contribution with a **FIN sentinel declaring how
//!   many data frames it sent** (in the frame's `records` field). TCP
//!   ordering guarantees all of a peer's data frames precede its FIN on the
//!   connection, so at FIN time the accepted count must equal the declared
//!   count — a mismatch means frames were lost (or injected) in transit and
//!   poisons the inbox. This is what makes "no lost frame" *detectable*
//!   rather than assumed.
//! * A wave is **complete** when FINs from all expected peers have arrived;
//!   [`ProtocolCore::poll`] then drains and returns its frames.
//! * A **peer death** ([`ProtocolCore::mark_shard_dead`]) fails only waves
//!   that peer had not yet FINed: a peer that finished cleanly closes its
//!   connection while slower shards still drain the last wave, and must not
//!   poison them. An unattributable failure ([`ProtocolCore::poison`]) —
//!   pre-handshake death, corrupt frame, protocol violation — fails every
//!   wave: the stream's identity or framing itself is suspect.
//!
//! # Test-only mutation hook
//!
//! [`ProtocolCore::set_mutation`] installs a seeded bug ([`Mutation`]) used
//! by the model checker's self-test: every mutant must be caught by an
//! invariant violation in some explored interleaving. Production code never
//! installs a mutation (the hook is `#[doc(hidden)]` and nothing outside
//! tests calls it); the real protocol logic is the `None` path.

use crate::exchange::{ExchangeError, Frame};
use std::collections::HashMap;

/// A seeded protocol bug, installable only through the test-only
/// [`ProtocolCore::set_mutation`] hook. Each variant disables exactly one
/// guard of the real transition logic; the model checker must catch every
/// one of them with a replayable counterexample trace.
#[doc(hidden)]
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mutation {
    /// FIN sentinels are silently dropped: waves never complete.
    DropFin,
    /// A dead peer fails a wave even when its FIN (and all its frames)
    /// already arrived — the death check runs before the completion check.
    PrematureDeathMark,
    /// The `(src, bucket)` dedup guard is skipped: a duplicated frame is
    /// accepted into the wave's results.
    AcceptDuplicate,
    /// The FIN frame-count check is skipped: a lost frame goes unnoticed
    /// and the wave completes short.
    IgnoreFinCount,
    /// `poison` is a no-op: corrupt frames and protocol violations are
    /// swallowed instead of failing waves.
    IgnorePoison,
}

impl Mutation {
    /// Every seeded mutant, for the model checker's catch-them-all
    /// self-test.
    pub const ALL: &'static [Mutation] = &[
        Mutation::DropFin,
        Mutation::PrematureDeathMark,
        Mutation::AcceptDuplicate,
        Mutation::IgnoreFinCount,
        Mutation::IgnorePoison,
    ];

    /// Stable name used by `tgraph-model --mutants` reporting.
    pub fn name(&self) -> &'static str {
        match self {
            Mutation::DropFin => "dropped-fin",
            Mutation::PrematureDeathMark => "premature-death-mark",
            Mutation::AcceptDuplicate => "duplicate-frame-accepted",
            Mutation::IgnoreFinCount => "lost-frame-ignored",
            Mutation::IgnorePoison => "poison-ignored",
        }
    }
}

/// Per-wave (per-`seq`) inbound state.
#[derive(Clone, Debug, Default)]
struct WaveInbox {
    /// Accepted data frames, in arrival order.
    frames: Vec<Frame>,
    /// Dedup set over `(src, bucket)` of accepted data frames.
    seen: Vec<(u64, u64)>,
    /// Accepted data frames per sender shard.
    counts: HashMap<u64, u64>,
    /// FIN sentinels per sender shard, with the declared frame count.
    fins: HashMap<u64, u64>,
}

/// What [`ProtocolCore::poll`] found for a wave.
#[derive(Clone, Debug)]
pub enum PollOutcome {
    /// All expected FINs arrived; the wave's data frames, drained.
    Ready(Vec<Frame>),
    /// The wave can never complete; its pending frames were discarded.
    Failed(ExchangeError),
    /// Still waiting on peer frames or FINs.
    Pending,
}

/// Pure inbound protocol state for one exchange participant. See the module
/// docs for the protocol rules this encodes.
#[derive(Clone, Debug, Default)]
pub struct ProtocolCore {
    mutation: Option<Mutation>,
    waves: HashMap<u64, WaveInbox>,
    /// Unattributable failure: poisons every wave.
    dead: Option<ExchangeError>,
    /// Identified peer deaths, by shard. Fail only waves the dead shard had
    /// not yet FINed.
    dead_shards: Vec<(u64, ExchangeError)>,
}

impl ProtocolCore {
    /// An empty core (no frames, no failures, real — unmutated — logic).
    pub fn new() -> Self {
        ProtocolCore::default()
    }

    /// Test-only hook: install (or clear) a seeded protocol bug. See
    /// [`Mutation`]. Never called outside the model checker's mutant
    /// self-test.
    #[doc(hidden)]
    pub fn set_mutation(&mut self, mutation: Option<Mutation>) {
        self.mutation = mutation;
    }

    fn is(&self, m: Mutation) -> bool {
        self.mutation == Some(m)
    }

    /// Deposits one inbound frame from peer shard `from_shard` (the
    /// handshake-established identity of the connection it arrived on).
    ///
    /// Detected protocol violations — duplicate data frame, duplicate FIN,
    /// FIN count mismatch — poison the core (every wave fails) and are also
    /// returned so IO-side callers can log or stop reading the stream.
    pub fn deposit(&mut self, from_shard: u64, frame: Frame) -> Result<(), ExchangeError> {
        if self.dead.is_some() {
            // Already poisoned: frames are dead on arrival either way.
            return Ok(());
        }
        if frame.is_fin() {
            if self.is(Mutation::DropFin) {
                return Ok(());
            }
            let declared = frame.records;
            let wave = self.waves.entry(frame.seq).or_default();
            if wave.fins.contains_key(&from_shard) {
                let err = ExchangeError::Protocol {
                    peer: format!("shard {from_shard}"),
                    detail: format!("duplicate FIN for seq {}", frame.seq),
                };
                return self.violation(err);
            }
            let accepted = wave.counts.get(&from_shard).copied().unwrap_or(0);
            if accepted != declared && !self.is(Mutation::IgnoreFinCount) {
                let err = ExchangeError::Protocol {
                    peer: format!("shard {from_shard}"),
                    detail: format!(
                        "FIN for seq {} declares {declared} frame(s) but {accepted} arrived \
                         (lost or injected in transit)",
                        frame.seq
                    ),
                };
                return self.violation(err);
            }
            self.waves
                .entry(frame.seq)
                .or_default()
                .fins
                .insert(from_shard, declared);
            return Ok(());
        }
        let accept_dup = self.is(Mutation::AcceptDuplicate);
        let wave = self.waves.entry(frame.seq).or_default();
        let key = (frame.src, frame.bucket);
        if wave.seen.contains(&key) {
            if !accept_dup {
                let err = ExchangeError::Protocol {
                    peer: format!("shard {from_shard}"),
                    detail: format!(
                        "duplicate frame for seq {} (src {}, bucket {})",
                        frame.seq, frame.src, frame.bucket
                    ),
                };
                return self.violation(err);
            }
            // Mutant: the dedup guard is gone — the duplicate slips into the
            // results (and, mirroring the forgotten guard, goes uncounted).
            wave.frames.push(frame);
            return Ok(());
        }
        wave.seen.push(key);
        *wave.counts.entry(from_shard).or_insert(0) += 1;
        wave.frames.push(frame);
        Ok(())
    }

    /// Records an unattributable failure (pre-handshake death, corrupt
    /// frame, protocol violation). Every wave fails: the stream's identity
    /// or framing itself is suspect. First failure wins.
    pub fn poison(&mut self, err: ExchangeError) {
        if self.is(Mutation::IgnorePoison) {
            return;
        }
        if self.dead.is_none() {
            self.dead = Some(err);
        }
    }

    fn violation(&mut self, err: ExchangeError) -> Result<(), ExchangeError> {
        self.poison(err.clone());
        Err(err)
    }

    /// Records the death of an identified peer shard. Waves that shard had
    /// already FINed stay satisfiable; waves still missing its FIN fail on
    /// their next [`poll`](ProtocolCore::poll). First death per shard wins.
    pub fn mark_shard_dead(&mut self, shard: u64, err: ExchangeError) {
        if !self.dead_shards.iter().any(|(s, _)| *s == shard) {
            self.dead_shards.push((shard, err));
        }
    }

    /// Discards all pending state for wave `seq` (the caller is abandoning
    /// it, e.g. on a wall-clock timeout) so nothing leaks.
    pub fn discard(&mut self, seq: u64) {
        self.waves.remove(&seq);
    }

    /// Whether a FIN from `shard` has been accepted for `seq`. Used by the
    /// model checker's clean-FIN invariant.
    pub fn has_fin(&self, seq: u64, shard: u64) -> bool {
        self.waves
            .get(&seq)
            .is_some_and(|w| w.fins.contains_key(&shard))
    }

    /// One completion check for wave `seq`, expecting FINs from `want_fins`
    /// distinct peers. Checked in priority order:
    ///
    /// 1. A poisoned core fails every wave.
    /// 2. All expected FINs present ⇒ the wave completes; its frames are
    ///    drained and returned.
    /// 3. A dead peer that never FINed this wave can never complete it ⇒
    ///    fail now rather than waiting out a timeout.
    /// 4. Otherwise the wave is still pending.
    ///
    /// On failure the wave's pending frames are discarded so the caller
    /// unwinds clean.
    pub fn poll(&mut self, seq: u64, want_fins: usize) -> PollOutcome {
        if let Some(err) = &self.dead {
            let err = err.clone();
            self.waves.remove(&seq);
            return PollOutcome::Failed(err);
        }
        let premature = self.is(Mutation::PrematureDeathMark);
        let fined = |w: &WaveInbox, s: u64| w.fins.contains_key(&s);
        if premature {
            // Mutant: the death check runs before the completion check, so
            // a peer that FINed and then died still fails the wave.
            if let Some((_, err)) = self.dead_shards.first() {
                let err = err.clone();
                self.waves.remove(&seq);
                return PollOutcome::Failed(err);
            }
        }
        let have = self.waves.get(&seq).map_or(0, |w| w.fins.len());
        if have >= want_fins {
            let frames = self
                .waves
                .remove(&seq)
                .map(|w| w.frames)
                .unwrap_or_default();
            return PollOutcome::Ready(frames);
        }
        let wave = self.waves.entry(seq).or_default();
        if let Some((_, err)) = self.dead_shards.iter().find(|(s, _)| !fined(wave, *s)) {
            let err = err.clone();
            self.waves.remove(&seq);
            return PollOutcome::Failed(err);
        }
        PollOutcome::Pending
    }

    /// Canonical byte serialization of the core's state (sorted, not
    /// iteration-order dependent) — the model checker hashes this for its
    /// visited-state set.
    pub fn digest(&self, out: &mut Vec<u8>) {
        out.push(match self.mutation {
            None => 0xff,
            Some(m) => m as u8,
        });
        out.push(u8::from(self.dead.is_some()));
        let mut deads: Vec<u64> = self.dead_shards.iter().map(|(s, _)| *s).collect();
        deads.sort_unstable();
        out.extend_from_slice(&(deads.len() as u64).to_le_bytes());
        for s in deads {
            out.extend_from_slice(&s.to_le_bytes());
        }
        let mut seqs: Vec<&u64> = self.waves.keys().collect();
        seqs.sort_unstable();
        out.extend_from_slice(&(seqs.len() as u64).to_le_bytes());
        for seq in seqs {
            let wave = &self.waves[seq];
            out.extend_from_slice(&seq.to_le_bytes());
            let mut keys = wave.seen.clone();
            keys.sort_unstable();
            out.extend_from_slice(&(keys.len() as u64).to_le_bytes());
            for (s, b) in keys {
                out.extend_from_slice(&s.to_le_bytes());
                out.extend_from_slice(&b.to_le_bytes());
            }
            // Frame multiset (duplicates matter: the AcceptDuplicate mutant
            // must produce a *distinct* state from the deduped one).
            let mut frames: Vec<(u64, u64, u64)> = wave
                .frames
                .iter()
                .map(|f| (f.src, f.bucket, f.records))
                .collect();
            frames.sort_unstable();
            out.extend_from_slice(&(frames.len() as u64).to_le_bytes());
            for (s, b, r) in frames {
                out.extend_from_slice(&s.to_le_bytes());
                out.extend_from_slice(&b.to_le_bytes());
                out.extend_from_slice(&r.to_le_bytes());
            }
            let mut fins: Vec<(u64, u64)> = wave.fins.iter().map(|(s, c)| (*s, *c)).collect();
            fins.sort_unstable();
            out.extend_from_slice(&(fins.len() as u64).to_le_bytes());
            for (s, c) in fins {
                out.extend_from_slice(&s.to_le_bytes());
                out.extend_from_slice(&c.to_le_bytes());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exchange::FIN_BUCKET;

    fn data(seq: u64, src: u64, bucket: u64) -> Frame {
        Frame {
            seq,
            src,
            bucket,
            records: 1,
            payload: vec![src as u8, bucket as u8],
        }
    }

    fn fin(seq: u64, shard: u64, sent: u64) -> Frame {
        Frame {
            seq,
            src: shard,
            bucket: FIN_BUCKET,
            records: sent,
            payload: Vec::new(),
        }
    }

    #[test]
    fn wave_completes_when_all_fins_arrive() {
        let mut core = ProtocolCore::new();
        core.deposit(1, data(7, 1, 0)).unwrap();
        assert!(matches!(core.poll(7, 1), PollOutcome::Pending));
        core.deposit(1, fin(7, 1, 1)).unwrap();
        match core.poll(7, 1) {
            PollOutcome::Ready(frames) => assert_eq!(frames.len(), 1),
            other => panic!("expected Ready, got {other:?}"),
        }
        // Drained: a second poll starts a fresh (empty) wave.
        assert!(matches!(core.poll(7, 1), PollOutcome::Pending));
    }

    #[test]
    fn zero_want_fins_is_immediately_ready() {
        let mut core = ProtocolCore::new();
        assert!(matches!(core.poll(3, 0), PollOutcome::Ready(f) if f.is_empty()));
    }

    #[test]
    fn fin_count_mismatch_poisons() {
        let mut core = ProtocolCore::new();
        core.deposit(1, data(7, 1, 0)).unwrap();
        // Declared 2, only 1 arrived: a frame was lost in transit.
        let err = core.deposit(1, fin(7, 1, 2)).unwrap_err();
        assert!(matches!(err, ExchangeError::Protocol { .. }), "{err}");
        assert!(matches!(core.poll(7, 1), PollOutcome::Failed(_)));
        // Poison is global: other waves fail too.
        assert!(matches!(core.poll(8, 1), PollOutcome::Failed(_)));
    }

    #[test]
    fn duplicate_frame_poisons() {
        let mut core = ProtocolCore::new();
        core.deposit(1, data(7, 1, 0)).unwrap();
        let err = core.deposit(1, data(7, 1, 0)).unwrap_err();
        assert!(matches!(err, ExchangeError::Protocol { .. }), "{err}");
        assert!(matches!(core.poll(7, 1), PollOutcome::Failed(_)));
    }

    #[test]
    fn duplicate_fin_poisons() {
        let mut core = ProtocolCore::new();
        core.deposit(1, fin(7, 1, 0)).unwrap();
        assert!(core.deposit(1, fin(7, 1, 0)).is_err());
    }

    #[test]
    fn dead_shard_fails_only_unfinned_waves() {
        let mut core = ProtocolCore::new();
        core.deposit(1, data(7, 1, 0)).unwrap();
        core.deposit(1, fin(7, 1, 1)).unwrap();
        core.mark_shard_dead(
            1,
            ExchangeError::PeerDied {
                peer: "shard 1".into(),
                detail: "test".into(),
            },
        );
        // Wave 7 was FINed by shard 1 before it died: still completes.
        assert!(matches!(core.poll(7, 1), PollOutcome::Ready(_)));
        // Wave 9 was not: fails typed instead of waiting out a timeout.
        assert!(matches!(core.poll(9, 1), PollOutcome::Failed(_)));
    }

    #[test]
    fn poison_beats_everything_and_first_wins() {
        let mut core = ProtocolCore::new();
        core.deposit(1, fin(7, 1, 0)).unwrap();
        core.poison(ExchangeError::Frame {
            detail: "first".into(),
        });
        core.poison(ExchangeError::Frame {
            detail: "second".into(),
        });
        match core.poll(7, 1) {
            PollOutcome::Failed(ExchangeError::Frame { detail }) => assert_eq!(detail, "first"),
            other => panic!("expected first poison, got {other:?}"),
        }
    }

    #[test]
    fn mutations_disable_exactly_their_guard() {
        // DropFin: the wave never completes.
        let mut core = ProtocolCore::new();
        core.set_mutation(Some(Mutation::DropFin));
        core.deposit(1, fin(7, 1, 0)).unwrap();
        assert!(matches!(core.poll(7, 1), PollOutcome::Pending));

        // AcceptDuplicate: the duplicate lands in the results.
        let mut core = ProtocolCore::new();
        core.set_mutation(Some(Mutation::AcceptDuplicate));
        core.deposit(1, data(7, 1, 0)).unwrap();
        core.deposit(1, data(7, 1, 0)).unwrap();
        core.deposit(1, fin(7, 1, 1)).unwrap();
        match core.poll(7, 1) {
            PollOutcome::Ready(frames) => assert_eq!(frames.len(), 2),
            other => panic!("expected duplicated Ready, got {other:?}"),
        }

        // IgnoreFinCount: a lost frame goes unnoticed.
        let mut core = ProtocolCore::new();
        core.set_mutation(Some(Mutation::IgnoreFinCount));
        core.deposit(1, fin(7, 1, 5)).unwrap();
        assert!(matches!(core.poll(7, 1), PollOutcome::Ready(f) if f.is_empty()));

        // PrematureDeathMark: death beats a delivered FIN.
        let mut core = ProtocolCore::new();
        core.set_mutation(Some(Mutation::PrematureDeathMark));
        core.deposit(1, fin(7, 1, 0)).unwrap();
        core.mark_shard_dead(
            1,
            ExchangeError::PeerDied {
                peer: "shard 1".into(),
                detail: "test".into(),
            },
        );
        assert!(matches!(core.poll(7, 1), PollOutcome::Failed(_)));

        // IgnorePoison: corruption is swallowed.
        let mut core = ProtocolCore::new();
        core.set_mutation(Some(Mutation::IgnorePoison));
        core.poison(ExchangeError::Frame {
            detail: "corrupt".into(),
        });
        core.deposit(1, fin(7, 1, 0)).unwrap();
        assert!(matches!(core.poll(7, 1), PollOutcome::Ready(_)));
    }

    #[test]
    fn digest_is_canonical() {
        let mut a = ProtocolCore::new();
        let mut b = ProtocolCore::new();
        // Same logical state reached in different orders.
        a.deposit(1, data(7, 1, 0)).unwrap();
        a.deposit(2, data(7, 2, 1)).unwrap();
        b.deposit(2, data(7, 2, 1)).unwrap();
        b.deposit(1, data(7, 1, 0)).unwrap();
        let (mut da, mut db) = (Vec::new(), Vec::new());
        a.digest(&mut da);
        b.digest(&mut db);
        assert_eq!(da, db);
        // A different state digests differently.
        b.deposit(1, fin(7, 1, 1)).unwrap();
        db.clear();
        b.digest(&mut db);
        assert_ne!(da, db);
    }
}
