//! # tgraph-dataflow
//!
//! A shared-memory, partitioned **dataflow engine** providing the
//! second-order operators the paper's zoom algorithms are expressed in —
//! `map`, `flatMap`, `filter`, `groupBy`, `reduceByKey`, `join`, `semijoin` —
//! executed in parallel over a worker thread pool.
//!
//! This crate is the substitute for Apache Spark in the reproduction (see
//! `DESIGN.md`): datasets are immutable partitioned collections
//! ([`Dataset`]), narrow transformations run one task per partition without
//! moving data, and wide (keyed) transformations perform a real hash shuffle
//! between partitions. The engine therefore preserves the data-movement
//! asymmetries between the TGraph physical representations that the paper's
//! experiments measure.
//!
//! ```
//! use tgraph_dataflow::{Dataset, KeyedDataset, Runtime};
//!
//! let rt = Runtime::new(4);
//! let words = Dataset::from_vec(&rt, vec!["a", "b", "a", "c", "b", "a"]);
//! let counts = words
//!     .map(&rt, |w| (*w, 1u64))
//!     .reduce_by_key(&rt, |x, y| x + y);
//! let mut result = counts.collect();
//! result.sort();
//! assert_eq!(result, vec![("a", 3), ("b", 2), ("c", 1)]);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod dataset;
pub mod extra;
pub mod keyed;
pub mod pool;
pub mod runtime;

pub use dataset::Dataset;
pub use extra::{broadcast_join, broadcast_semi_join, cogroup, count_by_key, take};
pub use keyed::{distinct, shuffle, KeyedDataset};
pub use runtime::{Runtime, RuntimeStats};
