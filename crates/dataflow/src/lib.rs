//! # tgraph-dataflow
//!
//! A shared-memory, partitioned **dataflow engine** providing the
//! second-order operators the paper's zoom algorithms are expressed in —
//! `map`, `flatMap`, `filter`, `groupBy`, `reduceByKey`, `join`, `semijoin` —
//! executed in parallel over a worker thread pool.
//!
//! This crate is the substitute for Apache Spark in the reproduction (see
//! `DESIGN.md`): datasets are immutable partitioned collections
//! ([`Dataset`]) executed under a **lazy, plan-based model**:
//!
//! * **Narrow transformations are deferred and fused.** `map`, `filter`,
//!   `flat_map`, `map_partitions`, and
//!   [`map_values`](KeyedDataset::map_values) run nothing; they extend a
//!   per-partition closure chain. The chain executes as a *single* pass per
//!   partition — one task wave, no intermediate partition allocations — when
//!   an action (`collect`, `count`, `fold`) or a shuffle boundary forces it.
//!   Elements flow through the fused chain by reference and are cloned only
//!   at the materialization boundary.
//! * **Wide (keyed) transformations are the fusion boundaries.** They
//!   perform a real hash shuffle with per-partition bucket exchange, whose
//!   map side fuses with the pending narrow chain. The engine therefore
//!   preserves the data-movement asymmetries between the TGraph physical
//!   representations that the paper's experiments measure.
//! * **Shuffles are elided when provably redundant.** Shuffle outputs carry
//!   a [`Partitioning::HashByKey`] tag; tag-preserving operators (`filter`,
//!   `map_values`) keep it, and a keyed operator whose input already has the
//!   required tag skips its shuffle entirely — zero records moved.
//!
//! [`Runtime::stats`] exposes the executor accounting that makes all of this
//! observable: task waves launched, shuffle rounds executed and elided, and
//! records/approximate bytes moved.
//!
//! ```
//! use tgraph_dataflow::{Dataset, KeyedDataset, Runtime};
//!
//! let rt = Runtime::new(4);
//! let words = Dataset::from_vec(&rt, vec!["a", "b", "a", "c", "b", "a"]);
//! // Narrow ops build a deferred plan; reduce_by_key forces it in one pass.
//! let counts = words
//!     .map(|w| (*w, 1u64))
//!     .reduce_by_key(&rt, |x, y| x + y);
//! let mut result = counts.collect(&rt);
//! result.sort();
//! assert_eq!(result, vec![("a", 3), ("b", 2), ("c", 1)]);
//!
//! // A second reduce on the same key needs no shuffle: the output of the
//! // first is already hash-partitioned by key.
//! let before = rt.stats();
//! let _ = counts.reduce_by_key(&rt, |x, y| x + y).collect(&rt);
//! let delta = rt.stats().since(&before);
//! assert_eq!(delta.shuffles, 0);
//! assert_eq!(delta.shuffles_elided, 1);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
// Dataflow operator signatures nest tuples and Arcs deeply by design.
#![allow(clippy::type_complexity)]

pub mod cancel;
pub mod dataset;
pub mod decompose;
pub mod exchange;
pub mod extra;
pub mod governor;
pub mod keyed;
pub mod lineage;
pub mod pool;
pub mod protocol;
pub mod runtime;
pub mod spill;
mod steal;
pub mod sync;

pub use cancel::{CancelToken, Cancelled};
pub use dataset::{Dataset, Partitioning};
pub use decompose::{merge_states, Decomposable};
pub use exchange::{
    Exchange, ExchangeCounters, ExchangeError, Frame, InProcessExchange, ShardLayout, TcpExchange,
};
pub use extra::{broadcast_join, broadcast_semi_join, cogroup, count_by_key, take};
pub use governor::{MemCharge, MemGovernor};
pub use keyed::{bucket_of, distinct, shuffle, KeyedDataset};
pub use lineage::{fingerprint, fingerprint_hex, OpKind, PlanNode};
pub use protocol::{Mutation, PollOutcome, ProtocolCore};
pub use runtime::{Runtime, RuntimeStats, StatsSnapshot};
pub use spill::{charged_size, checksum, HeapSize, Spill, SpillError, SpillReader};
pub use sync::lock_unpoisoned;
