//! The pluggable exchange layer: how shuffle buckets and gathered
//! partitions move between participants of a wave.
//!
//! Every wide operator and every gather routes data through the runtime's
//! installed [`Exchange`]. Two implementations ship:
//!
//! * [`InProcessExchange`] — the single-process default. In its normal mode
//!   the shuffle path bypasses frames entirely and runs the same typed,
//!   governed exchange as before this layer existed (byte-for-byte: elision,
//!   morsel stealing, spill, and cancellation are untouched). In *framed*
//!   mode (`TGRAPH_EXCHANGE=framed`) every bucket is encoded into a wire
//!   [`Frame`], routed through the loopback, and decoded back — the frame
//!   codec and merge path are exercised by the whole test suite without a
//!   network.
//! * [`TcpExchange`] — the multi-node exchange. N shards each own a
//!   contiguous range of the global partition space ([`ShardLayout`]);
//!   shuffle buckets travel peer-to-peer over length-prefixed, checksummed
//!   frames whose payloads use the [`Spill`](crate::Spill) codec (the PR 5
//!   run-file format) as the wire format.
//!
//! # Wire format
//!
//! One frame is a 52-byte little-endian header followed by the payload:
//!
//! ```text
//! magic "TGXF" (u32) | seq u64 | src u64 | bucket u64 | records u64
//!                    | payload_len u64 | checksum u64 | payload bytes
//! ```
//!
//! `seq` namespaces concurrent exchange operations (one per shuffle or
//! gather), `src` is the global map-partition index the payload came from,
//! `bucket` the global destination partition. The checksum is
//! [`checksum`](crate::checksum) over the payload — the same multiply-add
//! fold guarding spill runs and `.tgc` chunks. A frame with
//! `bucket == u64::MAX` is a FIN sentinel: "sender `src` has no more frames
//! for `seq`". Connections open with a one-shot handshake
//! (`"TGXH" | version | shards | shard`) so a mis-wired peer is rejected
//! before any data frame is interpreted.
//!
//! # Failure model
//!
//! Exchange failures are **typed, never silent**: codec violations
//! (truncation, oversized length prefixes, checksum mismatches) surface as
//! [`ExchangeError::Frame`], a peer that dies mid-wave as
//! [`ExchangeError::PeerDied`], and a peer that hangs as
//! [`ExchangeError::Timeout`] after a bounded, env-tunable wait
//! (`TGRAPH_EXCHANGE_TIMEOUT_MS`, default 10 s). The wave then aborts with
//! the error as a typed panic payload — the same discipline as
//! [`SpillError`](crate::SpillError) — and sibling state (pending inbox
//! frames, outbound connections) is drained by RAII.

use crate::protocol::{PollOutcome, ProtocolCore};
use crate::spill::{checksum, SpillError, SpillReader};
use crate::sync::lock_unpoisoned;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Frame header magic: `"TGXF"` little-endian.
pub const FRAME_MAGIC: u32 = u32::from_le_bytes(*b"TGXF");
/// Handshake magic: `"TGXH"` little-endian.
pub const HANDSHAKE_MAGIC: u32 = u32::from_le_bytes(*b"TGXH");
/// Exchange protocol version spoken by this build. Version 2 added counted
/// FIN sentinels: a FIN's `records` field declares how many data frames its
/// sender shipped for the sequence, so lost frames are detected at FIN time
/// instead of silently shortening a wave (see [`crate::protocol`]).
pub const PROTOCOL_VERSION: u64 = 2;
/// `bucket` value marking a FIN sentinel frame.
pub const FIN_BUCKET: u64 = u64::MAX;
/// Upper bound on a single frame's payload; length prefixes beyond this are
/// rejected as corrupt before any allocation happens.
pub const MAX_FRAME_PAYLOAD: u64 = 1 << 30;

/// Frame header size on the wire (magic + six u64 fields).
/// Encoded frame header size: magic plus six u64 words.
pub const HEADER_BYTES: usize = 4 + 6 * 8;

/// Why an exchange operation failed. Raised as a typed panic payload by the
/// shuffle/gather paths (mirroring [`SpillError`](crate::SpillError)), so
/// `catch_unwind` callers can downcast and report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExchangeError {
    /// A frame failed to decode: bad magic, truncation, an oversized length
    /// prefix, a checksum mismatch, or a payload that does not decode back
    /// into records.
    Frame {
        /// What was wrong with the frame.
        detail: String,
    },
    /// A socket operation failed.
    Io {
        /// Which operation failed (`connect`, `write`, `read`, …).
        op: &'static str,
        /// The peer involved.
        peer: String,
        /// The underlying error, stringified.
        error: String,
    },
    /// A peer closed its connection (or was never reachable) while frames
    /// were still owed.
    PeerDied {
        /// The peer that died.
        peer: String,
        /// What was observed.
        detail: String,
    },
    /// A bounded wait for peer frames expired.
    Timeout {
        /// Which operation timed out.
        op: &'static str,
        /// The configured bound, in milliseconds.
        ms: u64,
    },
    /// A peer spoke the wrong protocol (bad handshake, wrong topology).
    Protocol {
        /// The peer involved.
        peer: String,
        /// What disagreed.
        detail: String,
    },
}

impl std::fmt::Display for ExchangeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExchangeError::Frame { detail } => write!(f, "exchange frame corrupt: {detail}"),
            ExchangeError::Io { op, peer, error } => {
                write!(f, "exchange {op} failed on peer {peer}: {error}")
            }
            ExchangeError::PeerDied { peer, detail } => {
                write!(f, "exchange peer {peer} died: {detail}")
            }
            ExchangeError::Timeout { op, ms } => {
                write!(f, "exchange {op} timed out after {ms} ms")
            }
            ExchangeError::Protocol { peer, detail } => {
                write!(f, "exchange protocol violation from peer {peer}: {detail}")
            }
        }
    }
}

impl std::error::Error for ExchangeError {}

fn frame_err(detail: impl Into<String>) -> ExchangeError {
    ExchangeError::Frame {
        detail: detail.into(),
    }
}

/// Which contiguous range of the global partition space this participant
/// owns. The single-process layout is `shard 0 of 1`, which owns everything.
///
/// Ranges follow the standard balanced split: shard `s` of `n` owns global
/// indices `[s·t/n, (s+1)·t/n)` over `t` total partitions (integer
/// division), so every index has exactly one owner and range sizes differ by
/// at most one.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardLayout {
    shard: usize,
    shards: usize,
}

impl ShardLayout {
    /// The single-process layout: one shard owning every partition.
    pub fn single() -> Self {
        ShardLayout {
            shard: 0,
            shards: 1,
        }
    }

    /// Layout for shard `shard` of `shards` total.
    ///
    /// # Panics
    /// If `shard >= shards` or `shards == 0`.
    pub fn new(shard: usize, shards: usize) -> Self {
        assert!(shards > 0, "shard layout needs at least one shard");
        assert!(
            shard < shards,
            "shard index {shard} out of range 0..{shards}"
        );
        ShardLayout { shard, shards }
    }

    /// This participant's shard index.
    pub fn shard(&self) -> usize {
        self.shard
    }

    /// Total number of shards.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Whether more than one shard participates.
    pub fn is_sharded(&self) -> bool {
        self.shards > 1
    }

    /// First global index owned by this shard, of `total` partitions.
    pub fn lo(&self, total: usize) -> usize {
        self.shard * total / self.shards
    }

    /// One past the last global index owned by this shard.
    pub fn hi(&self, total: usize) -> usize {
        (self.shard + 1) * total / self.shards
    }

    /// Whether this shard owns global index `idx` of `total`.
    pub fn owns(&self, idx: usize, total: usize) -> bool {
        self.lo(total) <= idx && idx < self.hi(total)
    }

    /// The shard owning global index `idx` of `total` partitions — the
    /// unique `s` with `s·t/n ≤ idx < (s+1)·t/n`.
    pub fn owner_of(&self, idx: usize, total: usize) -> usize {
        debug_assert!(idx < total, "index {idx} out of range 0..{total}");
        ((idx + 1) * self.shards - 1) / total
    }

    /// Per-index ownership mask over `total` partitions.
    pub fn range_mask(&self, total: usize) -> Vec<bool> {
        let (lo, hi) = (self.lo(total), self.hi(total));
        (0..total).map(|i| lo <= i && i < hi).collect()
    }
}

/// One unit of exchanged data: an encoded record batch from global map
/// partition `src`, destined for global partition `bucket`, within exchange
/// operation `seq`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Frame {
    /// Exchange-operation sequence number (one per shuffle or gather).
    pub seq: u64,
    /// Global source partition index.
    pub src: u64,
    /// Global destination partition index (or [`FIN_BUCKET`]).
    pub bucket: u64,
    /// Number of records encoded in the payload.
    pub records: u64,
    /// Record batch encoded with the [`Spill`](crate::Spill) codec.
    pub payload: Vec<u8>,
}

impl Frame {
    /// Whether this frame is a FIN sentinel.
    pub fn is_fin(&self) -> bool {
        self.bucket == FIN_BUCKET
    }

    /// A FIN sentinel for `seq` from shard `shard`, declaring the number of
    /// data frames the shard sent for the sequence (carried in `records`,
    /// validated by the receiver's [`ProtocolCore`]).
    pub fn fin(seq: u64, shard: u64, sent: u64) -> Frame {
        Frame {
            seq,
            src: shard,
            bucket: FIN_BUCKET,
            records: sent,
            payload: Vec::new(),
        }
    }
}

/// Appends the wire encoding of `frame` to `out`.
pub fn encode_frame(frame: &Frame, out: &mut Vec<u8>) {
    out.extend_from_slice(&FRAME_MAGIC.to_le_bytes());
    out.extend_from_slice(&frame.seq.to_le_bytes());
    out.extend_from_slice(&frame.src.to_le_bytes());
    out.extend_from_slice(&frame.bucket.to_le_bytes());
    out.extend_from_slice(&frame.records.to_le_bytes());
    out.extend_from_slice(&(frame.payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&checksum(&frame.payload).to_le_bytes());
    out.extend_from_slice(&frame.payload);
}

/// Decodes one frame from the start of `buf`, returning it and the bytes
/// consumed. Fails typed — never panics — on truncation, bad magic,
/// oversized length prefixes, or checksum mismatch.
pub fn decode_frame(buf: &[u8]) -> Result<(Frame, usize), ExchangeError> {
    if buf.len() < HEADER_BYTES {
        return Err(frame_err(format!(
            "truncated header: {} of {HEADER_BYTES} bytes",
            buf.len()
        )));
    }
    let mut r = SpillReader::new(&buf[..HEADER_BYTES]);
    let magic = r.u32().map_err(spill_to_frame)?;
    if magic != FRAME_MAGIC {
        return Err(frame_err(format!("bad frame magic {magic:#x}")));
    }
    let seq = r.u64().map_err(spill_to_frame)?;
    let src = r.u64().map_err(spill_to_frame)?;
    let bucket = r.u64().map_err(spill_to_frame)?;
    let records = r.u64().map_err(spill_to_frame)?;
    let len = r.u64().map_err(spill_to_frame)?;
    let sum = r.u64().map_err(spill_to_frame)?;
    if len > MAX_FRAME_PAYLOAD {
        return Err(frame_err(format!(
            "payload length {len} exceeds cap {MAX_FRAME_PAYLOAD}"
        )));
    }
    let len = len as usize;
    let rest = &buf[HEADER_BYTES..];
    if rest.len() < len {
        return Err(frame_err(format!(
            "truncated payload: {} of {len} bytes",
            rest.len()
        )));
    }
    let payload = &rest[..len];
    let actual = checksum(payload);
    if actual != sum {
        return Err(frame_err(format!(
            "checksum mismatch: stored {sum:#x}, computed {actual:#x}"
        )));
    }
    Ok((
        Frame {
            seq,
            src,
            bucket,
            records,
            payload: payload.to_vec(),
        },
        HEADER_BYTES + len,
    ))
}

fn spill_to_frame(e: SpillError) -> ExchangeError {
    frame_err(e.to_string())
}

/// Reads one frame from a stream. `Ok(None)` means a clean EOF at a frame
/// boundary; EOF mid-frame is a typed [`ExchangeError::Frame`].
pub fn read_frame(r: &mut impl Read) -> Result<Option<Frame>, std::io::Error> {
    use std::io::ErrorKind;
    let mut header = [0u8; HEADER_BYTES];
    let mut got = 0usize;
    while got < HEADER_BYTES {
        match r.read(&mut header[got..]) {
            Ok(0) if got == 0 => return Ok(None),
            Ok(0) => {
                return Err(std::io::Error::new(
                    ErrorKind::UnexpectedEof,
                    format!("EOF inside frame header ({got} of {HEADER_BYTES} bytes)"),
                ))
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            // A read-timeout poll tick before any frame byte arrived is the
            // caller's signal to check shutdown; but once we hold partial
            // frame bytes we are committed — dropping them would desync the
            // stream, so keep reading through the stall.
            Err(e)
                if got > 0 && matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {}
            Err(e) => return Err(e),
        }
    }
    let mut hr = SpillReader::new(&header);
    let to_io = |e: SpillError| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string());
    let magic = hr.u32().map_err(to_io)?;
    if magic != FRAME_MAGIC {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("bad frame magic {magic:#x}"),
        ));
    }
    let seq = hr.u64().map_err(to_io)?;
    let src = hr.u64().map_err(to_io)?;
    let bucket = hr.u64().map_err(to_io)?;
    let records = hr.u64().map_err(to_io)?;
    let len = hr.u64().map_err(to_io)?;
    let sum = hr.u64().map_err(to_io)?;
    if len > MAX_FRAME_PAYLOAD {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("payload length {len} exceeds cap {MAX_FRAME_PAYLOAD}"),
        ));
    }
    let mut payload = vec![0u8; len as usize];
    let mut got = 0usize;
    while got < payload.len() {
        match r.read(&mut payload[got..]) {
            Ok(0) => {
                return Err(std::io::Error::new(
                    ErrorKind::UnexpectedEof,
                    format!("EOF inside frame payload ({got} of {len} bytes)"),
                ))
            }
            Ok(n) => got += n,
            // Mid-frame: ride out poll ticks, same as the header loop above.
            Err(e)
                if matches!(
                    e.kind(),
                    ErrorKind::Interrupted | ErrorKind::WouldBlock | ErrorKind::TimedOut
                ) => {}
            Err(e) => return Err(e),
        }
    }
    let actual = checksum(&payload);
    if actual != sum {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("checksum mismatch: stored {sum:#x}, computed {actual:#x}"),
        ));
    }
    Ok(Some(Frame {
        seq,
        src,
        bucket,
        records,
        payload,
    }))
}

/// Monotonic exchange counters, shared between the runtime's stats and the
/// installed exchange. Loopback routing counts too (in framed mode), so the
/// codec path is observable even single-process.
#[derive(Debug, Default)]
pub struct ExchangeCounters {
    /// Payload bytes that crossed the exchange (sent side).
    pub bytes_exchanged: AtomicU64,
    /// Data frames handed to the exchange for routing.
    pub frames_sent: AtomicU64,
    /// Data frames delivered by the exchange (own frames included).
    pub frames_received: AtomicU64,
    /// Waits that actually blocked on remote frames.
    pub exchange_stalls: AtomicU64,
}

impl ExchangeCounters {
    fn note_sent(&self, frames: u64, bytes: u64) {
        self.frames_sent.fetch_add(frames, Ordering::Relaxed);
        self.bytes_exchanged.fetch_add(bytes, Ordering::Relaxed);
    }

    fn note_received(&self, frames: u64) {
        self.frames_received.fetch_add(frames, Ordering::Relaxed);
    }

    fn note_stall(&self) {
        self.exchange_stalls.fetch_add(1, Ordering::Relaxed);
    }
}

/// The routing abstraction every wide operator and gather goes through.
///
/// Implementations operate on encoded [`Frame`]s so the trait stays
/// object-safe; the typed fast path is preserved by [`Exchange::in_process`]
/// — when it returns `true`, the shuffle path skips frames entirely and runs
/// the pre-exchange-layer governed path, byte-for-byte.
pub trait Exchange: Send + Sync {
    /// This participant's slice of the global partition space.
    fn layout(&self) -> ShardLayout;

    /// `true` when shuffles may bypass the frame codec (single-process,
    /// unframed). The loopback in framed mode and every networked exchange
    /// return `false`.
    fn in_process(&self) -> bool;

    /// Routes shuffle frames: each data frame travels to the owner of its
    /// `bucket` (of `total_buckets` global buckets). Returns every frame
    /// destined for locally-owned buckets — own contributions and peers'.
    fn route(
        &self,
        seq: u64,
        frames: Vec<Frame>,
        total_buckets: usize,
    ) -> Result<Vec<Frame>, ExchangeError>;

    /// All-gather: broadcasts `frames` to every shard and returns the union
    /// of all shards' contributions (own frames included).
    fn gather(&self, seq: u64, frames: Vec<Frame>) -> Result<Vec<Frame>, ExchangeError>;
}

/// The single-process exchange. Routing is the identity; in framed mode the
/// shuffle path still encodes and decodes every bucket through the wire
/// codec, which is what makes the `exchange-smoke` CI job meaningful.
pub struct InProcessExchange {
    framed: bool,
    counters: Arc<ExchangeCounters>,
}

impl InProcessExchange {
    /// An in-process exchange; `framed` forces the frame codec onto the
    /// loopback path.
    pub fn new(framed: bool, counters: Arc<ExchangeCounters>) -> Self {
        InProcessExchange { framed, counters }
    }
}

impl Exchange for InProcessExchange {
    fn layout(&self) -> ShardLayout {
        ShardLayout::single()
    }

    fn in_process(&self) -> bool {
        !self.framed
    }

    fn route(
        &self,
        _seq: u64,
        frames: Vec<Frame>,
        _total_buckets: usize,
    ) -> Result<Vec<Frame>, ExchangeError> {
        let bytes: u64 = frames.iter().map(|f| f.payload.len() as u64).sum();
        self.counters.note_sent(frames.len() as u64, bytes);
        self.counters.note_received(frames.len() as u64);
        Ok(frames)
    }

    fn gather(&self, _seq: u64, frames: Vec<Frame>) -> Result<Vec<Frame>, ExchangeError> {
        let bytes: u64 = frames.iter().map(|f| f.payload.len() as u64).sum();
        self.counters.note_sent(frames.len() as u64, bytes);
        self.counters.note_received(frames.len() as u64);
        Ok(frames)
    }
}

/// Reads `TGRAPH_EXCHANGE`: `framed` forces the loopback frame path;
/// anything else (or unset) keeps the typed in-process fast path.
pub fn framed_from_env() -> bool {
    matches!(
        std::env::var("TGRAPH_EXCHANGE").as_deref(),
        Ok("framed") | Ok("FRAMED")
    )
}

/// Reads `TGRAPH_EXCHANGE_TIMEOUT_MS` (default 10 000, floor 1).
pub fn timeout_from_env() -> Duration {
    let ms = std::env::var("TGRAPH_EXCHANGE_TIMEOUT_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .map_or(10_000, |n| n.max(1));
    Duration::from_millis(ms)
}

/// Shared mailbox the acceptor's reader threads deposit inbound frames
/// into, keyed by exchange sequence number. All protocol decisions —
/// dedup, FIN counting, death-vs-FIN precedence, poison — live in the pure
/// [`ProtocolCore`] (model-checked by `tgraph-analyze`); this wrapper only
/// adds the lock, the condvar discipline, and the wall-clock timeout.
struct Inbox {
    state: Mutex<ProtocolCore>,
    cond: Condvar,
}

impl Inbox {
    fn new() -> Arc<Self> {
        Arc::new(Inbox {
            state: Mutex::new(ProtocolCore::new()),
            cond: Condvar::new(),
        })
    }

    /// Deposits a frame read off peer shard `from_shard`'s connection. A
    /// detected protocol violation (duplicate frame, FIN count mismatch)
    /// has already poisoned the core; waiters observe it on wakeup.
    fn push(&self, from_shard: u64, frame: Frame) {
        let mut st = lock_unpoisoned(&self.state);
        let _ = st.deposit(from_shard, frame);
        self.cond.notify_all();
    }

    fn fail(&self, err: ExchangeError) {
        let mut st = lock_unpoisoned(&self.state);
        st.poison(err);
        self.cond.notify_all();
    }

    /// Records the death of an identified peer shard. Waits that shard had
    /// already FINed stay satisfiable; waits still missing its FIN fail.
    fn fail_shard(&self, shard: u64, err: ExchangeError) {
        let mut st = lock_unpoisoned(&self.state);
        st.mark_shard_dead(shard, err);
        self.cond.notify_all();
    }

    /// Blocks until `want_fins` FIN sentinels arrived for `seq`, then drains
    /// and returns its data frames. On peer death or timeout the pending
    /// frames for `seq` are discarded (drained RAII-clean) and the typed
    /// error is returned.
    fn await_seq(
        &self,
        seq: u64,
        want_fins: usize,
        timeout: Duration,
        counters: &ExchangeCounters,
    ) -> Result<Vec<Frame>, ExchangeError> {
        let deadline = Instant::now() + timeout;
        let mut st = lock_unpoisoned(&self.state);
        let mut stalled = false;
        loop {
            match st.poll(seq, want_fins) {
                PollOutcome::Ready(frames) => {
                    counters.note_received(frames.len() as u64);
                    return Ok(frames);
                }
                PollOutcome::Failed(err) => return Err(err),
                PollOutcome::Pending => {}
            }
            let now = Instant::now();
            if now >= deadline {
                // Discard the wave's pending frames before unwinding.
                st.discard(seq);
                return Err(ExchangeError::Timeout {
                    op: "await frames",
                    ms: timeout.as_millis() as u64,
                });
            }
            if !stalled {
                stalled = true;
                counters.note_stall();
            }
            let (guard, _) = self
                .cond
                .wait_timeout(st, deadline - now)
                .unwrap_or_else(|e| e.into_inner());
            st = guard;
        }
    }
}

/// One outbound peer link: lazily connected, handshake sent on connect.
struct PeerLink {
    addr: String,
    stream: Mutex<Option<TcpStream>>,
}

/// The multi-node exchange: a listener accepting inbound peer connections
/// (one reader thread per peer) and lazy persistent outbound connections,
/// with bounded connect/read waits.
pub struct TcpExchange {
    layout: ShardLayout,
    counters: Arc<ExchangeCounters>,
    timeout: Duration,
    inbox: Arc<Inbox>,
    peers: Vec<PeerLink>,
    local_addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    acceptor: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl TcpExchange {
    /// Binds an exchange listener (use `"127.0.0.1:0"` for an ephemeral
    /// port) and returns it with its resolved address.
    pub fn bind(addr: &str) -> std::io::Result<(TcpListener, SocketAddr)> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        Ok((listener, local))
    }

    /// Starts the exchange on a bound listener. `peer_addrs` lists every
    /// shard's exchange address in shard order (this shard's own entry is
    /// ignored). Counters are shared with the owning runtime's stats.
    pub fn start(
        listener: TcpListener,
        layout: ShardLayout,
        peer_addrs: Vec<String>,
        counters: Arc<ExchangeCounters>,
        timeout: Duration,
    ) -> std::io::Result<Arc<TcpExchange>> {
        assert_eq!(
            peer_addrs.len(),
            layout.shards(),
            "need one exchange address per shard"
        );
        let local_addr = listener.local_addr()?;
        let inbox = Inbox::new();
        let shutdown = Arc::new(AtomicBool::new(false));
        let acceptor = {
            let inbox = Arc::clone(&inbox);
            let shutdown = Arc::clone(&shutdown);
            let layout_c = layout;
            let counters_c = Arc::clone(&counters);
            let read_poll = timeout.min(Duration::from_millis(500));
            std::thread::Builder::new()
                .name(format!("tgx-accept-{}", layout.shard()))
                .spawn(move || {
                    accept_loop(listener, layout_c, inbox, shutdown, counters_c, read_poll)
                })?
        };
        Ok(Arc::new(TcpExchange {
            layout,
            counters,
            timeout,
            inbox,
            peers: peer_addrs
                .into_iter()
                .map(|addr| PeerLink {
                    addr,
                    stream: Mutex::new(None),
                })
                .collect(),
            local_addr,
            shutdown,
            acceptor: Mutex::new(Some(acceptor)),
        }))
    }

    /// The address the exchange listener is bound to.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Sends pre-encoded frame bytes to shard `to`, connecting (with
    /// handshake, retrying until the bounded deadline) on first use.
    fn send_to(&self, to: usize, bytes: &[u8]) -> Result<(), ExchangeError> {
        let link = &self.peers[to];
        let mut slot = lock_unpoisoned(&link.stream);
        if slot.is_none() {
            *slot = Some(self.connect(link)?);
        }
        // Slot was just filled above if empty.
        // lint:allow(expect): guarded by the fill right before
        let stream = slot.as_mut().expect("outbound stream present");
        if let Err(e) = stream.write_all(bytes).and_then(|()| stream.flush()) {
            *slot = None; // poisoned link: reconnect on the next wave
            return Err(peer_io_err("write", &link.addr, e));
        }
        Ok(())
    }

    /// Connects to a peer with retries until the timeout elapses (peers boot
    /// in arbitrary order), then sends the handshake.
    fn connect(&self, link: &PeerLink) -> Result<TcpStream, ExchangeError> {
        let deadline = Instant::now() + self.timeout;
        let addrs: Vec<SocketAddr> = link
            .addr
            .parse::<SocketAddr>()
            .map(|a| vec![a])
            .or_else(|_| {
                use std::net::ToSocketAddrs;
                link.addr.to_socket_addrs().map(|it| it.collect())
            })
            .map_err(|e| peer_io_err("resolve", &link.addr, e))?;
        let Some(addr) = addrs.first().copied() else {
            return Err(ExchangeError::Io {
                op: "resolve",
                peer: link.addr.clone(),
                error: "no addresses".into(),
            });
        };
        loop {
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return Err(ExchangeError::Timeout {
                    op: "connect",
                    ms: self.timeout.as_millis() as u64,
                });
            }
            match TcpStream::connect_timeout(&addr, remaining.min(Duration::from_millis(250))) {
                Ok(mut stream) => {
                    stream.set_nodelay(true).ok();
                    let mut hello = Vec::with_capacity(28);
                    hello.extend_from_slice(&HANDSHAKE_MAGIC.to_le_bytes());
                    hello.extend_from_slice(&PROTOCOL_VERSION.to_le_bytes());
                    hello.extend_from_slice(&(self.layout.shards() as u64).to_le_bytes());
                    hello.extend_from_slice(&(self.layout.shard() as u64).to_le_bytes());
                    stream
                        .write_all(&hello)
                        .map_err(|e| peer_io_err("handshake", &link.addr, e))?;
                    return Ok(stream);
                }
                Err(_) if Instant::now() < deadline => {
                    std::thread::sleep(Duration::from_millis(20));
                }
                Err(e) => return Err(peer_io_err("connect", &link.addr, e)),
            }
        }
    }

    /// Encodes and ships `frames` according to `dest(frame) -> shard`,
    /// keeping own frames local, then awaits FINs from every peer.
    fn ship(
        &self,
        seq: u64,
        frames: Vec<Frame>,
        dests: impl Fn(&Frame) -> Dest,
    ) -> Result<Vec<Frame>, ExchangeError> {
        let me = self.layout.shard();
        let n = self.layout.shards();
        let mut outgoing: Vec<Vec<u8>> = (0..n).map(|_| Vec::new()).collect();
        let mut sent_counts = vec![0u64; n];
        let mut local = Vec::new();
        let mut sent_frames = 0u64;
        let mut sent_bytes = 0u64;
        for f in frames {
            match dests(&f) {
                Dest::One(owner) if owner == me => local.push(f),
                Dest::One(owner) => {
                    sent_frames += 1;
                    sent_bytes += f.payload.len() as u64;
                    sent_counts[owner] += 1;
                    encode_frame(&f, &mut outgoing[owner]);
                }
                Dest::Broadcast => {
                    sent_frames += (n - 1) as u64;
                    sent_bytes += f.payload.len() as u64 * (n - 1) as u64;
                    for (s, buf) in outgoing.iter_mut().enumerate() {
                        if s != me {
                            sent_counts[s] += 1;
                            encode_frame(&f, buf);
                        }
                    }
                    local.push(f);
                }
            }
        }
        self.counters.note_sent(sent_frames, sent_bytes);
        // Each peer gets its own FIN declaring exactly how many data frames
        // it was sent, so the receiving ProtocolCore can prove none were
        // lost in transit before completing the wave.
        for (s, buf) in outgoing.iter_mut().enumerate() {
            if s == me {
                continue;
            }
            encode_frame(&Frame::fin(seq, me as u64, sent_counts[s]), buf);
            self.send_to(s, buf)?;
        }
        self.counters.note_received(local.len() as u64);
        let remote = self
            .inbox
            .await_seq(seq, n - 1, self.timeout, &self.counters)?;
        local.extend(remote);
        Ok(local)
    }
}

enum Dest {
    One(usize),
    Broadcast,
}

impl Exchange for TcpExchange {
    fn layout(&self) -> ShardLayout {
        self.layout
    }

    fn in_process(&self) -> bool {
        false
    }

    fn route(
        &self,
        seq: u64,
        frames: Vec<Frame>,
        total_buckets: usize,
    ) -> Result<Vec<Frame>, ExchangeError> {
        let layout = self.layout;
        self.ship(seq, frames, move |f| {
            Dest::One(layout.owner_of(f.bucket as usize, total_buckets))
        })
    }

    fn gather(&self, seq: u64, frames: Vec<Frame>) -> Result<Vec<Frame>, ExchangeError> {
        self.ship(seq, frames, |_| Dest::Broadcast)
    }
}

impl Drop for TcpExchange {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Close outbound links: peers' readers observe EOF and exit.
        for link in &self.peers {
            if let Some(stream) = lock_unpoisoned(&link.stream).take() {
                stream.shutdown(std::net::Shutdown::Both).ok();
            }
        }
        // Wake the acceptor so it can observe the shutdown flag.
        TcpStream::connect_timeout(&self.local_addr, Duration::from_millis(200)).ok();
        if let Some(h) = lock_unpoisoned(&self.acceptor).take() {
            h.join().ok();
        }
    }
}

fn peer_io_err(op: &'static str, peer: &str, e: impl std::fmt::Display) -> ExchangeError {
    ExchangeError::Io {
        op,
        peer: peer.to_string(),
        error: e.to_string(),
    }
}

/// Accepts inbound peer connections, validates their handshake, and spawns
/// one reader thread per peer. Reader threads deposit frames into the inbox
/// and report peer death as a typed inbox failure.
fn accept_loop(
    listener: TcpListener,
    layout: ShardLayout,
    inbox: Arc<Inbox>,
    shutdown: Arc<AtomicBool>,
    counters: Arc<ExchangeCounters>,
    read_poll: Duration,
) {
    loop {
        let Ok((stream, peer_addr)) = listener.accept() else {
            if shutdown.load(Ordering::SeqCst) {
                return;
            }
            continue;
        };
        if shutdown.load(Ordering::SeqCst) {
            return;
        }
        let inbox = Arc::clone(&inbox);
        let shutdown = Arc::clone(&shutdown);
        let _ = Arc::clone(&counters); // reader-side accounting happens at await
        let name = format!("tgx-read-{}", layout.shard());
        let _ = std::thread::Builder::new()
            .name(name)
            .spawn(move || reader_loop(stream, peer_addr, layout, inbox, shutdown, read_poll));
    }
}

/// Validates the handshake, then pumps frames into the inbox until EOF,
/// error, or shutdown.
fn reader_loop(
    mut stream: TcpStream,
    peer_addr: SocketAddr,
    layout: ShardLayout,
    inbox: Arc<Inbox>,
    shutdown: Arc<AtomicBool>,
    read_poll: Duration,
) {
    let peer = peer_addr.to_string();
    stream.set_read_timeout(Some(read_poll)).ok();
    // Handshake first: 28 bytes, validated before any frame is trusted.
    let mut hello = [0u8; 28];
    if let Err(e) = read_exact_polling(&mut stream, &mut hello, &shutdown) {
        if !shutdown.load(Ordering::SeqCst) {
            inbox.fail(ExchangeError::PeerDied {
                peer,
                detail: format!("before handshake: {e}"),
            });
        }
        return;
    }
    let mut hr = SpillReader::new(&hello);
    let peer_shard = (|| {
        let magic = hr.u32().ok()?;
        let version = hr.u64().ok()?;
        let shards = hr.u64().ok()?;
        let shard = hr.u64().ok()?;
        (magic == HANDSHAKE_MAGIC
            && version == PROTOCOL_VERSION
            && shards == layout.shards() as u64
            && shard < shards
            && shard != layout.shard() as u64)
            .then_some(shard)
    })();
    let Some(peer_shard) = peer_shard else {
        inbox.fail(ExchangeError::Protocol {
            peer,
            detail: format!(
                "bad handshake (want version {PROTOCOL_VERSION}, {} shards)",
                layout.shards()
            ),
        });
        return;
    };
    loop {
        match read_frame(&mut stream) {
            Ok(Some(frame)) => inbox.push(peer_shard, frame),
            Ok(None) => {
                if !shutdown.load(Ordering::SeqCst) {
                    // An identified shard closing its stream: fatal only to
                    // waves it had not FINed (a finished peer shuts down
                    // while slower shards still drain the last wave).
                    inbox.fail_shard(
                        peer_shard,
                        ExchangeError::PeerDied {
                            peer,
                            detail: "connection closed".into(),
                        },
                    );
                }
                return;
            }
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                if shutdown.load(Ordering::SeqCst) {
                    return;
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::InvalidData => {
                inbox.fail(frame_err(format!("from peer {peer}: {e}")));
                return;
            }
            Err(e) => {
                if !shutdown.load(Ordering::SeqCst) {
                    inbox.fail_shard(
                        peer_shard,
                        ExchangeError::PeerDied {
                            peer,
                            detail: e.to_string(),
                        },
                    );
                }
                return;
            }
        }
    }
}

/// `read_exact` that tolerates read-timeout polls while watching the
/// shutdown flag.
fn read_exact_polling(
    stream: &mut TcpStream,
    buf: &mut [u8],
    shutdown: &AtomicBool,
) -> std::io::Result<()> {
    let mut got = 0usize;
    while got < buf.len() {
        match stream.read(&mut buf[got..]) {
            Ok(0) => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "EOF",
                ))
            }
            Ok(n) => got += n,
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock
                        | std::io::ErrorKind::TimedOut
                        | std::io::ErrorKind::Interrupted
                ) =>
            {
                if shutdown.load(Ordering::SeqCst) {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::UnexpectedEof,
                        "shutdown",
                    ));
                }
            }
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_ranges_tile_and_owner_agrees() {
        for total in 1..=16usize {
            for shards in 1..=8usize {
                let layouts: Vec<ShardLayout> =
                    (0..shards).map(|s| ShardLayout::new(s, shards)).collect();
                for idx in 0..total {
                    let owners: Vec<usize> = layouts
                        .iter()
                        .enumerate()
                        .filter(|(_, l)| l.owns(idx, total))
                        .map(|(s, _)| s)
                        .collect();
                    assert_eq!(owners.len(), 1, "idx {idx} of {total} over {shards}");
                    assert_eq!(
                        layouts[0].owner_of(idx, total),
                        owners[0],
                        "owner_of disagrees with ranges for idx {idx}/{total} over {shards}"
                    );
                }
                let covered: usize = layouts.iter().map(|l| l.hi(total) - l.lo(total)).sum();
                assert_eq!(covered, total);
            }
        }
    }

    #[test]
    fn single_layout_owns_everything() {
        let l = ShardLayout::single();
        assert!(!l.is_sharded());
        assert!(l.owns(0, 4) && l.owns(3, 4));
        assert_eq!(l.range_mask(3), vec![true, true, true]);
    }

    #[test]
    fn frame_roundtrip() {
        let f = Frame {
            seq: 7,
            src: 3,
            bucket: 11,
            records: 2,
            payload: vec![1, 2, 3, 4, 5],
        };
        let mut buf = Vec::new();
        encode_frame(&f, &mut buf);
        let (back, used) = decode_frame(&buf).expect("roundtrip");
        assert_eq!(back, f);
        assert_eq!(used, buf.len());
        // And via the stream reader.
        let mut cursor = std::io::Cursor::new(buf);
        let back2 = read_frame(&mut cursor).expect("read").expect("one frame");
        assert_eq!(back2, f);
        assert!(read_frame(&mut cursor).expect("eof").is_none());
    }

    #[test]
    fn decode_rejects_corruption_typed() {
        let f = Frame {
            seq: 1,
            src: 0,
            bucket: 2,
            records: 1,
            payload: vec![9; 32],
        };
        let mut buf = Vec::new();
        encode_frame(&f, &mut buf);
        // Truncated header.
        assert!(matches!(
            decode_frame(&buf[..10]),
            Err(ExchangeError::Frame { .. })
        ));
        // Truncated payload.
        assert!(matches!(
            decode_frame(&buf[..buf.len() - 1]),
            Err(ExchangeError::Frame { .. })
        ));
        // Bad magic.
        let mut bad = buf.clone();
        bad[0] ^= 0xff;
        assert!(matches!(
            decode_frame(&bad),
            Err(ExchangeError::Frame { .. })
        ));
        // Flipped payload bit → checksum mismatch.
        let mut flipped = buf.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 1;
        assert!(matches!(
            decode_frame(&flipped),
            Err(ExchangeError::Frame { .. })
        ));
        // Oversized length prefix.
        let mut oversized = buf.clone();
        let len_off = 4 + 4 * 8;
        oversized[len_off..len_off + 8].copy_from_slice(&(MAX_FRAME_PAYLOAD + 1).to_le_bytes());
        assert!(matches!(
            decode_frame(&oversized),
            Err(ExchangeError::Frame { .. })
        ));
    }

    #[test]
    fn in_process_route_is_identity_and_counts() {
        let counters = Arc::new(ExchangeCounters::default());
        let ex = InProcessExchange::new(true, Arc::clone(&counters));
        assert!(!ex.in_process());
        let frames = vec![Frame {
            seq: 0,
            src: 0,
            bucket: 1,
            records: 1,
            payload: vec![0; 8],
        }];
        let out = ex.route(0, frames.clone(), 4).expect("loopback");
        assert_eq!(out, frames);
        assert_eq!(counters.frames_sent.load(Ordering::Relaxed), 1);
        assert_eq!(counters.frames_received.load(Ordering::Relaxed), 1);
        assert_eq!(counters.bytes_exchanged.load(Ordering::Relaxed), 8);
        // Unframed mode keeps the typed fast path.
        let fast = InProcessExchange::new(false, counters);
        assert!(fast.in_process());
    }

    fn start_pair(timeout: Duration) -> (Arc<TcpExchange>, Arc<TcpExchange>) {
        let (l0, a0) = TcpExchange::bind("127.0.0.1:0").expect("bind");
        let (l1, a1) = TcpExchange::bind("127.0.0.1:0").expect("bind");
        let addrs = vec![a0.to_string(), a1.to_string()];
        let e0 = TcpExchange::start(
            l0,
            ShardLayout::new(0, 2),
            addrs.clone(),
            Arc::new(ExchangeCounters::default()),
            timeout,
        )
        .expect("start 0");
        let e1 = TcpExchange::start(
            l1,
            ShardLayout::new(1, 2),
            addrs,
            Arc::new(ExchangeCounters::default()),
            timeout,
        )
        .expect("start 1");
        (e0, e1)
    }

    fn data_frame(seq: u64, src: u64, bucket: u64, byte: u8) -> Frame {
        Frame {
            seq,
            src,
            bucket,
            records: 1,
            payload: vec![byte; 4],
        }
    }

    #[test]
    fn mid_wave_peer_death_after_partial_frames_is_peer_died() {
        // A peer that handshakes, ships SOME of its frames for a wave, then
        // dies without a FIN must fail the wave typed (PeerDied), with the
        // partial frames drained — not deliver a short result, not hang.
        let (l0, a0) = TcpExchange::bind("127.0.0.1:0").expect("bind");
        let fake = TcpListener::bind("127.0.0.1:0").expect("bind fake peer");
        let fake_addr = fake.local_addr().expect("fake addr");
        let e0 = TcpExchange::start(
            l0,
            ShardLayout::new(0, 2),
            vec![a0.to_string(), fake_addr.to_string()],
            Arc::new(ExchangeCounters::default()),
            Duration::from_millis(800),
        )
        .expect("start 0");
        // Absorb shard 0's outbound send so route() reaches its await phase.
        let sink = std::thread::spawn(move || {
            let (stream, _) = fake.accept().expect("outbound connect from shard 0");
            std::thread::sleep(Duration::from_secs(2));
            drop(stream);
        });
        // Raw client playing shard 1: valid handshake, one mid-wave data
        // frame for seq 9, then EOF before the FIN.
        let mut client = TcpStream::connect(a0).expect("connect");
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&HANDSHAKE_MAGIC.to_le_bytes());
        bytes.extend_from_slice(&PROTOCOL_VERSION.to_le_bytes());
        bytes.extend_from_slice(&2u64.to_le_bytes());
        bytes.extend_from_slice(&1u64.to_le_bytes());
        encode_frame(&data_frame(9, 3, 1, 5), &mut bytes);
        client.write_all(&bytes).expect("partial wave");
        client.flush().expect("flush");
        drop(client);
        let started = Instant::now();
        let err = e0
            .route(9, vec![data_frame(9, 0, 1, 7)], 4)
            .expect_err("wave must fail after mid-wave peer death");
        assert!(
            matches!(err, ExchangeError::PeerDied { .. }),
            "expected PeerDied, got {err}"
        );
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "bounded wait, not a hang"
        );
        sink.join().expect("sink thread");
    }

    #[test]
    fn tcp_route_delivers_buckets_to_owners() {
        let (e0, e1) = start_pair(Duration::from_secs(5));
        // 4 buckets over 2 shards: shard 0 owns 0..2, shard 1 owns 2..4.
        let t1 = {
            let e1 = Arc::clone(&e1);
            std::thread::spawn(move || {
                e1.route(
                    9,
                    vec![data_frame(9, 2, 1, 0xbb), data_frame(9, 2, 3, 0xcc)],
                    4,
                )
            })
        };
        let got0 = e0
            .route(
                9,
                vec![data_frame(9, 0, 0, 0xaa), data_frame(9, 0, 2, 0xdd)],
                4,
            )
            .expect("route 0");
        let got1 = t1.join().expect("join").expect("route 1");
        let mut buckets0: Vec<u64> = got0.iter().map(|f| f.bucket).collect();
        buckets0.sort_unstable();
        assert_eq!(buckets0, vec![0, 1], "shard 0 receives its owned buckets");
        let mut buckets1: Vec<u64> = got1.iter().map(|f| f.bucket).collect();
        buckets1.sort_unstable();
        assert_eq!(buckets1, vec![2, 3]);
    }

    #[test]
    fn tcp_gather_broadcasts_everything() {
        let (e0, e1) = start_pair(Duration::from_secs(5));
        let t1 = {
            let e1 = Arc::clone(&e1);
            std::thread::spawn(move || e1.gather(4, vec![data_frame(4, 1, 1, 2)]))
        };
        let got0 = e0.gather(4, vec![data_frame(4, 0, 0, 1)]).expect("gather");
        let got1 = t1.join().expect("join").expect("gather 1");
        let mut srcs0: Vec<u64> = got0.iter().map(|f| f.src).collect();
        srcs0.sort_unstable();
        assert_eq!(srcs0, vec![0, 1]);
        let mut srcs1: Vec<u64> = got1.iter().map(|f| f.src).collect();
        srcs1.sort_unstable();
        assert_eq!(srcs1, vec![0, 1]);
    }

    #[test]
    fn tcp_peer_death_is_typed_not_a_hang() {
        let (e0, e1) = start_pair(Duration::from_millis(600));
        // Shard 1 sends its frames (so a connection exists), then dies
        // without... actually: shard 1 simply drops. Shard 0 then waits on a
        // route and must get a typed error within the bound, not hang.
        drop(e1);
        let started = Instant::now();
        let err = e0
            .route(2, vec![data_frame(2, 0, 3, 7)], 4)
            .expect_err("peer is gone");
        assert!(
            matches!(
                err,
                ExchangeError::PeerDied { .. }
                    | ExchangeError::Timeout { .. }
                    | ExchangeError::Io { .. }
            ),
            "{err}"
        );
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "bounded wait, not a hang"
        );
    }

    #[test]
    fn tcp_connect_to_nobody_times_out() {
        let (l0, a0) = TcpExchange::bind("127.0.0.1:0").expect("bind");
        // Peer address: a bound-then-dropped listener → nobody home.
        let ghost = {
            let (l, a) = TcpExchange::bind("127.0.0.1:0").expect("bind");
            drop(l);
            a
        };
        let e0 = TcpExchange::start(
            l0,
            ShardLayout::new(0, 2),
            vec![a0.to_string(), ghost.to_string()],
            Arc::new(ExchangeCounters::default()),
            Duration::from_millis(300),
        )
        .expect("start");
        let err = e0
            .route(1, vec![data_frame(1, 0, 3, 1)], 4)
            .expect_err("no peer");
        assert!(
            matches!(
                err,
                ExchangeError::Timeout { .. } | ExchangeError::Io { .. }
            ),
            "{err}"
        );
    }

    #[test]
    fn env_parsing() {
        // Not set in the test environment: defaults hold.
        assert!(timeout_from_env() >= Duration::from_millis(1));
    }
}
