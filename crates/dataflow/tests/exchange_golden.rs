//! Golden byte-identity tests for the pluggable exchange layer: the same
//! workload must produce **byte-identical** results whether buckets move
//! through the in-process typed path, the framed loopback codec, or a real
//! TCP exchange across 2 or 4 shards.
//!
//! Each shard runs in its own thread with its own [`Runtime`] and a
//! [`TcpExchange`] wired to its peers over localhost. Because collects
//! all-gather owned partitions, *every* shard computes the full result, so
//! the test also asserts cross-shard agreement.

use std::sync::Arc;
use std::time::Duration;
use tgraph_dataflow::{
    Dataset, InProcessExchange, KeyedDataset, Runtime, ShardLayout, Spill, TcpExchange,
};

/// A representative workload: two chained shuffles (the second elided), a
/// shuffle join, a count, and a fold. Returns everything unsorted — collect
/// order itself is part of the byte-identity contract.
#[allow(clippy::type_complexity)]
fn workload(
    rt: &Runtime,
) -> (
    Vec<(u64, u64)>,
    Vec<(u64, u64)>,
    Vec<(u64, (u64, u64))>,
    usize,
    u64,
) {
    let data: Vec<(u64, u64)> = (0..2000).map(|i| (i % 37, i)).collect();
    let d = Dataset::from_vec(rt, data);
    let reduced = d.reduce_by_key(rt, |a, b| a + b);
    let r1 = reduced.collect(rt);
    // Re-reducing hash-partitioned data elides the shuffle; still must agree.
    let r2 = reduced.reduce_by_key(rt, |a, b| a + b).collect(rt);
    let small: Vec<(u64, u64)> = (0..37)
        .filter(|k| k % 3 == 0)
        .map(|k| (k, k * 10))
        .collect();
    let s = Dataset::from_vec(rt, small);
    let joined = reduced.join(rt, &s).collect(rt);
    let n = reduced.count(rt);
    let total = reduced
        .map(|(_, v)| *v)
        .fold(rt, 0u64, |a, b| a + b, |a, b| a + b);
    (r1, r2, joined, n, total)
}

type WorkloadOut = (
    Vec<(u64, u64)>,
    Vec<(u64, u64)>,
    Vec<(u64, (u64, u64))>,
    usize,
    u64,
);

/// Spill-encodes a workload result so "byte-identical" is literal.
fn encode(out: &WorkloadOut) -> Vec<u8> {
    let mut buf = Vec::new();
    out.0.spill(&mut buf);
    out.1.spill(&mut buf);
    out.2.spill(&mut buf);
    (out.3 as u64).spill(&mut buf);
    out.4.spill(&mut buf);
    buf
}

/// Runs the workload on `shards` cooperating runtimes joined by TcpExchange
/// over localhost, asserts all shards agree, and returns shard 0's result.
fn run_sharded(shards: usize, parts: usize) -> WorkloadOut {
    let mut listeners = Vec::new();
    let mut addrs = Vec::new();
    for _ in 0..shards {
        let (l, a) = TcpExchange::bind("127.0.0.1:0").expect("bind");
        listeners.push(l);
        addrs.push(a.to_string());
    }
    let handles: Vec<_> = listeners
        .into_iter()
        .enumerate()
        .map(|(s, listener)| {
            let addrs = addrs.clone();
            std::thread::spawn(move || {
                let rt = Runtime::with_partitions(2, parts);
                let layout = ShardLayout::new(s, shards);
                let ex = TcpExchange::start(
                    listener,
                    layout,
                    addrs,
                    rt.exchange_counters(),
                    Duration::from_secs(20),
                )
                .expect("start exchange");
                rt.set_exchange(ex);
                let out = workload(&rt);
                let stats = rt.stats();
                (out, stats.frames_sent, stats.bytes_exchanged)
            })
        })
        .collect();
    let results: Vec<_> = handles
        .into_iter()
        .map(|h| h.join().expect("shard thread"))
        .collect();
    for (s, (out, frames, bytes)) in results.iter().enumerate() {
        assert_eq!(
            encode(out),
            encode(&results[0].0),
            "shard {s} disagrees with shard 0"
        );
        assert!(*frames > 0, "shard {s} sent no frames");
        assert!(*bytes > 0, "shard {s} exchanged no bytes");
    }
    results.into_iter().next().unwrap().0
}

#[test]
fn framed_loopback_is_byte_identical_to_in_process() {
    let base = workload(&Runtime::with_partitions(4, 8));
    let rt = Runtime::with_partitions(4, 8);
    rt.set_exchange(Arc::new(InProcessExchange::new(
        true,
        rt.exchange_counters(),
    )));
    let framed = workload(&rt);
    assert_eq!(encode(&framed), encode(&base));
    let stats = rt.stats();
    assert!(stats.frames_sent > 0, "framed mode must move real frames");
    assert!(stats.bytes_exchanged > 0);
}

#[test]
fn two_shard_tcp_is_byte_identical_to_in_process() {
    let base = workload(&Runtime::with_partitions(4, 8));
    let sharded = run_sharded(2, 8);
    assert_eq!(encode(&sharded), encode(&base));
}

#[test]
fn four_shard_tcp_is_byte_identical_to_in_process() {
    let base = workload(&Runtime::with_partitions(4, 8));
    let sharded = run_sharded(4, 8);
    assert_eq!(encode(&sharded), encode(&base));
}

#[test]
fn sharded_elision_still_works() {
    // The second reduce_by_key in the workload is elided; make sure a
    // sharded runtime elides it too (owned-partition emptiness keeps the
    // audit trivially satisfied).
    let mut listeners = Vec::new();
    let mut addrs = Vec::new();
    for _ in 0..2 {
        let (l, a) = TcpExchange::bind("127.0.0.1:0").expect("bind");
        listeners.push(l);
        addrs.push(a.to_string());
    }
    let handles: Vec<_> = listeners
        .into_iter()
        .enumerate()
        .map(|(s, listener)| {
            let addrs = addrs.clone();
            std::thread::spawn(move || {
                let rt = Runtime::with_partitions(2, 4);
                let ex = TcpExchange::start(
                    listener,
                    ShardLayout::new(s, 2),
                    addrs,
                    rt.exchange_counters(),
                    Duration::from_secs(20),
                )
                .expect("start exchange");
                rt.set_exchange(ex);
                let d = Dataset::from_vec(&rt, (0..100u64).map(|i| (i % 7, i)).collect::<Vec<_>>());
                let reduced = d.reduce_by_key(&rt, |a, b| a + b);
                let _ = reduced.collect(&rt);
                let before = rt.stats();
                let _ = reduced.reduce_by_key(&rt, |a, b| a + b).collect(&rt);
                rt.stats().since(&before)
            })
        })
        .collect();
    for h in handles {
        let delta = h.join().expect("shard thread");
        assert_eq!(delta.shuffles, 0, "second reduce must be elided");
        assert_eq!(delta.shuffles_elided, 1);
    }
}
