//! Property tests for the exchange wire codec: arbitrary frames round-trip
//! exactly, and malformed bytes — truncations, oversized length prefixes,
//! bit flips, random garbage — surface typed errors, never panics and never
//! reads past the buffer.

use proptest::prelude::*;
use std::io::Cursor;
use tgraph_dataflow::exchange::{decode_frame, encode_frame, read_frame, HEADER_BYTES};
use tgraph_dataflow::{ExchangeError, Frame};

fn arb_frame() -> impl Strategy<Value = Frame> {
    (
        0u64..1 << 48,
        0u64..1024,
        0u64..1024,
        prop::collection::vec(0u8..=255, 0..200),
    )
        .prop_map(|(seq, src, bucket, payload)| Frame {
            seq,
            src,
            bucket,
            records: payload.len() as u64 / 3,
            payload,
        })
}

fn encoded(frame: &Frame) -> Vec<u8> {
    let mut buf = Vec::new();
    encode_frame(frame, &mut buf);
    buf
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn frames_roundtrip_exactly(frame in arb_frame()) {
        let buf = encoded(&frame);
        let (back, consumed) = decode_frame(&buf).expect("valid encoding must decode");
        prop_assert_eq!(&back, &frame);
        prop_assert_eq!(consumed, buf.len());
        // Stream reader agrees with the slice decoder.
        let mut cur = Cursor::new(buf);
        let streamed = read_frame(&mut cur).expect("stream decode").expect("one frame");
        prop_assert_eq!(&streamed, &frame);
    }

    #[test]
    fn truncation_is_a_typed_error(frame in arb_frame(), cut_frac in 0u64..1000) {
        let buf = encoded(&frame);
        // Any strict prefix must fail typed — header or payload truncation.
        let cut = (buf.len() as u64 * cut_frac / 1000) as usize;
        prop_assert!(cut < buf.len());
        match decode_frame(&buf[..cut]) {
            Err(ExchangeError::Frame { .. }) => {}
            other => return Err(format!("expected Frame error at cut {cut}, got {other:?}")),
        }
        // The stream reader must not hang or panic either: a cut inside the
        // header or payload is an error; an empty prefix is a clean EOF.
        let mut cur = Cursor::new(buf[..cut].to_vec());
        match read_frame(&mut cur) {
            Ok(None) => prop_assert!(cut == 0, "clean EOF only at a frame boundary"),
            Ok(Some(_)) => return Err("decoded a truncated frame".into()),
            Err(_) => prop_assert!(cut > 0),
        }
    }

    #[test]
    fn bit_flips_never_pass_silently(frame in arb_frame(), pos_frac in 0u64..1000, bit in 0u8..8) {
        let mut buf = encoded(&frame);
        let pos = (buf.len() as u64 * pos_frac / 1000) as usize;
        buf[pos] ^= 1 << bit;
        match decode_frame(&buf) {
            // Flips in the unchecksummed metadata words (seq/src/bucket/
            // records) decode, but must never reproduce the original frame.
            Ok((back, _)) => prop_assert!(back != frame, "flipped byte {pos} yielded the original"),
            Err(ExchangeError::Frame { .. }) => {}
            Err(other) => return Err(format!("unexpected error variant: {other:?}")),
        }
        // Payload and checksum bytes ARE covered: flips there must error.
        if pos >= HEADER_BYTES - 8 {
            prop_assert!(decode_frame(&buf).is_err(), "payload/checksum flip at {} passed", pos);
        }
    }

    #[test]
    fn oversized_length_prefix_is_rejected(frame in arb_frame(), excess in 1u64..1 << 40) {
        let mut buf = encoded(&frame);
        // The payload-length word lives at offset 4 + 4*8 in the header.
        let off = 4 + 4 * 8;
        let huge = (1u64 << 30) + excess; // MAX_FRAME_PAYLOAD + excess
        buf[off..off + 8].copy_from_slice(&huge.to_le_bytes());
        match decode_frame(&buf) {
            Err(ExchangeError::Frame { detail }) => {
                prop_assert!(detail.contains("exceeds cap"), "wrong detail: {detail}");
            }
            other => return Err(format!("expected oversize rejection, got {other:?}")),
        }
        let mut cur = Cursor::new(buf);
        prop_assert!(read_frame(&mut cur).is_err());
    }

    #[test]
    fn random_garbage_never_panics(bytes in prop::collection::vec(0u8..=255, 0..300)) {
        // Whatever happens, it is a Result — no panic, no out-of-bounds.
        let _ = decode_frame(&bytes);
        let mut cur = Cursor::new(bytes.clone());
        let _ = read_frame(&mut cur);
    }

    #[test]
    fn back_to_back_frames_decode_in_sequence(a in arb_frame(), b in arb_frame()) {
        let mut buf = encoded(&a);
        encode_frame(&b, &mut buf);
        let (first, used) = decode_frame(&buf).expect("first frame");
        let (second, used2) = decode_frame(&buf[used..]).expect("second frame");
        prop_assert_eq!(&first, &a);
        prop_assert_eq!(&second, &b);
        prop_assert_eq!(used + used2, buf.len());
    }
}
