//! # tgraph-query
//!
//! The operator-chaining layer of the system (§4): pipelines of `aZoom^T` /
//! `wZoom^T` steps over any physical representation, **representation
//! switching** mid-query (§5.3), and the **lazy coalescing** optimization —
//! coalesce only before `wZoom^T` (which computes across snapshots and needs
//! maximal intervals for correctness) and once at the end of the pipeline,
//! never after `aZoom^T` (which computes within snapshots and is
//! insensitive to fragmentation).
//!
//! ```
//! use tgraph_core::graph::figure1_graph_stable_ids;
//! use tgraph_core::zoom::{AZoomSpec, AggSpec, Quantifier, WZoomSpec};
//! use tgraph_dataflow::Runtime;
//! use tgraph_query::Session;
//! use tgraph_repr::ReprKind;
//!
//! let rt = Runtime::new(2);
//! let g = figure1_graph_stable_ids();
//! let zoomed = Session::load(&rt, &g, ReprKind::Ve)
//!     .azoom(&AZoomSpec::by_property("school", "school", vec![AggSpec::count("students")]))
//!     .switch_to(ReprKind::Og)
//!     .wzoom(&WZoomSpec::points(3, Quantifier::Exists, Quantifier::Exists))
//!     .collect();
//! assert_eq!(zoomed.distinct_vertex_count(), 2); // MIT, CMU
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod pipeline;
pub mod session;

pub use pipeline::{coalesce_any, CoalescePolicy, Op, Pipeline};
pub use session::Session;
