//! A small fluent session API over pipelines — the "TGraph API" surface of
//! §4, for users who want to zoom interactively rather than build explicit
//! [`Pipeline`] values.

use crate::pipeline::{coalesce_any, CoalescePolicy, Op, Pipeline};
use tgraph_core::time::{Interval, Time};
use tgraph_core::zoom::maintenance::{decide, MaintenanceDecision};
use tgraph_core::zoom::{AZoomSpec, WZoomSpec, WindowSpec};
use tgraph_core::TGraph;
use tgraph_dataflow::Runtime;
use tgraph_repr::{AnyGraph, ReprKind};

/// A live query session holding a graph in some physical representation and
/// applying operators eagerly while honoring the lazy-coalescing rule.
pub struct Session<'rt> {
    rt: &'rt Runtime,
    graph: AnyGraph,
    policy: CoalescePolicy,
    trace: Vec<Op>,
    /// Lifespan of the *input* graph, captured at load — the anchor and
    /// boundary the maintenance planner reasons about.
    input_lifespan: Interval,
}

impl<'rt> Session<'rt> {
    /// Starts a session from a logical graph loaded into `kind`.
    pub fn load(rt: &'rt Runtime, g: &TGraph, kind: ReprKind) -> Self {
        Session {
            rt,
            graph: AnyGraph::load(rt, g, kind),
            policy: CoalescePolicy::Lazy,
            trace: Vec::new(),
            input_lifespan: g.lifespan,
        }
    }

    /// Starts a session from an already-loaded representation.
    pub fn from_graph(rt: &'rt Runtime, graph: AnyGraph) -> Self {
        let input_lifespan = graph.lifespan();
        Session {
            rt,
            graph,
            policy: CoalescePolicy::Lazy,
            trace: Vec::new(),
            input_lifespan,
        }
    }

    /// Selects the coalescing policy (default lazy).
    pub fn with_policy(mut self, policy: CoalescePolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Applies attribute-based zoom.
    pub fn azoom(mut self, spec: &AZoomSpec) -> Self {
        self.trace.push(Op::AZoom(spec.clone()));
        self.graph = self.graph.azoom(self.rt, spec);
        if self.policy == CoalescePolicy::Eager {
            self.graph = coalesce_any(self.rt, self.graph);
        }
        self
    }

    /// Applies window-based zoom (coalescing first, as correctness requires).
    pub fn wzoom(mut self, spec: &WZoomSpec) -> Self {
        self.trace.push(Op::WZoom(spec.clone()));
        self.graph = coalesce_any(self.rt, self.graph);
        self.graph = self.graph.wzoom(self.rt, spec);
        if self.policy == CoalescePolicy::Eager {
            self.graph = coalesce_any(self.rt, self.graph);
        }
        self
    }

    /// Switches the physical representation.
    pub fn switch_to(mut self, kind: ReprKind) -> Self {
        self.trace.push(Op::Switch(kind));
        self.graph = self.graph.switch_to(self.rt, kind);
        self
    }

    /// Current representation.
    pub fn kind(&self) -> ReprKind {
        self.graph.kind()
    }

    /// The operators applied so far (for plan display / debugging).
    pub fn trace(&self) -> &[Op] {
        &self.trace
    }

    /// Finishes the session: coalesces (point semantics) and returns the
    /// graph in its current representation.
    pub fn finish(self) -> AnyGraph {
        coalesce_any(self.rt, self.graph)
    }

    /// Finishes and materializes the logical result.
    pub fn collect(self) -> TGraph {
        let rt = self.rt;
        self.finish().to_tgraph(rt)
    }

    /// How a result cached from this session's trace would be brought up to
    /// date after an ingest at `boundary` (every new fact at or after it):
    /// patched from the suffix, or recomputed cold, and why.
    pub fn maintenance_plan(&self, boundary: Time) -> MaintenanceDecision {
        let windows: Vec<WindowSpec> = self
            .trace
            .iter()
            .filter_map(|op| match op {
                Op::WZoom(s) => Some(s.window),
                _ => None,
            })
            .collect();
        // The post-ingest lifespan extends at least to the boundary; the
        // anchor (start) never moves under the append invariant.
        let lifespan = Interval::new(
            self.input_lifespan.start,
            self.input_lifespan.end.max(boundary),
        );
        decide(lifespan, boundary, &windows)
    }

    /// EXPLAIN rendering of the plan DAGs backing the current graph, one
    /// section per dataset, including verifier diagnostics and predicted
    /// data-movement footers, plus a maintenance footer: whether an ingest
    /// at the current lifespan end would patch this pipeline's result or
    /// force a recompute.
    pub fn explain(&self) -> String {
        let lineages = self.graph.lineages();
        let mut out = String::new();
        for (name, analysis) in tgraph_analyze::analyze_all(&lineages) {
            out.push_str(&format!("== {name} ==\n"));
            out.push_str(&analysis.render());
        }
        out.push_str("== maintenance ==\n");
        let boundary = self.input_lifespan.end;
        match self.maintenance_plan(boundary) {
            MaintenanceDecision::Patch { cut } => {
                out.push_str(&format!(
                    "-- ingest at {boundary}: patch — re-run suffix [{cut}, ∞), stitch at cut={cut}\n"
                ));
            }
            MaintenanceDecision::Recompute { reason } => {
                out.push_str(&format!("-- ingest at {boundary}: recompute — {reason}\n"));
            }
        }
        out
    }

    /// Statically verifies the plan DAGs backing the current graph: every
    /// elided exchange and partitioning claim must be derivable.
    ///
    /// Returns the error-severity diagnostics, prefixed with the dataset
    /// name; an empty vector means every plan is provably sound.
    pub fn verify(&self) -> Vec<String> {
        let lineages = self.graph.lineages();
        tgraph_analyze::analyze_all(&lineages)
            .into_iter()
            .flat_map(|(name, analysis)| {
                analysis
                    .diagnostics
                    .into_iter()
                    .filter(|d| d.severity == tgraph_analyze::Severity::Error)
                    .map(move |d| format!("{name}: {d}"))
                    .collect::<Vec<_>>()
            })
            .collect()
    }

    /// Replays the recorded trace as a reusable [`Pipeline`].
    pub fn to_pipeline(&self) -> Pipeline {
        let mut p = Pipeline::new();
        for op in &self.trace {
            p = match op {
                Op::AZoom(s) => p.azoom(s.clone()),
                Op::WZoom(s) => p.wzoom(s.clone()),
                Op::Switch(k) => p.switch_to(*k),
                Op::Coalesce => p.coalesce(),
            };
        }
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tgraph_core::graph::figure1_graph_stable_ids;
    use tgraph_core::reference::{azoom_reference, wzoom_reference};
    use tgraph_core::zoom::azoom::AggSpec;
    use tgraph_core::zoom::wzoom::Quantifier;

    fn rt() -> Runtime {
        Runtime::with_partitions(2, 2)
    }

    #[test]
    fn session_matches_pipeline() {
        let rt = rt();
        let g = figure1_graph_stable_ids();
        let aspec = AZoomSpec::by_property("school", "school", vec![AggSpec::count("students")]);
        let wspec = WZoomSpec::points(3, Quantifier::Exists, Quantifier::Exists);

        let session_out = Session::load(&rt, &g, ReprKind::Ve)
            .azoom(&aspec)
            .switch_to(ReprKind::Og)
            .wzoom(&wspec)
            .collect();

        let expected = wzoom_reference(&azoom_reference(&g, &aspec), &wspec);
        assert_eq!(session_out.vertices, expected.vertices);
        assert_eq!(session_out.edges, expected.edges);
    }

    #[test]
    fn trace_replays_as_pipeline() {
        let rt = rt();
        let g = figure1_graph_stable_ids();
        let aspec = AZoomSpec::by_property("school", "school", vec![AggSpec::count("students")]);
        let session = Session::load(&rt, &g, ReprKind::Ve).azoom(&aspec);
        assert_eq!(session.trace().len(), 1);
        let pipeline = session.to_pipeline();
        assert_eq!(pipeline.ops().len(), 1);
        let replayed = pipeline
            .execute(
                &rt,
                AnyGraph::load(&rt, &g, ReprKind::Ve),
                CoalescePolicy::Lazy,
            )
            .to_tgraph(&rt);
        assert_eq!(replayed.vertices, session.collect().vertices);
    }

    #[test]
    fn explain_and_verify_on_zoom_pipeline() {
        let rt = rt();
        let g = figure1_graph_stable_ids();
        let aspec = AZoomSpec::by_property("school", "school", vec![AggSpec::count("students")]);
        let session = Session::load(&rt, &g, ReprKind::Ve)
            .azoom(&aspec)
            .switch_to(ReprKind::Og);
        // Engine-produced plans must always verify sound.
        assert_eq!(session.verify(), Vec::<String>::new());
        let explain = session.explain();
        assert!(explain.contains("== og.vertices =="), "{explain}");
        assert!(explain.contains("== og.edges =="), "{explain}");
        assert!(explain.contains("shuffle"), "{explain}");
        assert!(explain.contains("-- "), "{explain}");
    }

    #[test]
    fn explain_maintenance_footer_patch_vs_recompute() {
        let rt = rt();
        let g = figure1_graph_stable_ids();
        let wspec = WZoomSpec::points(2, Quantifier::Exists, Quantifier::Exists);
        let s = Session::load(&rt, &g, ReprKind::Ve).wzoom(&wspec);
        assert!(s.maintenance_plan(g.lifespan.end).is_patch());
        let explain = s.explain();
        assert!(explain.contains("== maintenance =="), "{explain}");
        assert!(explain.contains("patch"), "{explain}");

        // Changes-based windows are not append-stable: the footer says why.
        let mut cspec = wspec.clone();
        cspec.window = tgraph_core::zoom::WindowSpec::Changes(2);
        let s = Session::load(&rt, &g, ReprKind::Ve).wzoom(&cspec);
        assert!(!s.maintenance_plan(g.lifespan.end).is_patch());
        let explain = s.explain();
        assert!(
            explain.contains("recompute — changes-windows are not append-stable"),
            "{explain}"
        );
    }

    #[test]
    fn kind_tracks_switches() {
        let rt = rt();
        let g = figure1_graph_stable_ids();
        let s = Session::load(&rt, &g, ReprKind::Ve);
        assert_eq!(s.kind(), ReprKind::Ve);
        let s = s.switch_to(ReprKind::Ogc);
        assert_eq!(s.kind(), ReprKind::Ogc);
    }
}
