//! Operator pipelines: chaining zooms, switching representations mid-query,
//! and the lazy-coalescing optimization of §4.
//!
//! The paper's API "supports chaining multiple operations together and
//! switching between graph representations during query execution". The
//! coalescing rule it derives: `aZoom^T` computes within each snapshot and
//! does **not** need coalesced input; `wZoom^T` computes across snapshots and
//! **does**. So in a chain, the system coalesces only before `wZoom^T` and
//! once at the end of the pipeline.

use tgraph_core::zoom::{AZoomSpec, WZoomSpec};
use tgraph_dataflow::Runtime;
use tgraph_repr::{AnyGraph, ReprKind, VeGraph};

/// One pipeline step.
#[derive(Clone, Debug)]
pub enum Op {
    /// Apply attribute-based zoom in the current representation.
    AZoom(AZoomSpec),
    /// Apply window-based zoom in the current representation.
    WZoom(WZoomSpec),
    /// Switch the graph to another physical representation.
    Switch(ReprKind),
    /// Force temporal coalescing now (inserted implicitly when needed).
    Coalesce,
}

/// Coalescing strategy for a pipeline.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CoalescePolicy {
    /// Coalesce only where correctness requires it (before `wZoom^T`) and at
    /// the end of the pipeline — the paper's optimization.
    Lazy,
    /// Coalesce after every operator (the naive baseline the optimization is
    /// measured against in experiment A2).
    Eager,
}

/// A chain of zoom operators with optional representation switches.
#[derive(Clone, Debug, Default)]
pub struct Pipeline {
    ops: Vec<Op>,
}

impl Pipeline {
    /// An empty pipeline (identity, modulo the final coalesce).
    pub fn new() -> Self {
        Pipeline { ops: Vec::new() }
    }

    /// Appends an attribute-based zoom.
    pub fn azoom(mut self, spec: AZoomSpec) -> Self {
        self.ops.push(Op::AZoom(spec));
        self
    }

    /// Appends a window-based zoom.
    pub fn wzoom(mut self, spec: WZoomSpec) -> Self {
        self.ops.push(Op::WZoom(spec));
        self
    }

    /// Appends a representation switch.
    pub fn switch_to(mut self, kind: ReprKind) -> Self {
        self.ops.push(Op::Switch(kind));
        self
    }

    /// Appends an explicit coalesce.
    pub fn coalesce(mut self) -> Self {
        self.ops.push(Op::Coalesce);
        self
    }

    /// The steps of the pipeline.
    pub fn ops(&self) -> &[Op] {
        &self.ops
    }

    /// Executes the pipeline on `graph` with the given coalescing policy.
    ///
    /// Lazy policy: representations track their own coalesced-ness where they
    /// can (VE carries a flag; OG/OGC histories are coalesced by
    /// construction; RG is conceptually always snapshot-normalized), so a
    /// `Coalesce` step is a no-op where the data is already maximal.
    pub fn execute(&self, rt: &Runtime, graph: AnyGraph, policy: CoalescePolicy) -> AnyGraph {
        let mut g = graph;
        for op in &self.ops {
            g = match op {
                Op::AZoom(spec) => {
                    let mut out = g.azoom(rt, spec);
                    if policy == CoalescePolicy::Eager {
                        out = coalesce_any(rt, out);
                    }
                    out
                }
                Op::WZoom(spec) => {
                    // Correctness: coalesce before wZoom (the representation
                    // implementations also guard this themselves; the
                    // pipeline-level insertion is the observable part of the
                    // optimization).
                    let input = coalesce_any(rt, g);
                    let mut out = input.wzoom(rt, spec);
                    if policy == CoalescePolicy::Eager {
                        out = coalesce_any(rt, out);
                    }
                    out
                }
                Op::Switch(kind) => g.switch_to(rt, *kind),
                Op::Coalesce => coalesce_any(rt, g),
            };
        }
        // Point semantics: the final result is always coalesced.
        coalesce_any(rt, g)
    }
}

/// Coalesces a graph in its current representation (no-op where the
/// representation is coalesced by construction).
pub fn coalesce_any(rt: &Runtime, g: AnyGraph) -> AnyGraph {
    match g {
        AnyGraph::Ve(ve) => AnyGraph::Ve(coalesce_ve(rt, &ve)),
        // OG/OGC keep per-entity histories coalesced by construction; RG's
        // snapshots are definitionally one per no-change interval.
        other => other,
    }
}

fn coalesce_ve(rt: &Runtime, ve: &VeGraph) -> VeGraph {
    ve.coalesce(rt)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tgraph_core::graph::figure1_graph_stable_ids;
    use tgraph_core::reference::{azoom_reference, wzoom_reference};
    use tgraph_core::zoom::azoom::AggSpec;
    use tgraph_core::zoom::wzoom::Quantifier;

    fn rt() -> Runtime {
        Runtime::with_partitions(4, 4)
    }

    fn school_spec() -> AZoomSpec {
        AZoomSpec::by_property("school", "school", vec![AggSpec::count("students")])
    }

    fn wspec() -> WZoomSpec {
        WZoomSpec::points(3, Quantifier::Exists, Quantifier::Exists)
    }

    /// Chains must equal composing the reference evaluators.
    #[test]
    fn chain_azoom_then_wzoom_matches_reference_composition() {
        let rt = rt();
        let g = figure1_graph_stable_ids();
        let expected = wzoom_reference(&azoom_reference(&g, &school_spec()), &wspec());

        for kind in [ReprKind::Ve, ReprKind::Og, ReprKind::Rg] {
            let pipeline = Pipeline::new().azoom(school_spec()).wzoom(wspec());
            let out = pipeline.execute(&rt, AnyGraph::load(&rt, &g, kind), CoalescePolicy::Lazy);
            let got = out.to_tgraph(&rt);
            assert_eq!(got.vertices, expected.vertices, "{kind}");
            assert_eq!(got.edges, expected.edges, "{kind}");
        }
    }

    #[test]
    fn chain_with_representation_switch() {
        let rt = rt();
        let g = figure1_graph_stable_ids();
        let expected = wzoom_reference(&azoom_reference(&g, &school_spec()), &wspec());

        // aZoom on VE, switch to OG, wZoom on OG — the paper's VE-OG chain.
        let pipeline = Pipeline::new()
            .azoom(school_spec())
            .switch_to(ReprKind::Og)
            .wzoom(wspec());
        let out = pipeline.execute(
            &rt,
            AnyGraph::load(&rt, &g, ReprKind::Ve),
            CoalescePolicy::Lazy,
        );
        assert_eq!(out.kind(), ReprKind::Og);
        let got = out.to_tgraph(&rt);
        assert_eq!(got.vertices, expected.vertices);
        assert_eq!(got.edges, expected.edges);

        // OG → VE direction.
        let pipeline = Pipeline::new()
            .azoom(school_spec())
            .switch_to(ReprKind::Ve)
            .wzoom(wspec());
        let out = pipeline.execute(
            &rt,
            AnyGraph::load(&rt, &g, ReprKind::Og),
            CoalescePolicy::Lazy,
        );
        assert_eq!(out.kind(), ReprKind::Ve);
        let got = out.to_tgraph(&rt);
        assert_eq!(got.vertices, expected.vertices);
        assert_eq!(got.edges, expected.edges);
    }

    #[test]
    fn lazy_and_eager_agree() {
        let rt = rt();
        let g = figure1_graph_stable_ids();
        let pipeline = Pipeline::new().azoom(school_spec()).wzoom(wspec());
        let lazy = pipeline
            .execute(
                &rt,
                AnyGraph::load(&rt, &g, ReprKind::Ve),
                CoalescePolicy::Lazy,
            )
            .to_tgraph(&rt);
        let eager = pipeline
            .execute(
                &rt,
                AnyGraph::load(&rt, &g, ReprKind::Ve),
                CoalescePolicy::Eager,
            )
            .to_tgraph(&rt);
        assert_eq!(lazy.vertices, eager.vertices);
        assert_eq!(lazy.edges, eager.edges);
    }

    #[test]
    fn wzoom_then_azoom_order() {
        let rt = rt();
        let g = figure1_graph_stable_ids();
        let expected = azoom_reference(&wzoom_reference(&g, &wspec()), &school_spec());
        for kind in [ReprKind::Ve, ReprKind::Og] {
            let pipeline = Pipeline::new().wzoom(wspec()).azoom(school_spec());
            let out = pipeline.execute(&rt, AnyGraph::load(&rt, &g, kind), CoalescePolicy::Lazy);
            let got = out.to_tgraph(&rt);
            assert_eq!(got.vertices, expected.vertices, "{kind}");
            assert_eq!(got.edges, expected.edges, "{kind}");
        }
    }

    #[test]
    fn empty_pipeline_is_coalesced_identity() {
        let rt = rt();
        let g = figure1_graph_stable_ids();
        let out = Pipeline::new().execute(
            &rt,
            AnyGraph::load(&rt, &g, ReprKind::Ve),
            CoalescePolicy::Lazy,
        );
        let got = out.to_tgraph(&rt);
        let expected = tgraph_core::coalesce::coalesce_graph(&g);
        assert_eq!(got.vertices, expected.vertices);
        assert_eq!(got.edges, expected.edges);
    }
}
