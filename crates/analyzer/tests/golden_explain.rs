//! Golden plan tests: `aZoom^T` and `wZoom^T` over the paper's Figure-1
//! graph must produce exactly the expected shuffle/elision structure and
//! EXPLAIN rendering.
//!
//! These snapshots are the regression net for the optimizer: an accidental
//! extra shuffle, a lost elision, or a changed derivation shows up as a
//! string diff here before it shows up as a benchmark regression.

use tgraph_analyze::analyze;
use tgraph_core::graph::figure1_graph_stable_ids;
use tgraph_core::zoom::azoom::{AZoomSpec, AggSpec};
use tgraph_core::zoom::wzoom::{Quantifier, WZoomSpec};
use tgraph_dataflow::Runtime;
use tgraph_query::Session;
use tgraph_repr::ReprKind;

fn rt() -> Runtime {
    Runtime::with_partitions(2, 2)
}

fn aspec() -> AZoomSpec {
    AZoomSpec::by_property("school", "school", vec![AggSpec::count("students")])
}

fn wspec() -> WZoomSpec {
    WZoomSpec::points(3, Quantifier::Exists, Quantifier::Exists)
}

/// Asserts one analyzed lineage against its golden snapshot.
fn check(
    name: &str,
    root: &std::sync::Arc<tgraph_dataflow::PlanNode>,
    shuffles: usize,
    elisions: usize,
    explain: &str,
) {
    let a = analyze(root);
    assert!(a.is_sound(), "{name}:\n{}", a.render());
    assert_eq!(a.shuffles, shuffles, "{name} shuffle count:\n{}", a.explain);
    assert_eq!(a.elisions, elisions, "{name} elision count:\n{}", a.explain);
    assert_eq!(a.explain, explain, "{name} EXPLAIN drifted:\n{}", a.explain);
}

#[test]
fn azoom_on_ve_golden() {
    let rt = rt();
    let g = figure1_graph_stable_ids();
    let session = Session::load(&rt, &g, ReprKind::Ve).azoom(&aspec());
    assert_eq!(session.verify(), Vec::<String>::new());
    let lineages = session.finish().lineages();
    assert_eq!(lineages.len(), 2);

    // Vertices: one aggregation shuffle; the group-by combine rides on it.
    check(
        lineages[0].0,
        &lineages[0].1,
        1,
        0,
        "\
#1 flat_map [flat_map] unknown
  #2 group_by_key [local_combine] hash(p=2) rows~3
    #3 shuffle [shuffle(p=2)] hash(p=2) rows=3
      #4 flat_map [flat_map] unknown
        #5 source [source(p=2)] unknown rows=4
",
    );

    // Edges: two endpoint-mirroring joins share one pre-shuffled vertex
    // side (#14) — both its re-uses are elided exchanges.
    check(
        lineages[1].0,
        &lineages[1].1,
        4,
        2,
        "\
#1 flat_map [flat_map] unknown
  #2 group_by_key [local_combine] hash(p=2) rows~2
    #3 shuffle [shuffle(p=2)] hash(p=2) rows=2
      #4 map [map] unknown
        #5 flat_map [flat_map] unknown
          #6 join [join(p=2)] hash(p=2) rows=3
            #7 shuffle [shuffle(p=2)] hash(p=2) rows=2
              #8 flat_map [flat_map] unknown
                #9 join [join(p=2)] hash(p=2) rows=3
                  #10 shuffle [shuffle(p=2)] hash(p=2) rows=2
                    #11 map [map] unknown rows=2
                      #12 source [source(p=2)] unknown rows=2
                  #13 shuffle(elided) [elided_shuffle(p=2)] hash(p=2) rows=4
                    #14 shuffle [shuffle(p=2)] hash(p=2) rows=4
                      #15 map [map] unknown rows=4
                        #16 source [source(p=2)] unknown rows=4
            #17 shuffle(elided) [elided_shuffle(p=2)] hash(p=2) rows=4
              #14 (shuffle; shared, see above)
",
    );
}

#[test]
fn wzoom_on_og_golden() {
    let rt = rt();
    let g = figure1_graph_stable_ids();
    let session = Session::load(&rt, &g, ReprKind::Og).wzoom(&wspec());
    assert_eq!(session.verify(), Vec::<String>::new());
    let lineages = session.finish().lineages();
    assert_eq!(lineages.len(), 2);

    // wZoom^T on OG is embarrassingly parallel: per-entity window folds,
    // zero exchanges on either relation (the §5 OG story).
    check(
        lineages[0].0,
        &lineages[0].1,
        0,
        0,
        "\
#1 flat_map [flat_map] unknown
  #2 source [source(p=2)] unknown rows=3
",
    );
    check(
        lineages[1].0,
        &lineages[1].1,
        0,
        0,
        "\
#1 flat_map [flat_map] unknown
  #2 source [source(p=2)] unknown rows=2
",
    );
}

/// The work-stealing scheduler is plan-invisible: running the same zoom
/// under the barrier and morsel schedulers must yield identical lineage
/// fingerprints and identical analysis (shuffle counts, elisions, EXPLAIN
/// text). Morsel execution is a dispatch-time concern — it must never leak
/// into plan structure or the partitioning proofs the analyzer checks.
#[test]
fn steal_mode_is_plan_invisible() {
    use tgraph_dataflow::fingerprint;

    let rt = rt();
    let g = figure1_graph_stable_ids();

    let run = |stealing: bool| {
        rt.set_stealing(stealing);
        let before = rt.stats();
        let session = Session::load(&rt, &g, ReprKind::Ve).azoom(&aspec());
        assert_eq!(session.verify(), Vec::<String>::new());
        let lineages = session.finish().lineages();
        let fps: Vec<(String, u64)> = lineages
            .iter()
            .map(|(name, root)| (name.to_string(), fingerprint(root)))
            .collect();
        let renders: Vec<String> = lineages
            .iter()
            .map(|(_, root)| {
                let a = analyze(root);
                assert!(a.is_sound(), "steal-mode plan must analyze clean");
                a.render()
            })
            .collect();
        (fps, renders, rt.stats().since(&before))
    };

    let (fp_barrier, an_barrier, d_barrier) = run(false);
    let (fp_steal, an_steal, d_steal) = run(true);
    rt.set_stealing(false);

    assert_eq!(
        fp_barrier, fp_steal,
        "fingerprints must not see the scheduler"
    );
    assert_eq!(an_barrier, an_steal, "analysis must not see the scheduler");
    assert_eq!(d_barrier.morsels, 0, "barrier run must not execute morsels");
    assert!(
        d_steal.morsels > 0,
        "steal run must actually have executed morsels"
    );
}

/// The exchange layer is plan-invisible: running the same zoom with buckets
/// moved through the typed in-process path and through the framed wire codec
/// must yield identical lineage fingerprints and identical analysis. How
/// bytes move between map and reduce sides is a transport concern — it must
/// never leak into plan structure, row counts, or the partitioning proofs.
#[test]
fn exchange_is_plan_invisible() {
    use std::sync::Arc;
    use tgraph_dataflow::{fingerprint, InProcessExchange};

    let g = figure1_graph_stable_ids();

    let run = |framed: bool| {
        let rt = rt();
        if framed {
            rt.set_exchange(Arc::new(InProcessExchange::new(
                true,
                rt.exchange_counters(),
            )));
        }
        let before = rt.stats();
        let session = Session::load(&rt, &g, ReprKind::Ve).azoom(&aspec());
        assert_eq!(session.verify(), Vec::<String>::new());
        let lineages = session.finish().lineages();
        let fps: Vec<(String, u64)> = lineages
            .iter()
            .map(|(name, root)| (name.to_string(), fingerprint(root)))
            .collect();
        let renders: Vec<String> = lineages
            .iter()
            .map(|(_, root)| {
                let a = analyze(root);
                assert!(a.is_sound(), "framed-exchange plan must analyze clean");
                a.render()
            })
            .collect();
        (fps, renders, rt.stats().since(&before))
    };

    let (fp_typed, an_typed, d_typed) = run(false);
    let (fp_framed, an_framed, d_framed) = run(true);

    assert_eq!(
        fp_typed, fp_framed,
        "fingerprints must not see the exchange"
    );
    assert_eq!(an_typed, an_framed, "analysis must not see the exchange");
    assert_eq!(
        d_typed.frames_sent, 0,
        "typed path must not move wire frames"
    );
    assert!(
        d_framed.frames_sent > 0,
        "framed run must actually have moved wire frames"
    );
    assert!(d_framed.bytes_exchanged > 0);
}
