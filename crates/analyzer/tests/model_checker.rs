//! Integration test: the exchange protocol model checker, driven through
//! the public API exactly as the CI `model-smoke` job drives the
//! `tgraph-model` binary.

use tgraph_analyze::model::{explore, mutant_suite, replay, ModelConfig, ModelOp};

/// The PR-CI smoke configuration must exhaust the 2-shard space (route and
/// gather) with zero invariant violations on the real transition logic.
#[test]
fn smoke_configs_explore_clean_and_exhaustively() {
    for op in [ModelOp::Route, ModelOp::Gather] {
        let cfg = ModelConfig {
            op,
            ..ModelConfig::default()
        };
        let result = explore(&cfg);
        assert!(result.complete, "{op:?}: smoke space must be exhausted");
        if let Some(cex) = result.violation {
            panic!("{op:?}: real logic violated an invariant:\n{}", cex.trace);
        }
        assert!(result.states > 100, "{op:?}: suspiciously small space");
    }
}

/// Every seeded protocol mutant must be caught, and its counterexample
/// seed must replay to a byte-identical trace re-tripping the same
/// violation — the "seed -> byte-identical re-run" contract.
#[test]
fn all_mutants_caught_with_byte_identical_replays() {
    let outcomes = mutant_suite();
    assert_eq!(outcomes.len(), 5, "expected five seeded mutants");
    for outcome in outcomes {
        let name = outcome.mutation.name();
        let cex = outcome
            .caught
            .unwrap_or_else(|| panic!("mutant {name} escaped the checker"));
        let (rendered, violation) =
            replay(&cex.seed).unwrap_or_else(|e| panic!("{name}: replay failed: {e}"));
        assert_eq!(rendered, cex.trace, "{name}: replay not byte-identical");
        assert_eq!(violation, Some(cex.violation), "{name}: violation differs");
        assert!(
            cex.trace.contains("violation: "),
            "{name}: trace missing violation line"
        );
    }
}

/// Larger frame batches stay clean too: the FIN count logic must not
/// depend on the one-frame-per-peer special case.
#[test]
fn multi_frame_batches_are_clean() {
    let result = explore(&ModelConfig {
        frames_per_peer: 2,
        kills: 1,
        corrupts: 0,
        drops: 1,
        dups: 0,
        depth: 22,
        ..ModelConfig::default()
    });
    assert!(result.complete);
    assert!(
        result.violation.is_none(),
        "violation: {:?}",
        result.violation.map(|c| c.trace)
    );
}
