//! Golden test for lint output formatting: the Display-rendered findings
//! for the seeded fixtures must match the checked-in golden file exactly.
//! This pins the `path:line: [rule] message` contract that CI log scrapers
//! and the fixture docs rely on.
//!
//! To refresh after an intentional format change, run with
//! `BLESS_LINT_GOLDEN=1` and commit the rewritten golden file.

use std::path::Path;

use tgraph_analyze::{lint_source, RuleSet};

#[test]
fn seeded_fixture_output_matches_golden() {
    let mut findings = lint_source(
        Path::new("crates/fake/src/lib.rs"),
        include_str!("fixtures/seeded_violations.rs.txt"),
        RuleSet::all(),
    );
    findings.extend(lint_source(
        Path::new("crates/fake/src/locks.rs"),
        include_str!("fixtures/lock_order_violation.rs.txt"),
        RuleSet::all(),
    ));
    let rendered: String = findings.iter().map(|f| format!("{f}\n")).collect();

    let golden_path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/lint_golden.txt");
    if std::env::var_os("BLESS_LINT_GOLDEN").is_some() {
        std::fs::write(&golden_path, &rendered).expect("write golden");
        return;
    }
    let golden = std::fs::read_to_string(&golden_path).expect("read golden");
    assert_eq!(
        rendered, golden,
        "lint output drifted from the golden file; rerun with BLESS_LINT_GOLDEN=1 if intentional"
    );
}
