//! `tgraph-model` — deterministic model checker for the exchange protocol.
//!
//! Usage:
//!
//! ```text
//! tgraph-model [--shards N] [--op route|gather] [--frames N]
//!              [--depth N] [--budget N]
//!              [--kills N] [--corrupts N] [--drops N] [--dups N]
//!              [--mutants] [--replay SEED] [--trace-out PATH]
//! ```
//!
//! Default mode explores the real protocol logic and exits non-zero on any
//! invariant violation (writing the counterexample trace to `--trace-out`
//! if given). `--mutants` additionally runs the seeded-mutant self-test:
//! every mutant must be caught. `--replay SEED` re-runs a counterexample
//! seed and prints its byte-identical trace.

use std::process::ExitCode;

use tgraph_analyze::model::{explore, mutant_suite, replay, ModelConfig, ModelOp};

struct Args {
    cfg: ModelConfig,
    mutants: bool,
    replay: Option<String>,
    trace_out: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        cfg: ModelConfig::default(),
        mutants: false,
        replay: None,
        trace_out: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> Result<String, String> {
            it.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--shards" => args.cfg.shards = parse_num(&value("--shards")?)?,
            "--frames" => args.cfg.frames_per_peer = parse_num(&value("--frames")?)?,
            "--depth" => args.cfg.depth = parse_num(&value("--depth")?)?,
            "--budget" => args.cfg.max_states = parse_num(&value("--budget")?)?,
            "--kills" => args.cfg.kills = parse_num(&value("--kills")?)? as u32,
            "--corrupts" => args.cfg.corrupts = parse_num(&value("--corrupts")?)? as u32,
            "--drops" => args.cfg.drops = parse_num(&value("--drops")?)? as u32,
            "--dups" => args.cfg.dups = parse_num(&value("--dups")?)? as u32,
            "--op" => {
                args.cfg.op = match value("--op")?.as_str() {
                    "route" => ModelOp::Route,
                    "gather" => ModelOp::Gather,
                    other => return Err(format!("unknown --op `{other}` (route|gather)")),
                }
            }
            "--mutants" => args.mutants = true,
            "--replay" => args.replay = Some(value("--replay")?),
            "--trace-out" => args.trace_out = Some(value("--trace-out")?),
            "--help" | "-h" => {
                println!(
                    "tgraph-model: exchange protocol model checker\n\
                     flags: --shards N --op route|gather --frames N --depth N --budget N\n\
                     \x20      --kills N --corrupts N --drops N --dups N\n\
                     \x20      --mutants --replay SEED --trace-out PATH"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag `{other}` (try --help)")),
        }
    }
    if args.cfg.shards < 2 {
        return Err("--shards must be >= 2".to_string());
    }
    Ok(args)
}

fn parse_num(s: &str) -> Result<usize, String> {
    s.parse::<usize>()
        .map_err(|_| format!("`{s}` is not a number"))
}

fn save_trace(trace_out: Option<&str>, trace: &str) {
    if let Some(path) = trace_out {
        match std::fs::write(path, trace) {
            Ok(()) => eprintln!("tgraph-model: counterexample trace written to {path}"),
            Err(e) => eprintln!("tgraph-model: failed to write {path}: {e}"),
        }
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("tgraph-model: {e}");
            return ExitCode::from(2);
        }
    };

    if let Some(seed) = &args.replay {
        return match replay(seed) {
            Ok((trace, violation)) => {
                print!("{trace}");
                save_trace(args.trace_out.as_deref(), &trace);
                match violation {
                    Some(_) => ExitCode::from(1),
                    None => ExitCode::SUCCESS,
                }
            }
            Err(e) => {
                eprintln!("tgraph-model: {e}");
                ExitCode::from(2)
            }
        };
    }

    let mut failed = false;

    let result = explore(&args.cfg);
    let coverage = if result.complete {
        "state space exhausted"
    } else {
        "bounded (frontier truncated)"
    };
    match &result.violation {
        None => println!(
            "tgraph-model: real logic clean — {} shard(s), {} state(s) visited, {coverage}",
            args.cfg.shards, result.states
        ),
        Some(cex) => {
            failed = true;
            println!(
                "tgraph-model: INVARIANT VIOLATION on real logic after {} state(s):",
                result.states
            );
            print!("{}", cex.trace);
            save_trace(args.trace_out.as_deref(), &cex.trace);
        }
    }

    if args.mutants {
        let mut traces = String::new();
        for outcome in mutant_suite() {
            match &outcome.caught {
                Some(cex) => {
                    println!(
                        "tgraph-model: mutant {:<26} caught ({}, {} state(s)) seed {}",
                        outcome.mutation.name(),
                        violation_code(&cex.violation),
                        outcome.states,
                        cex.seed
                    );
                    traces.push_str(&cex.trace);
                    traces.push('\n');
                }
                None => {
                    failed = true;
                    println!(
                        "tgraph-model: mutant {:<26} ESCAPED after {} state(s) — invariant blind spot",
                        outcome.mutation.name(),
                        outcome.states
                    );
                }
            }
        }
        if failed {
            save_trace(args.trace_out.as_deref(), &traces);
        }
    }

    if failed {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}

fn violation_code(v: &tgraph_analyze::model::Violation) -> &'static str {
    use tgraph_analyze::model::Violation;
    match v {
        Violation::Deadlock { .. } => "I1 deadlock",
        Violation::WrongFrames { .. } => "I2 wrong frames",
        Violation::FailedWithoutFault { .. } => "I3 unprovoked failure",
        Violation::CleanFinPeerFailed { .. } => "I4 clean-FIN failed",
        Violation::CorruptionUndetected { .. } => "I5 undetected corruption",
    }
}
