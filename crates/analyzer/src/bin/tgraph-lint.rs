//! Workspace lint driver: `cargo run -p tgraph-analyze --bin tgraph-lint`.
//!
//! Lints every library source file in the workspace against the rules in
//! [`tgraph_analyze::lint`] and exits non-zero when anything is flagged —
//! wired into CI as a required job.
//!
//! Optional argument: the workspace root to lint (defaults to the root that
//! contains this crate, so plain `cargo run` does the right thing).

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let root = std::env::args()
        .nth(1)
        .map(PathBuf::from)
        .unwrap_or_else(|| {
            // crates/analyzer → workspace root is two levels up.
            PathBuf::from(env!("CARGO_MANIFEST_DIR"))
                .join("../..")
                .canonicalize()
                .unwrap_or_else(|_| PathBuf::from("."))
        });
    let findings = tgraph_analyze::lint_workspace(&root);
    if findings.is_empty() {
        println!("tgraph-lint: clean ({} rules over crates/*/src)", 8);
        ExitCode::SUCCESS
    } else {
        for f in &findings {
            eprintln!("{f}");
        }
        eprintln!("tgraph-lint: {} finding(s)", findings.len());
        ExitCode::FAILURE
    }
}
