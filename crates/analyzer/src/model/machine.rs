//! The abstract machine: one N-shard exchange wave as a small-step
//! transition system.
//!
//! Each shard runs the *real* inbound transition logic — a
//! [`ProtocolCore`] from `tgraph-dataflow`, the same type the production
//! `TcpExchange` inbox wraps — while the outbound side (per-peer sends,
//! connection open, teardown) and the network are modeled abstractly:
//!
//! * One FIFO channel per ordered shard pair, mirroring one TCP connection
//!   per direction: within a channel order is preserved (TCP guarantees
//!   it); across channels delivery interleaves arbitrarily (the explorer
//!   enumerates every interleaving).
//! * A shard's send to one peer is a single atomic step that enqueues the
//!   connection handshake (`Hello`), that peer's data frames, and the
//!   counted FIN — mirroring `TcpExchange::ship`, which writes a peer's
//!   whole batch before moving to the next peer, in ascending peer order.
//! * Faults consume from a bounded budget: `Kill` (peer death at any
//!   protocol state, with EOF teardown on opened connections), and
//!   `Corrupt`/`Drop`/`Dup` of in-flight data frames (the codec-allowed
//!   corruptions: checksum divergence, mid-stream loss, stream
//!   duplication). FIN sentinels are never faulted directly — losing a FIN
//!   is indistinguishable from a slow peer and is the wall-clock timeout's
//!   job, which the model treats as out of scope (see `excused` below).
//!
//! Invariants are checked at every transition and at quiescence; a failed
//! check aborts exploration with a [`Violation`].

use std::collections::VecDeque;

use tgraph_dataflow::{ExchangeError, Frame, PollOutcome, ProtocolCore};

use super::{ModelConfig, ModelOp};

/// The single wave sequence number the model explores.
pub(crate) const SEQ: u64 = 1;

/// An invariant violation found in some explored state. Each variant is one
/// of the checked protocol guarantees.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Violation {
    /// **I1 — no deadlock.** At quiescence (no send or delivery enabled) a
    /// shard was still awaiting FINs that can no longer arrive, and the
    /// hang is not the legitimate wall-clock-timeout case (a peer that died
    /// before its connection ever reached the waiter).
    Deadlock {
        /// The stuck shard.
        shard: usize,
        /// Peers whose FINs are missing without excuse.
        missing: Vec<usize>,
    },
    /// **I2 — no lost or duplicated frame.** A wave completed `Ok` but its
    /// drained frames are not exactly the expected multiset.
    WrongFrames {
        /// The completing shard.
        shard: usize,
        /// What differed.
        detail: String,
    },
    /// **I3 — failures are fault-induced.** A wave failed although no fault
    /// was injected anywhere in the trace: the protocol lost a frame or
    /// poisoned itself on clean traffic.
    FailedWithoutFault {
        /// The failing shard.
        shard: usize,
        /// The typed error it failed with.
        error: String,
    },
    /// **I4 — clean-FIN peers never fail a wave.** A wave failed
    /// `PeerDied(p)` although `p`'s FIN had already been delivered: a peer
    /// that finished cleanly and then died must not poison the wave.
    CleanFinPeerFailed {
        /// The failing shard.
        shard: usize,
        /// The peer that had already FINed cleanly.
        peer: usize,
    },
    /// **I5 — checksum divergence is always detected.** A corrupted frame
    /// was delivered to a shard and its wave still completed `Ok`.
    CorruptionUndetected {
        /// The shard that absorbed the corruption silently.
        shard: usize,
    },
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Violation::Deadlock { shard, missing } => write!(
                f,
                "I1 deadlock: shard {shard} awaits FINs from {missing:?} that can never arrive"
            ),
            Violation::WrongFrames { shard, detail } => {
                write!(
                    f,
                    "I2 wrong frames: shard {shard} completed Ok but {detail}"
                )
            }
            Violation::FailedWithoutFault { shard, error } => write!(
                f,
                "I3 unprovoked failure: shard {shard} failed with no injected fault: {error}"
            ),
            Violation::CleanFinPeerFailed { shard, peer } => write!(
                f,
                "I4 clean-FIN peer failed a wave: shard {shard} failed PeerDied({peer}) \
                 although shard {peer}'s FIN was already delivered"
            ),
            Violation::CorruptionUndetected { shard } => write!(
                f,
                "I5 undetected corruption: shard {shard} completed Ok after a corrupt frame \
                 was delivered to it"
            ),
        }
    }
}

/// One message on a directed channel. `Hello` models the TCP connect plus
/// `TGXH` handshake; `Eof` models the connection closing (peer death or
/// teardown after a failed wave).
#[derive(Clone, Debug)]
pub(crate) enum Msg {
    /// Connection open + handshake identifying the sender shard.
    Hello,
    /// A data frame.
    Data(Frame),
    /// The counted FIN sentinel.
    Fin(Frame),
    /// Connection closed by the sender side.
    Eof,
}

impl Msg {
    fn tag(&self) -> u8 {
        match self {
            Msg::Hello => 0,
            Msg::Data(_) => 1,
            Msg::Fin(_) => 2,
            Msg::Eof => 3,
        }
    }
}

/// One directed channel (one TCP connection): FIFO, opened by the sender's
/// per-peer send step.
#[derive(Clone, Debug, Default)]
struct Chan {
    opened: bool,
    queue: VecDeque<Msg>,
}

/// Where a shard is in its wave.
#[derive(Clone, Debug)]
enum Phase {
    /// Still pushing per-peer batches; `next` is the next peer index to
    /// send to (ascending, skipping self — the order `ship` uses).
    Sending {
        /// Next peer to send to.
        next: usize,
    },
    /// All batches sent; looping `ProtocolCore::poll` under the condvar.
    Awaiting,
    /// Wave completed; frames drained and verified.
    DoneOk,
    /// Wave failed with a typed error.
    DoneErr(ExchangeError),
    /// Killed by fault injection.
    Killed,
}

impl Phase {
    fn digest_tag(&self) -> u8 {
        match self {
            Phase::Sending { .. } => 0,
            Phase::Awaiting => 1,
            Phase::DoneOk => 2,
            Phase::DoneErr(_) => 3,
            Phase::Killed => 4,
        }
    }
}

#[derive(Clone, Debug)]
struct Shard {
    core: ProtocolCore,
    phase: Phase,
}

/// One schedulable step. The explorer enumerates the enabled events of a
/// state in a deterministic order; a trace is the sequence of chosen
/// indices into that enumeration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Event {
    /// Shard `shard` pushes its next per-peer batch (or fails typed if that
    /// peer is dead).
    Send {
        /// The sending shard.
        shard: usize,
    },
    /// The receiver-side reader consumes the head message of channel
    /// `from -> to`.
    Deliver {
        /// Sending end of the channel.
        from: usize,
        /// Receiving end of the channel.
        to: usize,
    },
    /// Fault: shard dies at its current protocol state.
    Kill {
        /// The shard to kill.
        shard: usize,
    },
    /// Fault: the head data frame of `from -> to` arrives with a diverged
    /// checksum.
    Corrupt {
        /// Sending end of the channel.
        from: usize,
        /// Receiving end of the channel.
        to: usize,
    },
    /// Fault: the head data frame of `from -> to` is lost in transit.
    Drop {
        /// Sending end of the channel.
        from: usize,
        /// Receiving end of the channel.
        to: usize,
    },
    /// Fault: the head data frame of `from -> to` is duplicated in-stream.
    Dup {
        /// Sending end of the channel.
        from: usize,
        /// Receiving end of the channel.
        to: usize,
    },
}

impl Event {
    /// Whether this event is a protocol step (send/deliver) rather than an
    /// injected fault. Quiescence is "no protocol step enabled".
    pub(crate) fn is_protocol(&self) -> bool {
        matches!(self, Event::Send { .. } | Event::Deliver { .. })
    }
}

impl std::fmt::Display for Event {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Event::Send { shard } => write!(f, "send: shard {shard} pushes its next peer batch"),
            Event::Deliver { from, to } => write!(f, "deliver: head of channel {from} -> {to}"),
            Event::Kill { shard } => write!(f, "fault: kill shard {shard}"),
            Event::Corrupt { from, to } => {
                write!(f, "fault: corrupt head data frame of {from} -> {to}")
            }
            Event::Drop { from, to } => write!(f, "fault: drop head data frame of {from} -> {to}"),
            Event::Dup { from, to } => {
                write!(f, "fault: duplicate head data frame of {from} -> {to}")
            }
        }
    }
}

/// Full model state: N shards (each embedding a real [`ProtocolCore`]),
/// the channel matrix, remaining fault budgets, and the ground-truth
/// delivery flags the invariants compare the cores against.
#[derive(Clone, Debug)]
pub(crate) struct World {
    shards: Vec<Shard>,
    /// `chans[from * n + to]`; the diagonal is unused.
    chans: Vec<Chan>,
    op: ModelOp,
    frames_per_peer: usize,
    kills: u32,
    corrupts: u32,
    drops: u32,
    dups: u32,
    faults_used: u32,
    /// Ground truth: `hello_delivered[to * n + from]` — the handshake of
    /// `from`'s connection reached `to`'s acceptor.
    hello_delivered: Vec<bool>,
    /// Ground truth: `fin_delivered[to * n + from]` — `from`'s FIN was
    /// handed to `to`'s inbox (regardless of what the core did with it).
    fin_delivered: Vec<bool>,
    /// Per receiver: a corrupted frame was delivered to it.
    corrupted: Vec<bool>,
}

impl World {
    /// The initial state for a configuration: every shard about to send its
    /// first peer batch, channels closed, budgets full.
    pub(crate) fn new(cfg: &ModelConfig) -> World {
        let n = cfg.shards;
        let shards = (0..n)
            .map(|_| {
                let mut core = ProtocolCore::new();
                core.set_mutation(cfg.mutation);
                Shard {
                    core,
                    phase: Phase::Sending { next: 0 },
                }
            })
            .collect();
        World {
            shards,
            chans: (0..n * n).map(|_| Chan::default()).collect(),
            op: cfg.op,
            frames_per_peer: cfg.frames_per_peer,
            kills: cfg.kills,
            corrupts: cfg.corrupts,
            drops: cfg.drops,
            dups: cfg.dups,
            faults_used: 0,
            hello_delivered: vec![false; n * n],
            fin_delivered: vec![false; n * n],
            corrupted: vec![false; n],
        }
    }

    fn n(&self) -> usize {
        self.shards.len()
    }

    /// The data frames shard `src` sends to peer `dst` under the configured
    /// operation, in send order. Payloads are deterministic functions of
    /// `(src, bucket)` so the completion invariant can check content, not
    /// just keys.
    fn batch(&self, src: usize, dst: usize) -> Vec<Frame> {
        let f = self.frames_per_peer as u64;
        let (src64, dst64) = (src as u64, dst as u64);
        let buckets: Vec<u64> = match self.op {
            // Route: one frame per destination-owned bucket; shard `p` owns
            // buckets [p*f, (p+1)*f).
            ModelOp::Route => (dst64 * f..(dst64 + 1) * f).collect(),
            // Gather: broadcast of the sender's own frames; bucket ids are
            // tiled by sender so (src, bucket) keys stay globally unique.
            ModelOp::Gather => (src64 * f..(src64 + 1) * f).collect(),
        };
        buckets
            .into_iter()
            .map(|bucket| Frame {
                seq: SEQ,
                src: src64,
                bucket,
                records: 1,
                payload: vec![src as u8, bucket as u8],
            })
            .collect()
    }

    /// The exact multiset of remote frames shard `me` must hold when its
    /// wave completes: every peer's batch addressed to it.
    fn expected_frames(&self, me: usize) -> Vec<(u64, u64, u64, Vec<u8>)> {
        let mut want: Vec<(u64, u64, u64, Vec<u8>)> = (0..self.n())
            .filter(|s| *s != me)
            .flat_map(|s| self.batch(s, me))
            .map(|f| (f.src, f.bucket, f.records, f.payload))
            .collect();
        want.sort();
        want
    }

    /// Enumerates the enabled events of this state in a deterministic
    /// order. Traces index into this enumeration.
    pub(crate) fn enabled(&self) -> Vec<Event> {
        let n = self.n();
        let mut out = Vec::new();
        for (s, shard) in self.shards.iter().enumerate() {
            if matches!(shard.phase, Phase::Sending { .. }) {
                out.push(Event::Send { shard: s });
            }
        }
        for from in 0..n {
            for to in 0..n {
                if from != to
                    && !self.chans[from * n + to].queue.is_empty()
                    && !matches!(self.shards[to].phase, Phase::Killed)
                {
                    out.push(Event::Deliver { from, to });
                }
            }
        }
        if self.kills > 0 {
            for (s, shard) in self.shards.iter().enumerate() {
                if matches!(shard.phase, Phase::Sending { .. } | Phase::Awaiting) {
                    out.push(Event::Kill { shard: s });
                }
            }
        }
        // Faults target live in-flight data frames only: a killed
        // receiver's channel is inert, and FIN sentinels are never faulted
        // (see the module docs).
        for from in 0..n {
            for to in 0..n {
                if from == to {
                    continue;
                }
                let head_is_data =
                    matches!(self.chans[from * n + to].queue.front(), Some(Msg::Data(_)));
                if !head_is_data || matches!(self.shards[to].phase, Phase::Killed) {
                    continue;
                }
                if self.corrupts > 0 {
                    out.push(Event::Corrupt { from, to });
                }
                if self.drops > 0 {
                    out.push(Event::Drop { from, to });
                }
                if self.dups > 0 {
                    out.push(Event::Dup { from, to });
                }
            }
        }
        out
    }

    /// Applies one event. Returns the first invariant violated by the
    /// resulting transition, if any.
    pub(crate) fn apply(&mut self, ev: Event) -> Option<Violation> {
        match ev {
            Event::Send { shard } => self.step_send(shard),
            Event::Deliver { from, to } => self.step_deliver(from, to),
            Event::Kill { shard } => {
                self.faults_used += 1;
                self.kills -= 1;
                self.shards[shard].phase = Phase::Killed;
                self.close_outgoing(shard);
                None
            }
            Event::Corrupt { from, to } => {
                self.faults_used += 1;
                self.corrupts -= 1;
                let n = self.n();
                let frame = self.chans[from * n + to].queue.pop_front();
                let detail = match frame {
                    Some(Msg::Data(f)) => format!(
                        "checksum mismatch on frame seq {} src {} bucket {}",
                        f.seq, f.src, f.bucket
                    ),
                    _ => "checksum mismatch".to_string(),
                };
                self.corrupted[to] = true;
                // Mirrors read_frame: a bad checksum is unattributable
                // framing damage and poisons the whole inbox.
                self.shards[to].core.poison(ExchangeError::Frame { detail });
                self.poll_if_awaiting(to)
            }
            Event::Drop { from, to } => {
                self.faults_used += 1;
                self.drops -= 1;
                let n = self.n();
                self.chans[from * n + to].queue.pop_front();
                None
            }
            Event::Dup { from, to } => {
                self.faults_used += 1;
                self.dups -= 1;
                let n = self.n();
                let chan = &mut self.chans[from * n + to];
                if let Some(Msg::Data(f)) = chan.queue.front() {
                    let copy = Msg::Data(f.clone());
                    chan.queue.insert(1, copy);
                }
                None
            }
        }
    }

    /// Shard `s` pushes its batch to the next peer in ascending order, or
    /// fails typed if that peer's endpoint is dead (connect/write error).
    fn step_send(&mut self, s: usize) -> Option<Violation> {
        let n = self.n();
        let next = match self.shards[s].phase {
            Phase::Sending { next } => next,
            // Enumeration only enables Send for Sending shards.
            _ => return None,
        };
        let target = if next == s { next + 1 } else { next };
        if target >= n {
            self.shards[s].phase = Phase::Awaiting;
            return self.poll_if_awaiting(s);
        }
        if matches!(self.shards[target].phase, Phase::Killed) {
            let err = ExchangeError::Io {
                op: "write",
                peer: format!("shard {target}"),
                error: "connection refused (peer dead)".to_string(),
            };
            return self.fail_shard(s, err);
        }
        let batch = self.batch(s, target);
        let sent = batch.len() as u64;
        let chan = &mut self.chans[s * n + target];
        chan.opened = true;
        chan.queue.push_back(Msg::Hello);
        for f in batch {
            chan.queue.push_back(Msg::Data(f));
        }
        chan.queue
            .push_back(Msg::Fin(Frame::fin(SEQ, s as u64, sent)));
        let mut next = target + 1;
        if next == s {
            next += 1;
        }
        if next >= n {
            self.shards[s].phase = Phase::Awaiting;
            return self.poll_if_awaiting(s);
        }
        self.shards[s].phase = Phase::Sending { next };
        None
    }

    /// Delivers the head message of channel `from -> to` into the
    /// receiver's reader, mirroring `reader_loop`.
    fn step_deliver(&mut self, from: usize, to: usize) -> Option<Violation> {
        let n = self.n();
        let msg = self.chans[from * n + to].queue.pop_front()?;
        match msg {
            Msg::Hello => {
                self.hello_delivered[to * n + from] = true;
            }
            Msg::Data(f) => {
                // A detected violation poisons the core internally; the
                // reader just stops trusting the stream.
                let _ = self.shards[to].core.deposit(from as u64, f);
            }
            Msg::Fin(f) => {
                self.fin_delivered[to * n + from] = true;
                let _ = self.shards[to].core.deposit(from as u64, f);
            }
            Msg::Eof => {
                if self.hello_delivered[to * n + from] {
                    // Identified peer died: fail only its un-FINed waves.
                    self.shards[to].core.mark_shard_dead(
                        from as u64,
                        ExchangeError::PeerDied {
                            peer: format!("shard {from}"),
                            detail: "connection closed mid-wave".to_string(),
                        },
                    );
                } else {
                    // Pre-handshake death is unattributable: poison.
                    self.shards[to].core.poison(ExchangeError::PeerDied {
                        peer: format!("unidentified peer on shard {to}"),
                        detail: "EOF before handshake".to_string(),
                    });
                }
            }
        }
        self.poll_if_awaiting(to)
    }

    /// Runs one `ProtocolCore::poll` for shard `s` if it is in the condvar
    /// loop, applying the completion/failure invariants on the outcome.
    /// This is exactly when the real inbox polls: the condvar wakes on
    /// every push.
    fn poll_if_awaiting(&mut self, s: usize) -> Option<Violation> {
        if !matches!(self.shards[s].phase, Phase::Awaiting) {
            return None;
        }
        let want = self.n() - 1;
        match self.shards[s].core.poll(SEQ, want) {
            PollOutcome::Pending => None,
            PollOutcome::Ready(frames) => {
                self.shards[s].phase = Phase::DoneOk;
                if self.corrupted[s] {
                    return Some(Violation::CorruptionUndetected { shard: s });
                }
                let mut got: Vec<(u64, u64, u64, Vec<u8>)> = frames
                    .into_iter()
                    .map(|f| (f.src, f.bucket, f.records, f.payload))
                    .collect();
                got.sort();
                let want = self.expected_frames(s);
                if got != want {
                    let detail = format!(
                        "drained {} frame(s) {:?}, expected {} frame(s) {:?}",
                        got.len(),
                        got.iter().map(|g| (g.0, g.1)).collect::<Vec<_>>(),
                        want.len(),
                        want.iter().map(|w| (w.0, w.1)).collect::<Vec<_>>(),
                    );
                    return Some(Violation::WrongFrames { shard: s, detail });
                }
                None
            }
            PollOutcome::Failed(err) => self.fail_shard(s, err),
        }
    }

    /// Transitions shard `s` to a typed failure, closing its outbound
    /// connections (the real runtime unwinds the wave and drops the
    /// exchange, which peers observe as EOF), and checks the
    /// failure-side invariants.
    fn fail_shard(&mut self, s: usize, err: ExchangeError) -> Option<Violation> {
        self.shards[s].phase = Phase::DoneErr(err.clone());
        self.close_outgoing(s);
        if self.faults_used == 0 {
            return Some(Violation::FailedWithoutFault {
                shard: s,
                error: err.to_string(),
            });
        }
        if let ExchangeError::PeerDied { peer, .. } = &err {
            if let Some(p) = peer
                .strip_prefix("shard ")
                .and_then(|rest| rest.parse::<usize>().ok())
            {
                if p < self.n() && self.fin_delivered[s * self.n() + p] {
                    return Some(Violation::CleanFinPeerFailed { shard: s, peer: p });
                }
            }
        }
        None
    }

    /// Appends EOF to every connection shard `s` had opened: its readers
    /// are gone, so peers observe the close.
    fn close_outgoing(&mut self, s: usize) {
        let n = self.n();
        for p in 0..n {
            if p != s && self.chans[s * n + p].opened {
                self.chans[s * n + p].queue.push_back(Msg::Eof);
            }
        }
    }

    /// The quiescence invariant (**I1**): with no protocol step enabled, a
    /// shard still awaiting FINs is deadlocked — unless every missing peer
    /// died (or failed and tore down) before its handshake ever reached
    /// this shard, which is the one case the real protocol hands to the
    /// wall-clock timeout (a typed `ExchangeError::Timeout`).
    pub(crate) fn check_quiescent(&self) -> Option<Violation> {
        let n = self.n();
        for (s, shard) in self.shards.iter().enumerate() {
            if !matches!(shard.phase, Phase::Awaiting) {
                continue;
            }
            let missing: Vec<usize> = (0..n)
                .filter(|p| *p != s && !shard.core.has_fin(SEQ, *p as u64))
                .collect();
            let unexcused: Vec<usize> = missing
                .iter()
                .copied()
                .filter(|p| {
                    let peer_torn_down =
                        matches!(self.shards[*p].phase, Phase::Killed | Phase::DoneErr(_));
                    let hello_seen = self.hello_delivered[s * n + p];
                    // Excused only when torn down pre-handshake.
                    !peer_torn_down || hello_seen
                })
                .collect();
            if !unexcused.is_empty() {
                return Some(Violation::Deadlock {
                    shard: s,
                    missing: unexcused,
                });
            }
        }
        None
    }

    /// Canonical byte serialization for the explorer's visited-state set.
    /// Everything transition-relevant is included; nothing
    /// iteration-order-dependent is.
    pub(crate) fn digest(&self, out: &mut Vec<u8>) {
        let n = self.n();
        out.push(n as u8);
        out.extend_from_slice(&[
            self.kills as u8,
            self.corrupts as u8,
            self.drops as u8,
            self.dups as u8,
            self.faults_used.min(255) as u8,
        ]);
        for shard in &self.shards {
            out.push(shard.phase.digest_tag());
            if let Phase::Sending { next } = shard.phase {
                out.push(next as u8);
            }
            shard.core.digest(out);
            out.push(0xfe);
        }
        for chan in &self.chans {
            out.push(u8::from(chan.opened));
            out.push(chan.queue.len().min(255) as u8);
            for msg in &chan.queue {
                out.push(msg.tag());
                if let Msg::Data(f) | Msg::Fin(f) = msg {
                    out.extend_from_slice(&f.src.to_le_bytes());
                    out.extend_from_slice(&f.bucket.to_le_bytes());
                    out.extend_from_slice(&f.records.to_le_bytes());
                }
            }
        }
        for flag in self
            .hello_delivered
            .iter()
            .chain(self.fin_delivered.iter())
            .chain(self.corrupted.iter())
        {
            out.push(u8::from(*flag));
        }
    }

    /// One status line per shard, for trace rendering.
    pub(crate) fn render_status(&self) -> Vec<String> {
        self.shards
            .iter()
            .enumerate()
            .map(|(i, shard)| match &shard.phase {
                Phase::Sending { next } => {
                    format!("shard {i}: sending (next peer {next})")
                }
                Phase::Awaiting => format!("shard {i}: awaiting FINs"),
                Phase::DoneOk => format!("shard {i}: wave completed Ok"),
                Phase::DoneErr(err) => format!("shard {i}: wave failed: {err}"),
                Phase::Killed => format!("shard {i}: killed"),
            })
            .collect()
    }
}
