//! Deterministic model checker for the distributed exchange protocol.
//!
//! PR 6's `TcpExchange` is a concurrent wire protocol — handshakes,
//! epoch-stamped frames, counted FIN sentinels, per-source-shard death
//! tracking, an inbox condvar loop — and its failure modes (deadlock, lost
//! or duplicated frames, a wave stuck on a half-dead peer) are exactly the
//! ones unit tests can't reliably reach. This module checks the protocol
//! the way a model checker does:
//!
//! * The **transition logic under test is the real one**: each model shard
//!   embeds a [`ProtocolCore`](tgraph_dataflow::ProtocolCore), the same
//!   pure state machine the production inbox wraps under its mutex/condvar.
//! * A controlled scheduler ([`explore`]) drives **every interleaving** of
//!   an N-shard wave up to a bounded depth — per-peer sends, per-connection
//!   FIFO deliveries, and a bounded budget of injected faults (peer death
//!   at any protocol state; checksum corruption, loss, and duplication of
//!   in-flight data frames).
//! * **Invariants are checked at every state** (see
//!   [`Violation`]): no deadlock, no lost or duplicated frame, every wave
//!   completes or fails typed, clean-FIN peers never fail a wave, checksum
//!   divergence is always detected.
//! * A violation yields a **replayable counterexample**: a self-contained
//!   seed string that [`replay`] turns back into the identical linearized
//!   event trace.
//! * [`mutant_suite`] is the checker's self-test: it re-runs exploration
//!   against each seeded bug in
//!   [`Mutation::ALL`](tgraph_dataflow::Mutation) (installed through the
//!   protocol core's test-only hook) and reports the counterexample that
//!   catches each one. A mutant that escapes means the invariants have a
//!   blind spot.
//!
//! The `tgraph-model` binary fronts all of this for CI: bounded smoke
//! exploration on PRs, full-depth nightly runs, `--replay <seed>` for
//! debugging a counterexample artifact.

mod explore;
mod machine;
mod trace;

pub use machine::Violation;

use tgraph_dataflow::Mutation;

/// Which exchange operation the modeled wave performs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ModelOp {
    /// `Exchange::route`: each frame goes to the shard owning its bucket.
    Route,
    /// `Exchange::gather`: every frame is broadcast to all peers.
    Gather,
}

/// A model configuration: topology, workload shape, fault budget, seeded
/// mutation, and exploration bounds.
#[derive(Clone, Debug)]
pub struct ModelConfig {
    /// Number of shards (>= 2).
    pub shards: usize,
    /// The exchange operation to model.
    pub op: ModelOp,
    /// Data frames each shard sends to each peer.
    pub frames_per_peer: usize,
    /// Seeded protocol bug to install in every shard's core (`None` = the
    /// real transition logic).
    pub mutation: Option<Mutation>,
    /// Fault budget: peer deaths.
    pub kills: u32,
    /// Fault budget: checksum corruptions of in-flight data frames.
    pub corrupts: u32,
    /// Fault budget: in-transit losses of data frames.
    pub drops: u32,
    /// Fault budget: in-stream duplications of data frames.
    pub dups: u32,
    /// Maximum trace length (events) to explore.
    pub depth: usize,
    /// Maximum distinct states to visit before truncating.
    pub max_states: usize,
}

impl Default for ModelConfig {
    /// The PR-CI smoke configuration: 2 shards, one frame per peer, one
    /// fault of every kind, bounds that exhaust the space in well under a
    /// second.
    fn default() -> Self {
        ModelConfig {
            shards: 2,
            op: ModelOp::Route,
            frames_per_peer: 1,
            mutation: None,
            kills: 1,
            corrupts: 1,
            drops: 1,
            dups: 1,
            depth: 20,
            max_states: 200_000,
        }
    }
}

/// A counterexample: an invariant violation plus the replayable seed and
/// rendered linearized trace that reach it.
#[derive(Clone, Debug)]
pub struct Counterexample {
    /// Self-contained replay seed (config + event path); feed to
    /// [`replay`] or `tgraph-model --replay`.
    pub seed: String,
    /// The violated invariant.
    pub violation: Violation,
    /// Human-readable linearized event trace.
    pub trace: String,
}

/// The result of exploring one configuration.
#[derive(Clone, Debug)]
pub struct Exploration {
    /// Distinct states visited.
    pub states: usize,
    /// Whether the state space was exhausted within the depth and state
    /// bounds (`false` = some frontier was truncated).
    pub complete: bool,
    /// The first invariant violation found, if any.
    pub violation: Option<Counterexample>,
}

/// Explores every interleaving of `cfg` within its bounds and returns the
/// first invariant violation, if any.
pub fn explore(cfg: &ModelConfig) -> Exploration {
    explore::explore(cfg)
}

/// Re-runs a counterexample seed from scratch, returning the rendered
/// trace (byte-identical to the original) and the violation it re-trips.
/// Errors on malformed or diverging seeds.
pub fn replay(seed: &str) -> Result<(String, Option<Violation>), String> {
    trace::replay_seed(seed)
}

/// The outcome of hunting one seeded mutant.
#[derive(Clone, Debug)]
pub struct MutantOutcome {
    /// The seeded bug.
    pub mutation: Mutation,
    /// The counterexample that caught it (`None` = the mutant escaped,
    /// which is a checker bug).
    pub caught: Option<Counterexample>,
    /// Distinct states visited before the verdict.
    pub states: usize,
}

/// The minimal fault environment in which each seeded mutant is
/// observable. Keeping each hunt small makes the suite fast and the
/// counterexamples short.
fn mutant_config(m: Mutation) -> ModelConfig {
    let quiet = ModelConfig {
        kills: 0,
        corrupts: 0,
        drops: 0,
        dups: 0,
        depth: 14,
        max_states: 500_000,
        ..ModelConfig::default()
    };
    match m {
        // A dropped FIN deadlocks even a faultless 2-shard wave.
        Mutation::DropFin => ModelConfig {
            mutation: Some(m),
            ..quiet
        },
        // The premature death check only misfires when a peer dies after
        // FINing while the waiter is still mid-send — which needs a third
        // shard to keep the waiter in its sending phase.
        Mutation::PrematureDeathMark => ModelConfig {
            shards: 3,
            kills: 1,
            mutation: Some(m),
            depth: 16,
            ..quiet
        },
        // A duplicated in-flight frame must poison; accepted it lands in
        // the drained wave.
        Mutation::AcceptDuplicate => ModelConfig {
            dups: 1,
            mutation: Some(m),
            ..quiet
        },
        // A dropped in-flight frame must trip the FIN count check; ignored
        // it completes the wave short.
        Mutation::IgnoreFinCount => ModelConfig {
            drops: 1,
            mutation: Some(m),
            ..quiet
        },
        // A corrupt frame must fail the wave; with poison swallowed the
        // wave hangs or completes as if nothing happened.
        Mutation::IgnorePoison => ModelConfig {
            corrupts: 1,
            mutation: Some(m),
            ..quiet
        },
    }
}

/// Runs the mutant self-test: explores each seeded protocol bug in its
/// minimal fault environment. Every mutant must come back `caught`.
pub fn mutant_suite() -> Vec<MutantOutcome> {
    Mutation::ALL
        .iter()
        .map(|m| {
            let cfg = mutant_config(*m);
            let result = explore(&cfg);
            MutantOutcome {
                mutation: *m,
                caught: result.violation,
                states: result.states,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn real_logic_is_clean_and_exhausted_at_two_shards() {
        let result = explore(&ModelConfig::default());
        assert!(result.complete, "2-shard smoke space must be exhausted");
        if let Some(cex) = &result.violation {
            panic!("real protocol logic violated an invariant:\n{}", cex.trace);
        }
    }

    #[test]
    fn gather_op_is_clean_too() {
        let result = explore(&ModelConfig {
            op: ModelOp::Gather,
            ..ModelConfig::default()
        });
        assert!(result.complete);
        assert!(result.violation.is_none());
    }

    #[test]
    fn every_mutant_is_caught_with_a_replayable_trace() {
        for outcome in mutant_suite() {
            let cex = match outcome.caught {
                Some(cex) => cex,
                None => panic!("mutant {} escaped the checker", outcome.mutation.name()),
            };
            // The seed must replay to a byte-identical trace that re-trips
            // the same violation.
            let (rendered, violation) = match replay(&cex.seed) {
                Ok(r) => r,
                Err(e) => panic!("seed for {} failed to replay: {e}", outcome.mutation.name()),
            };
            assert_eq!(
                rendered,
                cex.trace,
                "replay of {} not byte-identical",
                outcome.mutation.name()
            );
            assert_eq!(violation.as_ref(), Some(&cex.violation));
        }
    }

    #[test]
    fn seed_round_trips() {
        let cfg = ModelConfig {
            shards: 3,
            op: ModelOp::Gather,
            mutation: Some(tgraph_dataflow::Mutation::DropFin),
            ..ModelConfig::default()
        };
        let seed = super::trace::seed_string(&cfg, &[0, 3, 1, 2]);
        let (parsed, path) = match super::trace::parse_seed(&seed) {
            Ok(p) => p,
            Err(e) => panic!("round trip failed: {e}"),
        };
        assert_eq!(path, vec![0, 3, 1, 2]);
        assert_eq!(parsed.shards, 3);
        assert_eq!(parsed.op, ModelOp::Gather);
        assert_eq!(parsed.mutation, Some(tgraph_dataflow::Mutation::DropFin));
    }

    #[test]
    fn bad_seeds_are_rejected() {
        for bad in [
            "nope",
            "tgxm1:shards=1:0",
            "tgxm1:bogus=3:0",
            "tgxm1:shards=2,op=warp:0",
            "tgxm1:shards=2:x.y",
        ] {
            assert!(super::trace::parse_seed(bad).is_err(), "accepted: {bad}");
        }
    }
}
