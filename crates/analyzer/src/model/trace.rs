//! Replayable counterexample traces.
//!
//! A counterexample is identified by a **seed string** that is fully
//! self-contained: it carries the model configuration and the path of
//! event-choice indices from the initial state. Because the machine
//! enumerates enabled events deterministically, feeding the seed back
//! through [`replay`](super::replay) re-runs the exact interleaving and
//! renders a byte-identical trace.
//!
//! Seed grammar (one line, no spaces):
//!
//! ```text
//! tgxm1:shards=2,op=route,frames=1,mutation=none,kills=1,corrupts=1,drops=1,dups=1,depth=20,states=200000:0.3.1.2
//! ```

use tgraph_dataflow::Mutation;

use super::machine::{Violation, World};
use super::{ModelConfig, ModelOp};

/// Magic prefix identifying seed-string version 1.
const SEED_MAGIC: &str = "tgxm1";

/// Encodes a configuration plus event path as a self-contained seed.
pub(crate) fn seed_string(cfg: &ModelConfig, path: &[usize]) -> String {
    let mutation = match cfg.mutation {
        None => "none",
        Some(m) => m.name(),
    };
    let path: Vec<String> = path.iter().map(|i| i.to_string()).collect();
    format!(
        "{SEED_MAGIC}:shards={},op={},frames={},mutation={},kills={},corrupts={},drops={},\
         dups={},depth={},states={}:{}",
        cfg.shards,
        match cfg.op {
            ModelOp::Route => "route",
            ModelOp::Gather => "gather",
        },
        cfg.frames_per_peer,
        mutation,
        cfg.kills,
        cfg.corrupts,
        cfg.drops,
        cfg.dups,
        cfg.depth,
        cfg.max_states,
        path.join(".")
    )
}

/// Parses a seed back into its configuration and event path.
pub(crate) fn parse_seed(seed: &str) -> Result<(ModelConfig, Vec<usize>), String> {
    let mut parts = seed.trim().splitn(3, ':');
    let magic = parts.next().unwrap_or_default();
    if magic != SEED_MAGIC {
        return Err(format!(
            "bad seed: expected `{SEED_MAGIC}:<config>:<path>`, got magic `{magic}`"
        ));
    }
    let kvs = parts.next().ok_or("bad seed: missing config section")?;
    let path_s = parts.next().ok_or("bad seed: missing path section")?;
    let mut cfg = ModelConfig::default();
    for kv in kvs.split(',') {
        let (key, value) = kv
            .split_once('=')
            .ok_or_else(|| format!("bad seed: config entry `{kv}` is not key=value"))?;
        let num = || -> Result<u32, String> {
            value
                .parse::<u32>()
                .map_err(|_| format!("bad seed: `{key}` value `{value}` is not a number"))
        };
        match key {
            "shards" => cfg.shards = num()? as usize,
            "frames" => cfg.frames_per_peer = num()? as usize,
            "kills" => cfg.kills = num()?,
            "corrupts" => cfg.corrupts = num()?,
            "drops" => cfg.drops = num()?,
            "dups" => cfg.dups = num()?,
            "depth" => cfg.depth = num()? as usize,
            "states" => cfg.max_states = num()? as usize,
            "op" => {
                cfg.op = match value {
                    "route" => ModelOp::Route,
                    "gather" => ModelOp::Gather,
                    other => return Err(format!("bad seed: unknown op `{other}`")),
                }
            }
            "mutation" => {
                cfg.mutation = match value {
                    "none" => None,
                    other => Some(
                        Mutation::ALL
                            .iter()
                            .copied()
                            .find(|m| m.name() == other)
                            .ok_or_else(|| format!("bad seed: unknown mutation `{other}`"))?,
                    ),
                }
            }
            other => return Err(format!("bad seed: unknown config key `{other}`")),
        }
    }
    if cfg.shards < 2 {
        return Err("bad seed: shards must be >= 2".to_string());
    }
    let mut path = Vec::new();
    if !path_s.is_empty() {
        for tok in path_s.split('.') {
            path.push(
                tok.parse::<usize>()
                    .map_err(|_| format!("bad seed: path element `{tok}` is not a number"))?,
            );
        }
    }
    Ok((cfg, path))
}

/// Renders the linearized event trace for `path`, ending with the final
/// per-shard status and the violation. Deterministic: rendering the same
/// seed twice yields identical bytes.
pub(crate) fn render_trace(cfg: &ModelConfig, path: &[usize], violation: &Violation) -> String {
    let mut out = String::new();
    out.push_str(&format!("seed: {}\n", seed_string(cfg, path)));
    out.push_str(&format!(
        "config: {} shards, op={}, {} frame(s) per peer, mutation={}, fault budget \
         kills={} corrupts={} drops={} dups={}\n",
        cfg.shards,
        match cfg.op {
            ModelOp::Route => "route",
            ModelOp::Gather => "gather",
        },
        cfg.frames_per_peer,
        cfg.mutation.map_or("none", |m| m.name()),
        cfg.kills,
        cfg.corrupts,
        cfg.drops,
        cfg.dups,
    ));
    out.push_str("trace:\n");
    let mut world = World::new(cfg);
    let mut tripped = false;
    for (step, idx) in path.iter().enumerate() {
        let events = world.enabled();
        match events.get(*idx) {
            Some(ev) => {
                out.push_str(&format!("  {:>3}. {ev}\n", step + 1));
                if world.apply(*ev).is_some() {
                    tripped = true;
                }
            }
            None => {
                out.push_str(&format!(
                    "  {:>3}. <invalid event index {idx} ({} enabled)>\n",
                    step + 1,
                    events.len()
                ));
                break;
            }
        }
    }
    out.push_str("final state:\n");
    for line in world.render_status() {
        out.push_str(&format!("  {line}\n"));
    }
    if !tripped && world.check_quiescent().is_none() {
        out.push_str("note: violation did not re-trip during rendering\n");
    }
    out.push_str(&format!("violation: {violation}\n"));
    out
}

/// Re-runs a seed from scratch and reports what happens: the rendered
/// trace plus whether a violation (re-)triggered. Used by
/// `tgraph-model --replay`.
pub(crate) fn replay_seed(seed: &str) -> Result<(String, Option<Violation>), String> {
    let (cfg, path) = parse_seed(seed)?;
    let mut world = World::new(&cfg);
    let mut violation = None;
    for (step, idx) in path.iter().enumerate() {
        let events = world.enabled();
        let ev = events.get(*idx).copied().ok_or_else(|| {
            format!(
                "seed diverged at step {}: event index {idx} but only {} event(s) enabled",
                step + 1,
                events.len()
            )
        })?;
        if let Some(v) = world.apply(ev) {
            violation = Some(v);
            if step + 1 != path.len() {
                return Err(format!(
                    "seed diverged: violation at step {} but path has {} steps",
                    step + 1,
                    path.len()
                ));
            }
        }
    }
    if violation.is_none() {
        violation = world.check_quiescent();
    }
    let rendered = match &violation {
        Some(v) => render_trace(&cfg, &path, v),
        None => {
            let mut out = String::new();
            out.push_str(&format!("seed: {}\n", seed_string(&cfg, &path)));
            out.push_str("no violation: trace replays clean\n");
            out.push_str("final state:\n");
            for line in world.render_status() {
                out.push_str(&format!("  {line}\n"));
            }
            out
        }
    };
    Ok((rendered, violation))
}
