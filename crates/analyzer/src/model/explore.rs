//! Bounded DFS over the machine's interleaving space.
//!
//! From the initial [`World`] the explorer enumerates the enabled events of
//! each state in a fixed deterministic order and recurses depth-first,
//! deduplicating revisited states on their canonical digest (interleavings
//! that commute converge on the same state and are explored once). The
//! search is bounded by an event-depth limit and a visited-state budget;
//! within those bounds every reachable interleaving — including every
//! placement of every budgeted fault — is covered, and the `complete` flag
//! reports whether any frontier was cut.
//!
//! Invariants are checked on every applied transition, plus the deadlock
//! check at every quiescent state (no send or delivery enabled — the point
//! where the real system would block on its condvar forever). The first
//! violation aborts the search and is returned with the event-index path
//! that reaches it, from which [`trace`](super::trace) builds the
//! replayable seed and the rendered counterexample.

use std::collections::HashSet;

use super::machine::{Violation, World};
use super::trace::{render_trace, seed_string};
use super::{Counterexample, Exploration, ModelConfig};

/// Explores every interleaving of `cfg` within its depth and state budget.
pub(crate) fn explore(cfg: &ModelConfig) -> Exploration {
    let mut search = Search {
        cfg,
        visited: HashSet::new(),
        states: 0usize,
        complete: true,
    };
    let root = World::new(cfg);
    let mut digest = Vec::new();
    root.digest(&mut digest);
    search.visited.insert(digest);
    search.states = 1;
    let mut path = Vec::new();
    let violation = search.dfs(&root, &mut path, 0);
    Exploration {
        states: search.states,
        complete: search.complete,
        violation: violation.map(|(path, violation)| {
            let seed = seed_string(cfg, &path);
            let trace = render_trace(cfg, &path, &violation);
            Counterexample {
                seed,
                violation,
                trace,
            }
        }),
    }
}

struct Search<'a> {
    cfg: &'a ModelConfig,
    visited: HashSet<Vec<u8>>,
    states: usize,
    complete: bool,
}

impl Search<'_> {
    fn dfs(
        &mut self,
        world: &World,
        path: &mut Vec<usize>,
        depth: usize,
    ) -> Option<(Vec<usize>, Violation)> {
        let events = world.enabled();
        if !events.iter().any(|e| e.is_protocol()) {
            // Quiescent: the real system is either done or blocked on its
            // condvar with nothing in flight.
            if let Some(v) = world.check_quiescent() {
                return Some((path.clone(), v));
            }
        }
        if events.is_empty() {
            return None;
        }
        if depth >= self.cfg.depth {
            self.complete = false;
            return None;
        }
        for (idx, ev) in events.iter().enumerate() {
            let mut next = world.clone();
            path.push(idx);
            if let Some(v) = next.apply(*ev) {
                let hit = (path.clone(), v);
                path.pop();
                return Some(hit);
            }
            let mut digest = Vec::new();
            next.digest(&mut digest);
            if self.visited.insert(digest) {
                if self.states >= self.cfg.max_states {
                    self.complete = false;
                } else {
                    self.states += 1;
                    if let Some(hit) = self.dfs(&next, path, depth + 1) {
                        path.pop();
                        return Some(hit);
                    }
                }
            }
            path.pop();
        }
        None
    }
}
