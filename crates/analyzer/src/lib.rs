//! # tgraph-analyze
//!
//! The correctness layer over the lazy dataflow engine: a **static plan
//! verifier** plus a **workspace source linter**.
//!
//! PR 1 made keyed operators elide shuffles whenever a
//! [`Partitioning::HashByKey`](tgraph_dataflow::Partitioning) tag claims the
//! data is already placed — but a wrong tag silently produces wrong
//! `aZoom^T`/`wZoom^T` results *while making benchmarks faster*. This crate
//! closes that hole from three directions:
//!
//! * [`verify::analyze`] walks the reified plan DAG
//!   ([`PlanNode`](tgraph_dataflow::PlanNode)) carried by every
//!   [`Dataset`](tgraph_dataflow::Dataset) and proves every elided exchange
//!   and partitioning claim *derivable* from the plan structure — rejecting
//!   unsound plans, flagging redundant work (duplicate subplans, redundant
//!   reshuffles, fusion breaks), rendering an EXPLAIN tree, and predicting
//!   per-exchange records/bytes moved for predicted-vs-actual reporting.
//! * **Checked execution mode** (`TGRAPH_CHECKED=1`, see
//!   [`Runtime::checked`](tgraph_dataflow::Runtime::checked)) verifies the
//!   same claims dynamically, record by record, at every elision point — and
//!   representation switches validate their TGraph against Definition 2.1.
//! * [`lint`] enforces repo-level source invariants (`no-unwrap`,
//!   `no-eager-collect`, `no-raw-retag`, and the concurrency rules
//!   `lock-order`, `condvar-wait-in-loop`, `no-blocking-in-reader`,
//!   `no-inline-poison-recovery`) via the `tgraph-lint` binary:
//!   `cargo run -p tgraph-analyze --bin tgraph-lint`.
//! * [`model`] is a deterministic **protocol model checker** for the
//!   distributed exchange layer: it drives the real
//!   [`ProtocolCore`](tgraph_dataflow::ProtocolCore) transition logic
//!   through every interleaving of an N-shard wave (with fault injection)
//!   and checks deadlock-freedom, frame conservation, typed failure, and
//!   clean-FIN invariants at every state, printing replayable
//!   counterexample traces. Run it via the `tgraph-model` binary.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod lint;
pub mod model;
pub mod verify;

pub use lint::{lint_source, lint_workspace, Finding, RuleSet};
pub use model::{
    explore, mutant_suite, replay, Counterexample, Exploration, ModelConfig, ModelOp,
    MutantOutcome, Violation,
};
pub use verify::{
    analyze, analyze_all, Analysis, Diagnostic, DiagnosticKind, PredictedMovement, Severity,
};
