//! The static plan verifier: walks a reified [`PlanNode`] DAG and
//! (a) **proves elisions sound** — every `ElidedShuffle { parts }` and every
//! `Claim` of `HashByKey { parts }` must be *derivable* from the input by
//! the partitioning-propagation rules below, otherwise the plan is rejected
//! with an error diagnostic;
//! (b) **flags redundant work** — duplicate narrow subplans that re-execute
//! per consumer, shuffles whose input is provably already partitioned the
//! same way, and materialization barriers that break narrow-chain fusion;
//! (c) **predicts data movement** — per-shuffle record/byte estimates
//! propagated from source sizes, for predicted-vs-actual reporting.
//!
//! ## Derivation rules
//!
//! A node *derives* `HashByKey { parts }` iff:
//! * it is a `Shuffle { parts }` or `Join { parts }` (an exchange placed it);
//! * it is a `Source` whose recorded tag is `HashByKey { parts }`
//!   (materialized data whose placement was established when it was built —
//!   the leaf trust anchor); or
//! * it is a partitioning-preserving operator (`Filter`, `MapValues`,
//!   `LocalCombine`, `Materialize`, `ElidedShuffle`, `Claim`) whose input
//!   derives `HashByKey { parts }`.
//!
//! Everything else (`Map`, `FlatMap`, `MapPartitions`, `Union`,
//! `SortByKey`, `Repartition`) derives `Unknown`: keys may have changed or
//! records moved, so no placement fact survives.

use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::Arc;
use tgraph_dataflow::{OpKind, Partitioning, PlanNode};

/// Diagnostic severity. Errors make the plan unsound; warnings flag
/// redundant work.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// The plan would compute wrong results (unsound elision or claim).
    Error,
    /// The plan is correct but does redundant work.
    Warning,
}

/// What the verifier found.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DiagnosticKind {
    /// A `Claim` of `HashByKey` that the derivation rules cannot establish.
    UnsoundClaim {
        /// The partitioning the claim asserts.
        claimed: Partitioning,
        /// What is actually derivable at that point.
        derived: Partitioning,
    },
    /// An `ElidedShuffle { parts }` whose input does not derive
    /// `HashByKey { parts }` — the engine skipped an exchange it needed.
    UnsoundElision {
        /// Partition count the elision assumed.
        parts: usize,
        /// What is actually derivable for the input.
        derived: Partitioning,
    },
    /// A `Shuffle { parts }` whose input already derives
    /// `HashByKey { parts }`: the exchange moves data that is provably in
    /// place (an elision the runtime tag system missed).
    RedundantShuffle {
        /// Partition count of the redundant exchange.
        parts: usize,
    },
    /// A narrow node consumed by more than one downstream operator: its
    /// fused chain re-executes once per consumer unless materialized.
    DuplicateSubplan {
        /// Number of consumers observed in the DAG.
        consumers: usize,
    },
    /// A `Materialize` barrier sandwiched between narrow operators,
    /// splitting what would otherwise fuse into one pass.
    FusionBreak,
}

impl DiagnosticKind {
    /// Stable kebab-case code used in rendered diagnostics.
    pub fn code(&self) -> &'static str {
        match self {
            DiagnosticKind::UnsoundClaim { .. } => "unsound-claim",
            DiagnosticKind::UnsoundElision { .. } => "unsound-elision",
            DiagnosticKind::RedundantShuffle { .. } => "redundant-shuffle",
            DiagnosticKind::DuplicateSubplan { .. } => "duplicate-subplan",
            DiagnosticKind::FusionBreak => "fusion-break",
        }
    }
}

/// One ranked finding, anchored to a display id in the EXPLAIN rendering.
#[derive(Clone, Debug)]
pub struct Diagnostic {
    /// Error or warning.
    pub severity: Severity,
    /// `#n` display id of the node in [`Analysis::explain`].
    pub node: usize,
    /// Operator label of the node.
    pub label: &'static str,
    /// The finding.
    pub kind: DiagnosticKind,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let sev = match self.severity {
            Severity::Error => "error",
            Severity::Warning => "warning",
        };
        write!(
            f,
            "{sev}[{}] at #{} {}: ",
            self.kind.code(),
            self.node,
            self.label
        )?;
        match &self.kind {
            DiagnosticKind::UnsoundClaim { claimed, derived } => write!(
                f,
                "claims {} but only {} is derivable",
                tag_str(*claimed),
                tag_str(*derived)
            ),
            DiagnosticKind::UnsoundElision { parts, derived } => write!(
                f,
                "elided an exchange assuming hash(p={parts}) but only {} is derivable",
                tag_str(*derived)
            ),
            DiagnosticKind::RedundantShuffle { parts } => write!(
                f,
                "input already derives hash(p={parts}); this exchange re-moves placed data"
            ),
            DiagnosticKind::DuplicateSubplan { consumers } => write!(
                f,
                "consumed by {consumers} operators; its fused chain re-executes per consumer \
                 (consider materialize())"
            ),
            DiagnosticKind::FusionBreak => write!(
                f,
                "materialization barrier between narrow operators splits a fusable chain"
            ),
        }
    }
}

/// Statically predicted data movement for the executed exchanges of a plan.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PredictedMovement {
    /// Exchanges (shuffles) in the plan.
    pub shuffles: usize,
    /// Exchanges for which a row estimate was derivable from the sources.
    pub estimated: usize,
    /// Predicted records moved, summed over estimated exchanges.
    pub records: u64,
    /// Predicted bytes moved (records × record width).
    pub bytes: u64,
}

/// The result of verifying one plan DAG.
#[derive(Clone, Debug)]
pub struct Analysis {
    /// Findings, errors first (then warnings), each in DAG display order.
    pub diagnostics: Vec<Diagnostic>,
    /// Executed exchanges in the plan.
    pub shuffles: usize,
    /// Elided exchanges in the plan.
    pub elisions: usize,
    /// Narrow operators in the plan.
    pub narrow_ops: usize,
    /// Distinct nodes in the DAG.
    pub nodes: usize,
    /// Predicted movement for the executed exchanges.
    pub predicted: PredictedMovement,
    /// EXPLAIN-style tree rendering of the DAG.
    pub explain: String,
    /// Stable structural fingerprint of the plan
    /// ([`tgraph_dataflow::lineage::fingerprint`]) — identical across
    /// processes for the same logical plan; the serving layer's cache key
    /// primitive.
    pub fingerprint: u64,
}

impl Analysis {
    /// Whether the plan is sound: no error-severity diagnostics.
    pub fn is_sound(&self) -> bool {
        self.diagnostics
            .iter()
            .all(|d| d.severity != Severity::Error)
    }

    /// The EXPLAIN tree followed by the ranked diagnostics.
    pub fn render(&self) -> String {
        let mut out = self.explain.clone();
        if self.diagnostics.is_empty() {
            out.push_str("-- no diagnostics\n");
        } else {
            for d in &self.diagnostics {
                let _ = writeln!(out, "{d}");
            }
        }
        let _ = writeln!(
            out,
            "-- {} nodes, {} shuffles ({} elided), predicted {} records / {} bytes \
             over {}/{} estimated exchanges",
            self.nodes,
            self.shuffles,
            self.elisions,
            self.predicted.records,
            self.predicted.bytes,
            self.predicted.estimated,
            self.predicted.shuffles,
        );
        let _ = writeln!(out, "-- fingerprint: {:#018x}", self.fingerprint);
        out
    }
}

fn tag_str(p: Partitioning) -> String {
    match p {
        Partitioning::Unknown => "unknown".to_string(),
        Partitioning::HashByKey { parts } => format!("hash(p={parts})"),
    }
}

fn op_str(op: OpKind) -> String {
    match op {
        OpKind::Source { parts } => format!("source(p={parts})"),
        OpKind::Map => "map".to_string(),
        OpKind::FlatMap => "flat_map".to_string(),
        OpKind::Filter => "filter".to_string(),
        OpKind::MapPartitions => "map_partitions".to_string(),
        OpKind::MapValues => "map_values".to_string(),
        OpKind::LocalCombine => "local_combine".to_string(),
        OpKind::Union => "union".to_string(),
        OpKind::Shuffle { parts } => format!("shuffle(p={parts})"),
        OpKind::ElidedShuffle { parts } => format!("elided_shuffle(p={parts})"),
        OpKind::Join { parts } => format!("join(p={parts})"),
        OpKind::SortByKey => "sort_by_key".to_string(),
        OpKind::Repartition { parts } => format!("repartition(p={parts})"),
        OpKind::Claim => "claim".to_string(),
        OpKind::Materialize => "materialize".to_string(),
    }
}

type NodeKey = usize;

fn key(n: &Arc<PlanNode>) -> NodeKey {
    Arc::as_ptr(n) as usize
}

/// Walk state shared by the passes.
struct Walk {
    /// Node → partitioning derivable at that node.
    derived: HashMap<NodeKey, Partitioning>,
    /// Node → display id (preorder, root-first).
    ids: HashMap<NodeKey, usize>,
    /// Node → number of distinct consumers.
    consumers: HashMap<NodeKey, usize>,
    next_id: usize,
}

/// Bottom-up partitioning derivation (memoized; iterative to tolerate deep
/// narrow chains).
fn derive(root: &Arc<PlanNode>, w: &mut Walk) -> Partitioning {
    if let Some(p) = w.derived.get(&key(root)) {
        return *p;
    }
    let mut stack: Vec<Arc<PlanNode>> = vec![Arc::clone(root)];
    while let Some(n) = stack.last().cloned() {
        if w.derived.contains_key(&key(&n)) {
            stack.pop();
            continue;
        }
        let pending: Vec<Arc<PlanNode>> = n
            .inputs
            .iter()
            .filter(|i| !w.derived.contains_key(&key(i)))
            .cloned()
            .collect();
        if !pending.is_empty() {
            stack.extend(pending);
            continue;
        }
        let p = match n.op {
            OpKind::Source { .. } => n.claimed,
            OpKind::Shuffle { parts } | OpKind::Join { parts } => Partitioning::HashByKey { parts },
            op if op.preserves_partitioning() => match n.inputs.first() {
                Some(i) => w.derived[&key(i)],
                None => Partitioning::Unknown,
            },
            _ => Partitioning::Unknown,
        };
        w.derived.insert(key(&n), p);
        stack.pop();
    }
    w.derived[&key(root)]
}

/// Counts distinct consumers of every node (a node listed twice in one
/// parent's inputs counts twice: it is produced twice).
fn count_consumers(root: &Arc<PlanNode>, w: &mut Walk) {
    let mut stack = vec![Arc::clone(root)];
    let mut visited: HashMap<NodeKey, ()> = HashMap::new();
    while let Some(n) = stack.pop() {
        if visited.insert(key(&n), ()).is_some() {
            continue;
        }
        for i in &n.inputs {
            *w.consumers.entry(key(i)).or_insert(0) += 1;
            stack.push(Arc::clone(i));
        }
    }
}

/// Renders the EXPLAIN tree, assigning display ids in preorder. Shared nodes
/// render their subtree once; later references point back by id.
fn render_explain(root: &Arc<PlanNode>, w: &mut Walk, out: &mut String, depth: usize) {
    let indent = "  ".repeat(depth);
    if let Some(id) = w.ids.get(&key(root)) {
        let _ = writeln!(out, "{indent}#{id} ({}; shared, see above)", root.label);
        return;
    }
    w.next_id += 1;
    let id = w.next_id;
    w.ids.insert(key(root), id);
    let rows = match root.rows {
        Some(r) if root.exact => format!(" rows={r}"),
        Some(r) => format!(" rows~{r}"),
        None => String::new(),
    };
    // Epoch-stamped sources (post-ingest loads) render their epoch; the
    // base snapshot (epoch 0) renders exactly as before.
    let epoch = if root.epoch != 0 {
        format!(" epoch={}", root.epoch)
    } else {
        String::new()
    };
    let _ = writeln!(
        out,
        "{indent}#{id} {} [{}] {}{}{}",
        root.label,
        op_str(root.op),
        tag_str(root.claimed),
        rows,
        epoch
    );
    for i in &root.inputs {
        render_explain(i, w, out, depth + 1);
    }
}

/// Verifies one plan DAG. See the module docs for the derivation rules and
/// diagnostic catalogue.
pub fn analyze(root: &Arc<PlanNode>) -> Analysis {
    let mut w = Walk {
        derived: HashMap::new(),
        ids: HashMap::new(),
        consumers: HashMap::new(),
        next_id: 0,
    };
    derive(root, &mut w);
    count_consumers(root, &mut w);
    let mut explain = String::new();
    render_explain(root, &mut w, &mut explain, 0);

    // Collect diagnostics in display-id order, then rank errors first.
    let mut all: Vec<(usize, Arc<PlanNode>)> = Vec::new();
    {
        let mut stack = vec![Arc::clone(root)];
        let mut seen: HashMap<NodeKey, ()> = HashMap::new();
        while let Some(n) = stack.pop() {
            if seen.insert(key(&n), ()).is_some() {
                continue;
            }
            all.push((w.ids[&key(&n)], Arc::clone(&n)));
            for i in &n.inputs {
                stack.push(Arc::clone(i));
            }
        }
    }
    all.sort_by_key(|(id, _)| *id);

    let mut diagnostics = Vec::new();
    let mut shuffles = 0usize;
    let mut elisions = 0usize;
    let mut narrow_ops = 0usize;
    let mut predicted = PredictedMovement::default();
    for (id, n) in &all {
        match n.op {
            OpKind::Claim => {
                if let Partitioning::HashByKey { .. } = n.claimed {
                    let input_derived = n
                        .inputs
                        .first()
                        .map(|i| w.derived[&key(i)])
                        .unwrap_or(Partitioning::Unknown);
                    if input_derived != n.claimed {
                        diagnostics.push(Diagnostic {
                            severity: Severity::Error,
                            node: *id,
                            label: n.label,
                            kind: DiagnosticKind::UnsoundClaim {
                                claimed: n.claimed,
                                derived: input_derived,
                            },
                        });
                    }
                }
            }
            OpKind::ElidedShuffle { parts } => {
                elisions += 1;
                let input_derived = n
                    .inputs
                    .first()
                    .map(|i| w.derived[&key(i)])
                    .unwrap_or(Partitioning::Unknown);
                if input_derived != (Partitioning::HashByKey { parts }) {
                    diagnostics.push(Diagnostic {
                        severity: Severity::Error,
                        node: *id,
                        label: n.label,
                        kind: DiagnosticKind::UnsoundElision {
                            parts,
                            derived: input_derived,
                        },
                    });
                }
            }
            OpKind::Shuffle { parts } => {
                shuffles += 1;
                predicted.shuffles += 1;
                if let Some(input) = n.inputs.first() {
                    if w.derived[&key(input)] == (Partitioning::HashByKey { parts }) {
                        diagnostics.push(Diagnostic {
                            severity: Severity::Warning,
                            node: *id,
                            label: n.label,
                            kind: DiagnosticKind::RedundantShuffle { parts },
                        });
                    }
                    if let Some(rows) = input.rows {
                        predicted.estimated += 1;
                        predicted.records += rows;
                        predicted.bytes += rows * n.row_bytes;
                    }
                }
            }
            op if op.is_narrow() => {
                narrow_ops += 1;
                if w.consumers.get(&key(n)).copied().unwrap_or(0) > 1 {
                    diagnostics.push(Diagnostic {
                        severity: Severity::Warning,
                        node: *id,
                        label: n.label,
                        kind: DiagnosticKind::DuplicateSubplan {
                            consumers: w.consumers[&key(n)],
                        },
                    });
                }
                // Narrow op reading through a materialization barrier that
                // itself caps a narrow chain: fusion was broken in between.
                for i in &n.inputs {
                    if i.op == OpKind::Materialize
                        && i.inputs.first().is_some_and(|g| g.op.is_narrow())
                    {
                        diagnostics.push(Diagnostic {
                            severity: Severity::Warning,
                            node: w.ids[&key(i)],
                            label: i.label,
                            kind: DiagnosticKind::FusionBreak,
                        });
                    }
                }
            }
            _ => {}
        }
    }
    diagnostics.sort_by_key(|d| (d.severity, d.node));
    diagnostics.dedup_by(|a, b| a.node == b.node && a.kind == b.kind);

    Analysis {
        diagnostics,
        shuffles,
        elisions,
        narrow_ops,
        nodes: all.len(),
        predicted,
        explain,
        fingerprint: tgraph_dataflow::lineage::fingerprint(root),
    }
}

/// Verifies several named plan roots (e.g. the vertex and edge datasets of a
/// graph) and returns the per-root analyses.
pub fn analyze_all(roots: &[(&str, Arc<PlanNode>)]) -> Vec<(String, Analysis)> {
    roots
        .iter()
        .map(|(name, root)| (name.to_string(), analyze(root)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tgraph_dataflow::{Dataset, KeyedDataset, Runtime};

    #[test]
    fn rejects_hand_built_unsound_claim() {
        // source(unknown) → claim hash(p=4): underivable, must be rejected.
        let src = PlanNode::source("source", 4, Partitioning::Unknown, 100, 16);
        let claim = PlanNode::new(
            "claim",
            OpKind::Claim,
            Partitioning::HashByKey { parts: 4 },
            Some(100),
            true,
            16,
            vec![src],
        );
        let a = analyze(&claim);
        assert!(!a.is_sound());
        assert_eq!(a.diagnostics.len(), 1);
        assert_eq!(a.diagnostics[0].severity, Severity::Error);
        assert!(matches!(
            a.diagnostics[0].kind,
            DiagnosticKind::UnsoundClaim { .. }
        ));
    }

    #[test]
    fn rejects_hand_built_unsound_elision() {
        // map destroys partitioning; eliding a shuffle right after is unsound.
        let src = PlanNode::source("source", 4, Partitioning::HashByKey { parts: 4 }, 10, 16);
        let mapped = PlanNode::new(
            "map",
            OpKind::Map,
            Partitioning::Unknown,
            Some(10),
            true,
            16,
            vec![src],
        );
        let elided = PlanNode::new(
            "shuffle(elided)",
            OpKind::ElidedShuffle { parts: 4 },
            Partitioning::HashByKey { parts: 4 },
            Some(10),
            true,
            16,
            vec![mapped],
        );
        let a = analyze(&elided);
        assert!(!a.is_sound());
        assert!(matches!(
            a.diagnostics[0].kind,
            DiagnosticKind::UnsoundElision { parts: 4, .. }
        ));
    }

    #[test]
    fn accepts_shuffle_then_preserving_chain_then_elision() {
        let src = PlanNode::source("source", 4, Partitioning::Unknown, 1000, 16);
        let shuf = PlanNode::new(
            "shuffle",
            OpKind::Shuffle { parts: 4 },
            Partitioning::HashByKey { parts: 4 },
            Some(1000),
            true,
            16,
            vec![src],
        );
        let filt = PlanNode::new(
            "filter",
            OpKind::Filter,
            Partitioning::HashByKey { parts: 4 },
            Some(1000),
            false,
            16,
            vec![shuf],
        );
        let mv = PlanNode::new(
            "map_values",
            OpKind::MapValues,
            Partitioning::HashByKey { parts: 4 },
            Some(1000),
            false,
            16,
            vec![filt],
        );
        let elided = PlanNode::new(
            "shuffle(elided)",
            OpKind::ElidedShuffle { parts: 4 },
            Partitioning::HashByKey { parts: 4 },
            Some(1000),
            false,
            16,
            vec![mv],
        );
        let a = analyze(&elided);
        assert!(a.is_sound(), "diagnostics: {:?}", a.diagnostics);
        assert_eq!(a.shuffles, 1);
        assert_eq!(a.elisions, 1);
        assert_eq!(a.predicted.records, 1000);
        assert_eq!(a.predicted.bytes, 16_000);
    }

    #[test]
    fn flags_redundant_reshuffle() {
        let src = PlanNode::source("source", 4, Partitioning::Unknown, 10, 8);
        let s1 = PlanNode::new(
            "shuffle",
            OpKind::Shuffle { parts: 4 },
            Partitioning::HashByKey { parts: 4 },
            Some(10),
            true,
            8,
            vec![src],
        );
        let s2 = PlanNode::new(
            "shuffle",
            OpKind::Shuffle { parts: 4 },
            Partitioning::HashByKey { parts: 4 },
            Some(10),
            true,
            8,
            vec![s1],
        );
        let a = analyze(&s2);
        assert!(a.is_sound());
        assert!(a
            .diagnostics
            .iter()
            .any(|d| matches!(d.kind, DiagnosticKind::RedundantShuffle { parts: 4 })));
    }

    #[test]
    fn flags_duplicate_narrow_subplan() {
        let src = PlanNode::source("source", 2, Partitioning::Unknown, 10, 8);
        let mapped = PlanNode::new(
            "map",
            OpKind::Map,
            Partitioning::Unknown,
            Some(10),
            true,
            8,
            vec![src],
        );
        let left = PlanNode::new(
            "filter",
            OpKind::Filter,
            Partitioning::Unknown,
            Some(10),
            false,
            8,
            vec![mapped.clone()],
        );
        let right = PlanNode::new(
            "filter",
            OpKind::Filter,
            Partitioning::Unknown,
            Some(10),
            false,
            8,
            vec![mapped],
        );
        let join = PlanNode::new(
            "join",
            OpKind::Join { parts: 2 },
            Partitioning::HashByKey { parts: 2 },
            None,
            false,
            16,
            vec![left, right],
        );
        let a = analyze(&join);
        assert!(a.is_sound());
        assert!(a
            .diagnostics
            .iter()
            .any(|d| matches!(d.kind, DiagnosticKind::DuplicateSubplan { consumers: 2 })));
    }

    #[test]
    fn flags_fusion_break() {
        let src = PlanNode::source("source", 2, Partitioning::Unknown, 10, 8);
        let m1 = PlanNode::new(
            "map",
            OpKind::Map,
            Partitioning::Unknown,
            Some(10),
            true,
            8,
            vec![src],
        );
        let mat = PlanNode::new(
            "materialize",
            OpKind::Materialize,
            Partitioning::Unknown,
            Some(10),
            true,
            8,
            vec![m1],
        );
        let m2 = PlanNode::new(
            "map",
            OpKind::Map,
            Partitioning::Unknown,
            Some(10),
            true,
            8,
            vec![mat],
        );
        let a = analyze(&m2);
        assert!(a
            .diagnostics
            .iter()
            .any(|d| d.kind == DiagnosticKind::FusionBreak));
    }

    #[test]
    fn engine_produced_elision_plans_verify_sound() {
        // The real engine: shuffle → filter/map_values → reduce (elided).
        let rt = Runtime::with_partitions(2, 2);
        let d = Dataset::from_vec(&rt, (0..100u64).map(|i| (i % 7, i)).collect::<Vec<_>>());
        let s = tgraph_dataflow::shuffle(&rt, &d)
            .filter(|(_, v)| v % 2 == 0)
            .map_values(|v| v + 1);
        let r = s.reduce_by_key(&rt, |a, b| a + b);
        let a = analyze(&r.lineage());
        assert!(a.is_sound(), "{}", a.render());
        assert_eq!(a.shuffles, 1);
        assert_eq!(a.elisions, 1);
    }

    #[test]
    fn engine_wrong_tag_plan_is_rejected_statically() {
        // The same wrong-tag fixture checked mode catches dynamically: the
        // static verifier rejects it without running anything.
        let rt = Runtime::with_partitions(2, 2);
        let d: Dataset<(u64, u64)> =
            Dataset::from_vec(&rt, (0..10).map(|i| (i, i)).collect::<Vec<_>>());
        // Fabricate the claim via a hand-built node (the engine's audited
        // with_partitioning is crate-private).
        let claim = PlanNode::new(
            "claim",
            OpKind::Claim,
            Partitioning::HashByKey { parts: 2 },
            Some(10),
            true,
            16,
            vec![d.lineage()],
        );
        let a = analyze(&claim);
        assert!(!a.is_sound());
    }

    #[test]
    fn explain_renders_shared_nodes_once() {
        let src = PlanNode::source("source", 2, Partitioning::Unknown, 5, 8);
        let l = PlanNode::new(
            "filter",
            OpKind::Filter,
            Partitioning::Unknown,
            Some(5),
            false,
            8,
            vec![src.clone()],
        );
        let r = PlanNode::new(
            "map",
            OpKind::Map,
            Partitioning::Unknown,
            Some(5),
            true,
            8,
            vec![src],
        );
        let u = PlanNode::new(
            "union",
            OpKind::Union,
            Partitioning::Unknown,
            Some(10),
            false,
            8,
            vec![l, r],
        );
        let a = analyze(&u);
        assert_eq!(a.explain.matches("[source(p=2)]").count(), 1);
        assert!(a.explain.contains("shared, see above"));
        assert_eq!(a.nodes, 4);
    }

    #[test]
    fn analysis_carries_plan_fingerprint() {
        let build = || {
            let rt = Runtime::with_partitions(2, 2);
            Dataset::from_vec(&rt, vec![(1i64, 2i64), (3, 4)])
                .reduce_by_key(&rt, |a, b| a + b)
                .lineage()
        };
        let (a, b) = (analyze(&build()), analyze(&build()));
        // Same logical plan built twice → same fingerprint, and render()
        // surfaces it for EXPLAIN consumers.
        assert_eq!(a.fingerprint, b.fingerprint);
        assert_eq!(
            a.fingerprint,
            tgraph_dataflow::lineage::fingerprint(&build())
        );
        assert!(a
            .render()
            .contains(&format!("-- fingerprint: {:#018x}", a.fingerprint)));
    }
}
