//! Source-level lint rules for the tgraph workspace, run by the
//! `tgraph-lint` binary (`cargo run -p tgraph-analyze --bin tgraph-lint`).
//!
//! Eight rules, all scoped to **library code** (test modules, `tests/`
//! directories, benches, and `src/bin/` drivers are exempt):
//!
//! * **`no-unwrap`** — no `unwrap()` / `expect()` on user-reachable paths in
//!   library crates. Engine-invariant sites may opt out with a
//!   `lint:allow(unwrap)` or `lint:allow(expect)` marker comment on the same
//!   or the preceding line, which doubles as an audit trail.
//! * **`no-eager-collect`** — no `Dataset::collect(rt)` inside operator
//!   closures (`map`, `filter`, `flat_map`, `map_partitions`, `map_values`,
//!   `fold`): collecting mid-operator defeats the lazy plan and runs a
//!   nested job per element. Iterator `collect()` (no runtime argument) is
//!   fine.
//! * **`no-raw-retag`** — no `with_partitioning(` outside the dataflow
//!   crate's `dataset.rs` / `keyed.rs`: partitioning claims must go through
//!   the audited elision machinery, never be stamped ad hoc.
//!
//! Plus five **concurrency rules** guarding the distributed exchange layer
//! and the serving event loop:
//!
//! * **`lock-order`** — a lock-acquisition-order graph is extracted from
//!   the masked sources of the protocol-adjacent files
//!   ([`LOCK_ORDER_FILES`]: `exchange.rs`, `runtime.rs`, `server.rs`),
//!   unioned across them, and checked for cycles: two code paths acquiring
//!   the same pair of locks in opposite orders is a latent deadlock even
//!   when each path is individually correct. Opt out per acquisition with
//!   `lint:allow(lock-order)`.
//! * **`condvar-wait-in-loop`** — every `Condvar::wait`/`wait_timeout`
//!   must sit inside a `loop`/`while` that re-checks its predicate:
//!   condvars wake spuriously, and a bare `if`-guarded wait is a race.
//!   (`wait_while`/`wait_timeout_while` re-check internally and are
//!   exempt.) Opt out with `lint:allow(condvar)`.
//! * **`no-blocking-in-reader`** — the exchange reader/acceptor loops
//!   (functions named `*_loop`) must not make unbounded blocking calls
//!   (`read_exact`, `read_to_end`, `read_to_string`, `recv()`, `accept()`)
//!   unless the function participates in the shutdown/poll discipline
//!   (its body references the shutdown flag or a poll helper) — otherwise
//!   teardown hangs on a silent peer. Opt out with `lint:allow(blocking)`.
//! * **`blocking-call-in-reactor`** — functions that run on a serving
//!   reactor thread (any `fn` whose name contains `reactor`) must stay
//!   nonblocking: no `thread::sleep`, channel `recv()`, thread `join(`,
//!   or buffered/blocking I/O (`read_line`, `read_to_end`,
//!   `read_to_string`, `write_all`). One stalled reactor parks every
//!   connection it owns. Opt out with `lint:allow(reactor)` where the
//!   call is provably on a nonblocking fd.
//! * **`no-inline-poison-recovery`** — no inline
//!   `lock().unwrap_or_else(|e| e.into_inner())`: poison recovery is only
//!   sound when the guarded state is panic-consistent, and that argument
//!   is audited in exactly one place —
//!   [`lock_unpoisoned`](tgraph_dataflow::lock_unpoisoned), which carries
//!   the one `lint:allow(poison)` marker.
//!
//! The linter works on masked source text: comments and string literals are
//! blanked (preserving line structure) and `#[cfg(test)]` blocks are
//! stripped before matching, so rules cannot fire on prose or test code.

use std::fmt;
use std::path::{Path, PathBuf};

/// Library crates subject to the lint rules. `bench` is a harness crate and
/// exempt from `no-unwrap` (its panics are operator-facing, not
/// user-reachable), but still subject to the dataflow-discipline rules.
const LIB_CRATES: &[&str] = &[
    "core", "dataflow", "repr", "storage", "datagen", "query", "analyzer", "server", "optimize",
];

/// Crates linted for dataflow discipline (eager collect, raw retag) only.
const HARNESS_CRATES: &[&str] = &["bench"];

/// Files whose lock-acquisition graphs are unioned for the cross-file
/// `lock-order` check: the distributed exchange protocol and the two
/// layers that hold locks around it.
pub const LOCK_ORDER_FILES: &[&str] = &[
    "crates/dataflow/src/exchange.rs",
    "crates/dataflow/src/runtime.rs",
    "crates/server/src/server.rs",
];

/// Unbounded blocking calls forbidden inside `*_loop` reader/acceptor
/// functions that lack a shutdown/poll discipline.
const READER_BLOCKING_CALLS: &[&str] = &[
    ".read_exact(",
    ".read_to_end(",
    ".read_to_string(",
    ".recv()",
    ".accept()",
];

/// Calls that stall a serving reactor thread, forbidden inside any
/// function whose name contains `reactor`. Unlike the reader rule there is
/// no shutdown-discipline exemption: a reactor must never block outside
/// its poller wait, because every connection it owns stalls with it.
const REACTOR_BLOCKING_CALLS: &[&str] = &[
    "thread::sleep(",
    ".recv()",
    ".join(",
    ".read_line(",
    ".read_to_end(",
    ".read_to_string(",
    ".write_all(",
];

/// Operator entry points whose closure arguments must not call
/// `Dataset::collect(rt)`.
const OPERATOR_CALLS: &[&str] = &[
    ".map(",
    ".flat_map(",
    ".filter(",
    ".map_partitions(",
    ".map_values(",
    ".map_values_with_key(",
    ".fold(",
];

/// One lint finding.
#[derive(Clone, Debug)]
pub struct Finding {
    /// File the finding is in (workspace-relative when produced by
    /// [`lint_workspace`]).
    pub file: PathBuf,
    /// 1-based line number.
    pub line: usize,
    /// Rule code (`no-unwrap`, `no-eager-collect`, `no-raw-retag`,
    /// `lock-order`, `condvar-wait-in-loop`, `no-blocking-in-reader`,
    /// `blocking-call-in-reactor`, `no-inline-poison-recovery`).
    pub rule: &'static str,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file.display(),
            self.line,
            self.rule,
            self.message
        )
    }
}

/// Which rules apply to a file.
#[derive(Clone, Copy, Debug)]
pub struct RuleSet {
    /// Enforce `no-unwrap`.
    pub no_unwrap: bool,
    /// Enforce `no-eager-collect`.
    pub no_eager_collect: bool,
    /// Enforce `no-raw-retag`.
    pub no_raw_retag: bool,
    /// Enforce `lock-order` on this file's own acquisition graph. In
    /// [`lint_workspace`] the [`LOCK_ORDER_FILES`] are instead unioned
    /// into one cross-file graph, so their per-file pass is off there.
    pub lock_order: bool,
    /// Enforce `condvar-wait-in-loop`.
    pub condvar_wait_in_loop: bool,
    /// Enforce `no-blocking-in-reader`.
    pub no_blocking_in_reader: bool,
    /// Enforce `blocking-call-in-reactor`.
    pub blocking_call_in_reactor: bool,
    /// Enforce `no-inline-poison-recovery`.
    pub no_inline_poison_recovery: bool,
}

impl RuleSet {
    /// All rules on.
    pub fn all() -> Self {
        RuleSet {
            no_unwrap: true,
            no_eager_collect: true,
            no_raw_retag: true,
            lock_order: true,
            condvar_wait_in_loop: true,
            no_blocking_in_reader: true,
            blocking_call_in_reactor: true,
            no_inline_poison_recovery: true,
        }
    }
}

/// Replaces comments, string literals, and char literals with spaces,
/// preserving line structure so findings keep accurate line numbers.
/// Handles line comments, (nested) block comments, escapes, and raw strings.
fn mask_source(src: &str) -> String {
    let b: Vec<char> = src.chars().collect();
    let mut out = String::with_capacity(src.len());
    let mut i = 0;
    let n = b.len();
    let blank = |c: char| if c == '\n' { '\n' } else { ' ' };
    while i < n {
        let c = b[i];
        if c == '/' && i + 1 < n && b[i + 1] == '/' {
            while i < n && b[i] != '\n' {
                out.push(' ');
                i += 1;
            }
        } else if c == '/' && i + 1 < n && b[i + 1] == '*' {
            let mut depth = 1;
            out.push(' ');
            out.push(' ');
            i += 2;
            while i < n && depth > 0 {
                if b[i] == '/' && i + 1 < n && b[i + 1] == '*' {
                    depth += 1;
                    out.push(' ');
                    out.push(' ');
                    i += 2;
                } else if b[i] == '*' && i + 1 < n && b[i + 1] == '/' {
                    depth -= 1;
                    out.push(' ');
                    out.push(' ');
                    i += 2;
                } else {
                    out.push(blank(b[i]));
                    i += 1;
                }
            }
        } else if c == 'r' && i + 1 < n && (b[i + 1] == '"' || b[i + 1] == '#') {
            // Raw string r"..." or r#"..."# (any hash depth).
            let start = i;
            let mut j = i + 1;
            let mut hashes = 0;
            while j < n && b[j] == '#' {
                hashes += 1;
                j += 1;
            }
            if j < n && b[j] == '"' {
                out.push(' ');
                for _ in 0..=hashes {
                    out.push(' ');
                }
                j += 1;
                // Scan for closing quote followed by `hashes` hashes.
                loop {
                    if j >= n {
                        break;
                    }
                    if b[j] == '"' {
                        let mut k = j + 1;
                        let mut h = 0;
                        while k < n && h < hashes && b[k] == '#' {
                            h += 1;
                            k += 1;
                        }
                        if h == hashes {
                            for _ in j..k {
                                out.push(' ');
                            }
                            j = k;
                            break;
                        }
                    }
                    out.push(blank(b[j]));
                    j += 1;
                }
                i = j;
            } else {
                // Not a raw string after all (e.g. `r#ident`).
                out.push(b[start]);
                i = start + 1;
            }
        } else if c == '"' {
            out.push(' ');
            i += 1;
            while i < n {
                if b[i] == '\\' && i + 1 < n {
                    out.push(' ');
                    out.push(blank(b[i + 1]));
                    i += 2;
                } else if b[i] == '"' {
                    out.push(' ');
                    i += 1;
                    break;
                } else {
                    out.push(blank(b[i]));
                    i += 1;
                }
            }
        } else if c == '\'' {
            // Char literal or lifetime. Treat as char literal only when it
            // closes within a few chars; otherwise it's a lifetime.
            let close = (i + 1..n.min(i + 5)).find(|&j| b[j] == '\'' && b[j - 1] != '\\');
            let close = match close {
                Some(j) => Some(j),
                None if i + 2 < n && b[i + 1] == '\\' => {
                    (i + 2..n.min(i + 6)).find(|&j| b[j] == '\'')
                }
                None => None,
            };
            if let Some(j) = close {
                for _ in i..=j {
                    out.push(' ');
                }
                i = j + 1;
            } else {
                out.push(c);
                i += 1;
            }
        } else {
            out.push(c);
            i += 1;
        }
    }
    out
}

/// Blanks every `#[cfg(test)] mod … { … }` (or any `#[cfg(test)]`-attributed
/// item with a brace block) in masked source.
fn strip_test_blocks(masked: &str) -> String {
    let mut text: Vec<char> = masked.chars().collect();
    let pat: Vec<char> = "#[cfg(test)]".chars().collect();
    let n = text.len();
    let mut i = 0;
    while i + pat.len() <= n {
        if text[i..i + pat.len()] == pat[..] {
            // Find the opening brace of the attributed item, then blank
            // through its matching close.
            let mut j = i + pat.len();
            while j < n && text[j] != '{' {
                j += 1;
            }
            let mut depth = 0;
            let start = i;
            while j < n {
                if text[j] == '{' {
                    depth += 1;
                } else if text[j] == '}' {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                j += 1;
            }
            let end = (j + 1).min(n);
            for c in text.iter_mut().take(end).skip(start) {
                if *c != '\n' {
                    *c = ' ';
                }
            }
            i = end;
        } else {
            i += 1;
        }
    }
    text.into_iter().collect()
}

/// Whether `raw` line `line` (or the line above) carries a
/// `lint:allow(<what>)` marker. Markers live in comments, so they are read
/// from the raw (unmasked) source.
fn allowed(raw_lines: &[&str], line: usize, what: &str) -> bool {
    let marker = format!("lint:allow({what})");
    let check = |l: usize| l >= 1 && l <= raw_lines.len() && raw_lines[l - 1].contains(&marker);
    check(line) || check(line.saturating_sub(1))
}

/// Spans (start, end) of the parenthesized argument lists of operator calls
/// in masked text — the regions where `Dataset::collect(rt)` is forbidden.
fn operator_closure_spans(masked: &str) -> Vec<(usize, usize)> {
    let bytes = masked.as_bytes();
    let mut spans = Vec::new();
    for pat in OPERATOR_CALLS {
        let mut start = 0;
        while let Some(pos) = find_from(masked, pat, start) {
            let open = pos + pat.len() - 1;
            let mut depth = 0i32;
            let mut j = open;
            while j < bytes.len() {
                match bytes[j] {
                    b'(' => depth += 1,
                    b')' => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
            spans.push((open, j.min(bytes.len())));
            start = open + 1;
        }
    }
    spans
}

/// The dotted receiver path immediately before byte offset `pos` (which
/// points at the `.` of a matched method call), skipping whitespace so
/// multi-line chains resolve: `self.cond\n    .wait_timeout(` → `self.cond`.
fn path_before(masked: &str, pos: usize) -> String {
    let bytes = masked.as_bytes();
    let mut i = pos;
    let mut out: Vec<u8> = Vec::new();
    loop {
        while i > 0 && bytes[i - 1].is_ascii_whitespace() {
            i -= 1;
        }
        let mut took = false;
        while i > 0 && (bytes[i - 1].is_ascii_alphanumeric() || bytes[i - 1] == b'_') {
            out.push(bytes[i - 1]);
            i -= 1;
            took = true;
        }
        if !took {
            break;
        }
        while i > 0 && bytes[i - 1].is_ascii_whitespace() {
            i -= 1;
        }
        if i > 0 && bytes[i - 1] == b'.' {
            out.push(b'.');
            i -= 1;
        } else {
            break;
        }
    }
    out.reverse();
    String::from_utf8_lossy(&out).into_owned()
}

/// Whether `word` occurs in `text` delimited by non-identifier characters.
fn has_word(text: &str, word: &str) -> bool {
    let bytes = text.as_bytes();
    let ident = |b: u8| b.is_ascii_alphanumeric() || b == b'_';
    let mut start = 0;
    while let Some(p) = find_from(text, word, start) {
        start = p + word.len();
        let before_ok = p == 0 || !ident(bytes[p - 1]);
        let after_ok = bytes.get(p + word.len()).is_none_or(|&b| !ident(b));
        if before_ok && after_ok {
            return true;
        }
    }
    false
}

/// Whether byte offset `pos` sits inside a `loop { … }` or `while … { … }`
/// block: some enclosing brace's header (the text since the previous
/// `{`/`}`/`;`) contains the keyword.
fn in_predicate_loop(masked: &str, pos: usize) -> bool {
    let bytes = masked.as_bytes();
    let mut stack: Vec<usize> = Vec::new();
    for (i, &b) in bytes.iter().enumerate().take(pos) {
        match b {
            b'{' => stack.push(i),
            b'}' => {
                stack.pop();
            }
            _ => {}
        }
    }
    stack.iter().any(|&open| {
        let start = bytes[..open]
            .iter()
            .rposition(|&b| b == b'{' || b == b'}' || b == b';')
            .map_or(0, |p| p + 1);
        let header = &masked[start..open];
        has_word(header, "loop") || has_word(header, "while")
    })
}

/// The byte offset just past the `}` closing the innermost block that
/// contains `pos`, or the text's end if unbraced.
fn enclosing_block_end(masked: &str, pos: usize) -> usize {
    let bytes = masked.as_bytes();
    let mut depth = 0i32;
    for (off, &b) in bytes.iter().enumerate().skip(pos) {
        match b {
            b'{' => depth += 1,
            b'}' => {
                if depth == 0 {
                    return off;
                }
                depth -= 1;
            }
            _ => {}
        }
    }
    masked.len()
}

/// The byte offset of the `;` ending the statement containing `pos`
/// (tracking nesting), or the end of the enclosing block.
fn statement_end(masked: &str, pos: usize) -> usize {
    let bytes = masked.as_bytes();
    let mut depth = 0i32;
    for (off, &b) in bytes.iter().enumerate().skip(pos) {
        match b {
            b'(' | b'[' | b'{' => depth += 1,
            b')' | b']' => depth -= 1,
            b'}' => {
                if depth == 0 {
                    return off;
                }
                depth -= 1;
            }
            b';' if depth == 0 => return off,
            _ => {}
        }
    }
    masked.len()
}

/// One directed edge of the lock-acquisition-order graph: lock `held` was
/// (conservatively) still held when lock `then` was acquired.
#[derive(Clone, Debug)]
pub struct LockEdge {
    /// Last path segment of the already-held lock's receiver.
    pub held: String,
    /// Last path segment of the lock acquired under it.
    pub then: String,
    /// File containing the nested acquisition.
    pub file: PathBuf,
    /// 1-based line of the nested acquisition.
    pub line: usize,
}

/// One lock acquisition site in masked source.
struct Acquisition {
    name: String,
    pos: usize,
    hold_end: usize,
    line: usize,
}

/// Extracts the lock-acquisition-order edges of one source file. A lock's
/// identity is the last path segment of its receiver (`self.acceptor` →
/// `acceptor`); a guard is held to the end of its enclosing block when
/// `let`-bound (shortened by an explicit `drop(guard)`), else to the end
/// of its statement. Acquisitions marked `lint:allow(lock-order)`
/// contribute no edges.
pub fn lock_order_edges(file: &Path, src: &str) -> Vec<LockEdge> {
    let masked = strip_test_blocks(&mask_source(src));
    let raw_lines: Vec<&str> = src.lines().collect();
    let bytes = masked.as_bytes();
    let mut acquisitions: Vec<Acquisition> = Vec::new();

    let mut record = |name: String, pos: usize| {
        if name.is_empty() {
            return;
        }
        let line = line_of_bytes(&masked, pos);
        if allowed(&raw_lines, line, "lock-order") {
            return;
        }
        // Statement start: just past the previous `;`, `{`, or `}`.
        let stmt_start = bytes[..pos]
            .iter()
            .rposition(|&b| b == b';' || b == b'{' || b == b'}')
            .map_or(0, |p| p + 1);
        let stmt_head = &masked[stmt_start..pos];
        let hold_end = if has_word(stmt_head, "let") {
            // Guard bound to a variable: held to the end of the enclosing
            // block, or to an explicit drop of the variable.
            let mut end = enclosing_block_end(&masked, pos);
            let var: String = stmt_head
                .split_whitespace()
                .skip_while(|w| *w != "let")
                .skip(1)
                .find(|w| *w != "mut")
                .unwrap_or("")
                .trim_end_matches([':', '='])
                .to_string();
            if !var.is_empty() {
                let drop_pat = format!("drop({var})");
                if let Some(d) = find_from(&masked, &drop_pat, pos) {
                    if d < end {
                        end = d;
                    }
                }
            }
            end
        } else {
            // Temporary guard: held to the end of the statement.
            statement_end(&masked, pos)
        };
        acquisitions.push(Acquisition {
            name,
            pos,
            hold_end,
            line,
        });
    };

    let mut start = 0;
    while let Some(pos) = find_from(&masked, ".lock()", start) {
        start = pos + ".lock()".len();
        let receiver = path_before(&masked, pos);
        let name = receiver.rsplit('.').next().unwrap_or("").to_string();
        record(name, pos);
    }
    let mut start = 0;
    while let Some(pos) = find_from(&masked, "lock_unpoisoned(", start) {
        start = pos + "lock_unpoisoned(".len();
        if pos > 0 {
            let prev = bytes[pos - 1];
            if prev.is_ascii_alphanumeric() || prev == b'_' {
                continue;
            }
        }
        let arg: String = masked[pos + "lock_unpoisoned(".len()..]
            .chars()
            .take_while(|c| *c != ')' && *c != ',')
            .filter(|c| c.is_ascii_alphanumeric() || *c == '_' || *c == '.')
            .collect();
        let name = arg.rsplit('.').next().unwrap_or("").to_string();
        record(name, pos);
    }

    let mut edges: Vec<LockEdge> = Vec::new();
    for a in &acquisitions {
        for b in &acquisitions {
            if a.name != b.name && b.pos > a.pos && b.pos <= a.hold_end {
                let dup = edges
                    .iter()
                    .any(|e| e.held == a.name && e.then == b.name && e.line == b.line);
                if !dup {
                    edges.push(LockEdge {
                        held: a.name.clone(),
                        then: b.name.clone(),
                        file: file.to_path_buf(),
                        line: b.line,
                    });
                }
            }
        }
    }
    edges
}

/// Finds acquisition-order cycles in a (possibly cross-file) edge union
/// and renders one finding per distinct cycle, anchored at one of its
/// edge sites.
pub fn lock_order_findings(edges: &[LockEdge]) -> Vec<Finding> {
    use std::collections::{BTreeMap, BTreeSet};
    let mut adj: BTreeMap<&str, Vec<&LockEdge>> = BTreeMap::new();
    for e in edges {
        adj.entry(e.held.as_str()).or_default().push(e);
    }
    let mut seen_cycles: BTreeSet<Vec<String>> = BTreeSet::new();
    let mut findings = Vec::new();
    let nodes: Vec<&str> = adj.keys().copied().collect();
    for &root in &nodes {
        // Bounded DFS from each node; a path returning to its origin is a
        // cycle.
        let mut stack: Vec<(&str, Vec<&LockEdge>)> = vec![(root, Vec::new())];
        while let Some((node, path)) = stack.pop() {
            if path.len() > nodes.len() {
                continue;
            }
            for e in adj.get(node).map_or(&[][..], |v| &v[..]) {
                if e.then == root {
                    let mut full = path.clone();
                    full.push(e);
                    // Canonical form: the cycle's lock names rotated so the
                    // lexicographically smallest comes first.
                    let names: Vec<String> = full.iter().map(|e| e.held.clone()).collect();
                    let rot = names
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, n)| n.as_str())
                        .map_or(0, |(i, _)| i);
                    let canon: Vec<String> = (0..names.len())
                        .map(|i| names[(rot + i) % names.len()].clone())
                        .collect();
                    if seen_cycles.insert(canon.clone()) {
                        let ring = canon.join(" -> ");
                        let sites: Vec<String> = full
                            .iter()
                            .map(|e| {
                                format!(
                                    "{} -> {} at {}:{}",
                                    e.held,
                                    e.then,
                                    e.file.display(),
                                    e.line
                                )
                            })
                            .collect();
                        let anchor = full[full.len() - 1];
                        findings.push(Finding {
                            file: anchor.file.clone(),
                            line: anchor.line,
                            rule: "lock-order",
                            message: format!(
                                "lock-acquisition-order cycle {ring} -> {} (latent deadlock); \
                                 sites: {}",
                                canon[0],
                                sites.join("; ")
                            ),
                        });
                    }
                } else if !path.iter().any(|p| p.held == e.then) && e.then != node {
                    let mut next = path.clone();
                    next.push(e);
                    stack.push((e.then.as_str(), next));
                }
            }
        }
    }
    findings
}

/// Lints one source text. `file` is used for finding labels only.
pub fn lint_source(file: &Path, src: &str, rules: RuleSet) -> Vec<Finding> {
    let masked = strip_test_blocks(&mask_source(src));
    let raw_lines: Vec<&str> = src.lines().collect();
    let mut findings = Vec::new();

    if rules.no_unwrap {
        for pat in ["unwrap()", "expect("] {
            let what = if pat.starts_with("unwrap") {
                "unwrap"
            } else {
                "expect"
            };
            let mut start = 0;
            while let Some(pos) = find_from(&masked, pat, start) {
                start = pos + pat.len();
                // `.unwrap()` / `.expect(` method calls only.
                let prev = masked[..pos].chars().next_back();
                if prev != Some('.') {
                    continue;
                }
                let line = line_of_bytes(&masked, pos);
                if allowed(&raw_lines, line, what) {
                    continue;
                }
                findings.push(Finding {
                    file: file.to_path_buf(),
                    line,
                    rule: "no-unwrap",
                    message: format!(
                        ".{pat}…: library code must surface typed errors, not panic \
                         (add `// lint:allow({what}): <reason>` if this is an engine invariant)"
                    ),
                });
            }
        }
    }

    if rules.no_eager_collect {
        let spans = operator_closure_spans(&masked);
        let mut start = 0;
        while let Some(pos) = find_from(&masked, ".collect(", start) {
            start = pos + ".collect(".len();
            // An argument ⇒ Dataset::collect(rt); bare `.collect()` or
            // turbofished iterator collects have none.
            let after: String = masked[pos + ".collect(".len()..]
                .chars()
                .take_while(|c| c.is_whitespace())
                .collect();
            let next = masked[pos + ".collect(".len() + after.len()..]
                .chars()
                .next();
            if next == Some(')') || next.is_none() {
                continue;
            }
            if spans.iter().any(|&(s, e)| pos > s && pos < e) {
                let line = line_of_bytes(&masked, pos);
                if allowed(&raw_lines, line, "collect") {
                    continue;
                }
                findings.push(Finding {
                    file: file.to_path_buf(),
                    line,
                    rule: "no-eager-collect",
                    message: "Dataset::collect(rt) inside an operator closure runs a nested \
                              job per element; hoist the collect outside the operator \
                              (see broadcast_join) or restructure as a join"
                        .to_string(),
                });
            }
        }
    }

    if rules.no_raw_retag {
        let mut start = 0;
        while let Some(pos) = find_from(&masked, "with_partitioning(", start) {
            start = pos + "with_partitioning(".len();
            let line = line_of_bytes(&masked, pos);
            if allowed(&raw_lines, line, "retag") {
                continue;
            }
            findings.push(Finding {
                file: file.to_path_buf(),
                line,
                rule: "no-raw-retag",
                message: "partitioning tags must be established by the audited shuffle/elision \
                          machinery in dataflow's dataset.rs/keyed.rs, not stamped directly"
                    .to_string(),
            });
        }
    }

    if rules.condvar_wait_in_loop {
        for pat in [".wait(", ".wait_timeout("] {
            let mut start = 0;
            while let Some(pos) = find_from(&masked, pat, start) {
                start = pos + pat.len();
                let receiver = path_before(&masked, pos).to_ascii_lowercase();
                // Heuristic condvar identification: the receiver names a
                // condition variable (cv / cond / condvar conventions).
                if !(receiver.contains("cv") || receiver.contains("cond")) {
                    continue;
                }
                if in_predicate_loop(&masked, pos) {
                    continue;
                }
                let line = line_of_bytes(&masked, pos);
                if allowed(&raw_lines, line, "condvar") {
                    continue;
                }
                findings.push(Finding {
                    file: file.to_path_buf(),
                    line,
                    rule: "condvar-wait-in-loop",
                    message: format!(
                        "Condvar `{pat}` outside a predicate-re-checking loop/while: condvars \
                         wake spuriously, so the guarded condition must be re-tested around \
                         every wait (or use wait_while)",
                        pat = pat.trim_start_matches('.').trim_end_matches('(')
                    ),
                });
            }
        }
    }

    if rules.no_blocking_in_reader {
        let mut start = 0;
        while let Some(fn_pos) = find_from(&masked, "fn ", start) {
            start = fn_pos + 3;
            if fn_pos > 0 {
                let prev = masked.as_bytes()[fn_pos - 1];
                if prev.is_ascii_alphanumeric() || prev == b'_' {
                    continue;
                }
            }
            let name: String = masked[fn_pos + 3..]
                .chars()
                .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
                .collect();
            if !name.ends_with("_loop") {
                continue;
            }
            let Some(open) = find_from(&masked, "{", fn_pos) else {
                continue;
            };
            let close = enclosing_block_end(&masked, open + 1);
            let body = &masked[open..close.min(masked.len())];
            // A reader that participates in the shutdown/poll discipline
            // (checks the shutdown flag or uses a polling read helper) may
            // block briefly between checks.
            if has_word(body, "shutdown") || body.contains("_polling") || body.contains(".poll") {
                continue;
            }
            for pat in READER_BLOCKING_CALLS {
                let mut bstart = 0;
                while let Some(bpos) = find_from(body, pat, bstart) {
                    bstart = bpos + pat.len();
                    let line = line_of_bytes(&masked, open + bpos);
                    if allowed(&raw_lines, line, "blocking") {
                        continue;
                    }
                    findings.push(Finding {
                        file: file.to_path_buf(),
                        line,
                        rule: "no-blocking-in-reader",
                        message: format!(
                            "unbounded blocking `{call}` inside reader/acceptor `fn {name}` with \
                             no shutdown/poll check: teardown will hang on a silent peer \
                             (poll with a deadline and re-check the shutdown flag)",
                            call = pat.trim_start_matches('.').trim_end_matches('(')
                        ),
                    });
                }
            }
        }
    }

    if rules.blocking_call_in_reactor {
        let mut start = 0;
        while let Some(fn_pos) = find_from(&masked, "fn ", start) {
            start = fn_pos + 3;
            if fn_pos > 0 {
                let prev = masked.as_bytes()[fn_pos - 1];
                if prev.is_ascii_alphanumeric() || prev == b'_' {
                    continue;
                }
            }
            let name: String = masked[fn_pos + 3..]
                .chars()
                .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
                .collect();
            if !name.contains("reactor") {
                continue;
            }
            let Some(open) = find_from(&masked, "{", fn_pos) else {
                continue;
            };
            let close = enclosing_block_end(&masked, open + 1);
            let body = &masked[open..close.min(masked.len())];
            for pat in REACTOR_BLOCKING_CALLS {
                let mut bstart = 0;
                while let Some(bpos) = find_from(body, pat, bstart) {
                    bstart = bpos + pat.len();
                    let line = line_of_bytes(&masked, open + bpos);
                    if allowed(&raw_lines, line, "reactor") {
                        continue;
                    }
                    findings.push(Finding {
                        file: file.to_path_buf(),
                        line,
                        rule: "blocking-call-in-reactor",
                        message: format!(
                            "blocking `{call}` inside reactor function `fn {name}`: a stalled \
                             reactor thread parks every connection it owns; hand the work to a \
                             dispatcher or buffer it for the poller (add \
                             `// lint:allow(reactor): <reason>` only for calls on nonblocking fds)",
                            call = pat.trim_start_matches('.').trim_end_matches('(')
                        ),
                    });
                }
            }
        }
    }

    if rules.no_inline_poison_recovery {
        let mut start = 0;
        while let Some(pos) = find_from(&masked, ".unwrap_or_else(", start) {
            start = pos + ".unwrap_or_else(".len();
            // Only the poison-recovery idiom: receiver chain ends in
            // `.lock()` (possibly across lines).
            let before = masked[..pos].trim_end();
            if !before.ends_with(".lock()") {
                continue;
            }
            let line = line_of_bytes(&masked, pos);
            if allowed(&raw_lines, line, "poison") {
                continue;
            }
            findings.push(Finding {
                file: file.to_path_buf(),
                line,
                rule: "no-inline-poison-recovery",
                message: "inline `lock().unwrap_or_else(…into_inner…)` poison recovery: route \
                          through tgraph_dataflow::lock_unpoisoned, the single audited recovery \
                          point"
                    .to_string(),
            });
        }
    }

    if rules.lock_order {
        findings.extend(lock_order_findings(&lock_order_edges(file, src)));
    }

    findings
}

/// Byte-offset substring search starting at `from`.
fn find_from(haystack: &str, needle: &str, from: usize) -> Option<usize> {
    haystack.get(from..)?.find(needle).map(|p| p + from)
}

/// Like [`line_of`] but for byte offsets (ASCII-safe: masked text newlines
/// are preserved 1:1).
fn line_of_bytes(text: &str, offset: usize) -> usize {
    text.as_bytes()[..offset.min(text.len())]
        .iter()
        .filter(|&&b| b == b'\n')
        .count()
        + 1
}

/// Which rules apply to `path` (workspace-relative), or `None` if exempt.
fn rules_for(rel: &Path) -> Option<RuleSet> {
    let s = rel.to_string_lossy().replace('\\', "/");
    if !s.ends_with(".rs") {
        return None;
    }
    // Only library sources: crates/<name>/src/**, excluding bins and tests.
    let rest = s.strip_prefix("crates/")?;
    let (crate_name, in_crate) = rest.split_once('/')?;
    if !in_crate.starts_with("src/") || in_crate.starts_with("src/bin/") {
        return None;
    }
    if LIB_CRATES.contains(&crate_name) {
        let mut rules = RuleSet::all();
        // `with_partitioning` lives in (and is allowed inside) the dataflow
        // engine's own dataset/keyed modules.
        if crate_name == "dataflow" && (in_crate == "src/dataset.rs" || in_crate == "src/keyed.rs")
        {
            rules.no_raw_retag = false;
        }
        // The lock-order graph is scoped to LOCK_ORDER_FILES and unioned
        // cross-file by lint_workspace, not run per file.
        rules.lock_order = false;
        Some(rules)
    } else if HARNESS_CRATES.contains(&crate_name) {
        Some(RuleSet {
            no_unwrap: false,
            no_eager_collect: true,
            no_raw_retag: true,
            lock_order: false,
            condvar_wait_in_loop: true,
            no_blocking_in_reader: true,
            blocking_call_in_reactor: true,
            no_inline_poison_recovery: true,
        })
    } else {
        None
    }
}

/// Recursively collects `.rs` files under `dir`.
fn rust_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let entries = match std::fs::read_dir(dir) {
        Ok(e) => e,
        Err(_) => return,
    };
    let mut paths: Vec<PathBuf> = entries.flatten().map(|e| e.path()).collect();
    paths.sort();
    for p in paths {
        if p.is_dir() {
            let name = p.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if name == "target" || name.starts_with('.') {
                continue;
            }
            rust_files(&p, out);
        } else if p.extension().and_then(|e| e.to_str()) == Some("rs") {
            out.push(p);
        }
    }
}

/// Lints every in-scope source file under the workspace root, then checks
/// the cross-file lock-acquisition-order union over [`LOCK_ORDER_FILES`]:
/// each file contributes its acquisition edges, and a cycle anywhere in
/// the union — even spanning files — is a `lock-order` finding. Findings
/// use workspace-relative paths.
pub fn lint_workspace(root: &Path) -> Vec<Finding> {
    let mut files = Vec::new();
    rust_files(&root.join("crates"), &mut files);
    let mut findings = Vec::new();
    let mut lock_edges: Vec<LockEdge> = Vec::new();
    for path in files {
        let rel = path.strip_prefix(root).unwrap_or(&path).to_path_buf();
        let Some(rules) = rules_for(&rel) else {
            continue;
        };
        let Ok(src) = std::fs::read_to_string(&path) else {
            continue;
        };
        let rel_s = rel.to_string_lossy().replace('\\', "/");
        if LOCK_ORDER_FILES.contains(&rel_s.as_str()) {
            lock_edges.extend(lock_order_edges(&rel, &src));
        }
        findings.extend(lint_source(&rel, &src, rules));
    }
    findings.extend(lock_order_findings(&lock_edges));
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint(src: &str) -> Vec<Finding> {
        lint_source(Path::new("test.rs"), src, RuleSet::all())
    }

    #[test]
    fn flags_unwrap_and_expect() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n\
                   fn g(x: Option<u32>) -> u32 { x.expect(\"boom\") }\n";
        let f = lint(src);
        assert_eq!(f.len(), 2);
        assert!(f.iter().all(|f| f.rule == "no-unwrap"));
        assert_eq!(f[0].line, 1);
        assert_eq!(f[1].line, 2);
    }

    #[test]
    fn allow_marker_suppresses() {
        let src = "fn f(x: Option<u32>) -> u32 {\n\
                   // lint:allow(unwrap): invariant\n\
                   x.unwrap()\n\
                   }\n";
        assert!(lint(src).is_empty());
    }

    #[test]
    fn comments_strings_and_tests_are_ignored() {
        let src = "// x.unwrap() in a comment\n\
                   const S: &str = \"x.unwrap()\";\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                       fn t(x: Option<u32>) { x.unwrap(); }\n\
                   }\n";
        assert!(lint(src).is_empty());
    }

    #[test]
    fn flags_eager_collect_in_operator_closure() {
        let src = "fn f() {\n\
                   let out = big.flat_map(move |k| {\n\
                       small.collect(rt).into_iter().collect::<Vec<_>>()\n\
                   });\n\
                   }\n";
        let f = lint(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "no-eager-collect");
        assert_eq!(f[0].line, 3);
    }

    #[test]
    fn iterator_collect_and_toplevel_dataset_collect_are_fine() {
        let src = "fn f() {\n\
                   let v: Vec<u32> = it.map(|x| x + 1).collect();\n\
                   let w = dataset.collect(rt);\n\
                   let u = dataset.map(|x| *x).collect(&rt);\n\
                   }\n";
        // Line 4's collect is OUTSIDE the map's parens (method-chained after
        // them), so it is a legal top-level action.
        assert!(lint(src).is_empty(), "{:?}", lint(src));
    }

    #[test]
    fn flags_raw_retag() {
        let src = "fn f(d: Dataset<(u32, u32)>) {\n\
                   let t = d.with_partitioning(Partitioning::HashByKey { parts: 2 });\n\
                   }\n";
        let f = lint(src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "no-raw-retag");
    }

    #[test]
    fn rules_scope_by_path() {
        assert!(rules_for(Path::new("crates/storage/src/loader.rs")).is_some());
        assert!(rules_for(Path::new("crates/analyzer/src/bin/tgraph-lint.rs")).is_none());
        assert!(rules_for(Path::new("crates/dataflow/tests/dataflow_laziness.rs")).is_none());
        let bench = rules_for(Path::new("crates/bench/src/harness.rs")).unwrap();
        assert!(!bench.no_unwrap);
        assert!(bench.no_eager_collect);
        let ds = rules_for(Path::new("crates/dataflow/src/dataset.rs")).unwrap();
        assert!(!ds.no_raw_retag);
        assert!(ds.no_unwrap);
        assert!(rules_for(Path::new("crates/bench/src/main.rs")).is_some());
        assert!(rules_for(Path::new("DESIGN.md")).is_none());
    }

    #[test]
    fn raw_strings_are_masked() {
        let src = "const S: &str = r#\"x.unwrap() \"quoted\" \"#;\n";
        assert!(lint(src).is_empty());
    }

    #[test]
    fn seeded_violation_fixture_fails() {
        let fixture = include_str!("../tests/fixtures/seeded_violations.rs.txt");
        let f = lint_source(Path::new("crates/fake/src/lib.rs"), fixture, RuleSet::all());
        let rules: std::collections::HashSet<&str> = f.iter().map(|f| f.rule).collect();
        assert!(rules.contains("no-unwrap"), "{f:?}");
        assert!(rules.contains("no-eager-collect"), "{f:?}");
        assert!(rules.contains("no-raw-retag"), "{f:?}");
        assert!(rules.contains("condvar-wait-in-loop"), "{f:?}");
        assert!(rules.contains("no-blocking-in-reader"), "{f:?}");
        assert!(rules.contains("blocking-call-in-reactor"), "{f:?}");
        assert!(rules.contains("no-inline-poison-recovery"), "{f:?}");
        // The lint:allow(reactor)-marked call must NOT fire: exactly two
        // reactor findings (the sleep and the unmarked write_all).
        assert_eq!(
            f.iter()
                .filter(|f| f.rule == "blocking-call-in-reactor")
                .count(),
            2,
            "{f:?}"
        );
    }

    #[test]
    fn lock_order_fixture_has_a_cycle() {
        let fixture = include_str!("../tests/fixtures/lock_order_violation.rs.txt");
        let f = lint_source(Path::new("crates/fake/src/lib.rs"), fixture, RuleSet::all());
        assert!(
            f.iter().any(|f| f.rule == "lock-order"),
            "expected a lock-order cycle: {f:?}"
        );
    }

    #[test]
    fn condvar_wait_in_loop_passes_and_bare_wait_fails() {
        let ok = "fn ok(&self) {\n\
                  let mut g = lock_unpoisoned(&self.state);\n\
                  while !g.ready {\n\
                      g = self.cv.wait(g).unwrap_or_else(|e| e.into_inner());\n\
                  }\n\
                  }\n";
        let f = lint_source(Path::new("t.rs"), ok, RuleSet::all());
        assert!(!f.iter().any(|f| f.rule == "condvar-wait-in-loop"), "{f:?}");

        let bad = "fn bad(&self) {\n\
                   let g = lock_unpoisoned(&self.state);\n\
                   if !g.ready {\n\
                       let _ = self.cond.wait(g);\n\
                   }\n\
                   }\n";
        let f = lint_source(Path::new("t.rs"), bad, RuleSet::all());
        assert_eq!(
            f.iter()
                .filter(|f| f.rule == "condvar-wait-in-loop")
                .count(),
            1,
            "{f:?}"
        );
        assert_eq!(
            f.iter()
                .find(|f| f.rule == "condvar-wait-in-loop")
                .map(|f| f.line),
            Some(4)
        );
    }

    #[test]
    fn wait_while_and_non_condvar_waits_are_exempt() {
        let src = "fn f(&self) {\n\
                   let g = self.cv.wait_while(g, |s| !s.ready);\n\
                   let st = self.cv.wait_timeout_while(g, d, |s| !s.ready);\n\
                   child.wait();\n\
                   }\n";
        let f = lint_source(Path::new("t.rs"), src, RuleSet::all());
        assert!(!f.iter().any(|f| f.rule == "condvar-wait-in-loop"), "{f:?}");
    }

    #[test]
    fn blocking_reader_without_shutdown_check_fails() {
        let bad = "fn reader_loop(mut stream: TcpStream) {\n\
                   let mut buf = [0u8; 8];\n\
                   stream.read_exact(&mut buf);\n\
                   }\n";
        let f = lint_source(Path::new("t.rs"), bad, RuleSet::all());
        assert_eq!(
            f.iter()
                .filter(|f| f.rule == "no-blocking-in-reader")
                .count(),
            1,
            "{f:?}"
        );

        let ok = "fn reader_loop(mut stream: TcpStream, shutdown: Arc<AtomicBool>) {\n\
                  loop {\n\
                      if shutdown.load(Ordering::SeqCst) { return; }\n\
                      let mut buf = [0u8; 8];\n\
                      stream.read_exact(&mut buf);\n\
                  }\n\
                  }\n";
        let f = lint_source(Path::new("t.rs"), ok, RuleSet::all());
        assert!(
            !f.iter().any(|f| f.rule == "no-blocking-in-reader"),
            "{f:?}"
        );

        // Blocking outside a *_loop function is not this rule's business.
        let other = "fn read_header(mut stream: TcpStream) {\n\
                     let mut buf = [0u8; 8];\n\
                     stream.read_exact(&mut buf);\n\
                     }\n";
        let f = lint_source(Path::new("t.rs"), other, RuleSet::all());
        assert!(
            !f.iter().any(|f| f.rule == "no-blocking-in-reader"),
            "{f:?}"
        );
    }

    #[test]
    fn reactor_functions_must_not_block() {
        let bad = "fn reactor_event(conn: &mut Conn) {\n\
                   std::thread::sleep(Duration::from_millis(10));\n\
                   conn.stream.write_all(&conn.out);\n\
                   }\n";
        let f = lint_source(Path::new("t.rs"), bad, RuleSet::all());
        assert_eq!(
            f.iter()
                .filter(|f| f.rule == "blocking-call-in-reactor")
                .count(),
            2,
            "{f:?}"
        );

        // Nonblocking writes and poller waits are the blessed idiom; the
        // allow marker covers audited calls on nonblocking fds.
        let ok = "fn reactor_flush(conn: &mut Conn) -> bool {\n\
                  // lint:allow(reactor): fd is nonblocking, write returns WouldBlock\n\
                  match conn.stream.write(&conn.out) {\n\
                      Ok(_) => true,\n\
                      Err(_) => false,\n\
                  }\n\
                  }\n";
        let f = lint_source(Path::new("t.rs"), ok, RuleSet::all());
        assert!(
            !f.iter().any(|f| f.rule == "blocking-call-in-reactor"),
            "{f:?}"
        );

        // Blocking outside reactor functions is not this rule's business.
        let other = "fn dispatcher_loop(rx: Receiver<Job>) {\n\
                     while let Ok(job) = rx.recv() { run(job); }\n\
                     }\n";
        let f = lint_source(Path::new("t.rs"), other, RuleSet::all());
        assert!(
            !f.iter().any(|f| f.rule == "blocking-call-in-reactor"),
            "{f:?}"
        );
    }

    #[test]
    fn inline_poison_recovery_fails_but_helper_and_condvar_do_not() {
        let bad = "fn f(&self) {\n\
                   let g = self.inner.lock().unwrap_or_else(|e| e.into_inner());\n\
                   }\n";
        let f = lint_source(Path::new("t.rs"), bad, RuleSet::all());
        assert_eq!(
            f.iter()
                .filter(|f| f.rule == "no-inline-poison-recovery")
                .count(),
            1,
            "{f:?}"
        );

        // The condvar wait_timeout recovery idiom is NOT the lock idiom.
        let ok = "fn f(&self) {\n\
                  loop {\n\
                  let (g, _) = self.cv.wait_timeout(g, d).unwrap_or_else(|e| e.into_inner());\n\
                  }\n\
                  }\n";
        let f = lint_source(Path::new("t.rs"), ok, RuleSet::all());
        assert!(
            !f.iter().any(|f| f.rule == "no-inline-poison-recovery"),
            "{f:?}"
        );

        // The audited helper itself carries the allow marker.
        let helper = "pub fn lock_unpoisoned<T: ?Sized>(m: &Mutex<T>) -> MutexGuard<'_, T> {\n\
                      // lint:allow(poison): the single audited recovery point\n\
                      m.lock().unwrap_or_else(|e| e.into_inner())\n\
                      }\n";
        let f = lint_source(Path::new("t.rs"), helper, RuleSet::all());
        assert!(
            !f.iter().any(|f| f.rule == "no-inline-poison-recovery"),
            "{f:?}"
        );
    }

    #[test]
    fn lock_order_cycle_detected_and_consistent_order_passes() {
        let bad = "fn a(&self) {\n\
                   let g1 = self.alpha.lock();\n\
                   let g2 = self.beta.lock();\n\
                   }\n\
                   fn b(&self) {\n\
                   let g2 = self.beta.lock();\n\
                   let g1 = self.alpha.lock();\n\
                   }\n";
        let f = lock_order_findings(&lock_order_edges(Path::new("t.rs"), bad));
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("alpha -> beta -> alpha"), "{f:?}");

        let ok = "fn a(&self) {\n\
                  let g1 = self.alpha.lock();\n\
                  let g2 = self.beta.lock();\n\
                  }\n\
                  fn b(&self) {\n\
                  let g1 = self.alpha.lock();\n\
                  let g2 = self.beta.lock();\n\
                  }\n";
        let f = lock_order_findings(&lock_order_edges(Path::new("t.rs"), ok));
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn lock_order_respects_drop_and_statement_temporaries() {
        // Explicit drop releases the first guard before the second
        // acquisition: no edge, no cycle.
        let dropped = "fn a(&self) {\n\
                       let g1 = self.alpha.lock();\n\
                       drop(g1);\n\
                       let g2 = self.beta.lock();\n\
                       }\n\
                       fn b(&self) {\n\
                       let g2 = self.beta.lock();\n\
                       drop(g2);\n\
                       let g1 = self.alpha.lock();\n\
                       }\n";
        let edges = lock_order_edges(Path::new("t.rs"), dropped);
        assert!(edges.is_empty(), "{edges:?}");

        // A temporary guard lives to its statement's end only.
        let temp = "fn a(&self) {\n\
                    *self.alpha.lock() += 1;\n\
                    let g2 = self.beta.lock();\n\
                    }\n\
                    fn b(&self) {\n\
                    *self.beta.lock() += 1;\n\
                    let g1 = self.alpha.lock();\n\
                    }\n";
        let edges = lock_order_edges(Path::new("t.rs"), temp);
        assert!(edges.is_empty(), "{edges:?}");

        // lock_unpoisoned acquisitions participate in the graph.
        let helper = "fn a(&self) {\n\
                      let g1 = lock_unpoisoned(&self.alpha);\n\
                      let g2 = lock_unpoisoned(&self.beta);\n\
                      }\n\
                      fn b(&self) {\n\
                      let g2 = lock_unpoisoned(&self.beta);\n\
                      let g1 = lock_unpoisoned(&self.alpha);\n\
                      }\n";
        let f = lock_order_findings(&lock_order_edges(Path::new("t.rs"), helper));
        assert_eq!(f.len(), 1, "{f:?}");
    }

    #[test]
    fn cross_file_lock_order_union_finds_split_cycles() {
        let file_a = "fn a(&self) {\n\
                      let g1 = self.alpha.lock();\n\
                      let g2 = self.beta.lock();\n\
                      }\n";
        let file_b = "fn b(&self) {\n\
                      let g2 = self.beta.lock();\n\
                      let g1 = self.alpha.lock();\n\
                      }\n";
        let mut edges = lock_order_edges(Path::new("a.rs"), file_a);
        edges.extend(lock_order_edges(Path::new("b.rs"), file_b));
        let f = lock_order_findings(&edges);
        assert_eq!(f.len(), 1, "{f:?}");
        // Each file alone is acyclic.
        assert!(lock_order_findings(&lock_order_edges(Path::new("a.rs"), file_a)).is_empty());
        assert!(lock_order_findings(&lock_order_edges(Path::new("b.rs"), file_b)).is_empty());
    }
}
