//! Source-level lint rules for the tgraph workspace, run by the
//! `tgraph-lint` binary (`cargo run -p tgraph-analyze --bin tgraph-lint`).
//!
//! Three rules, all scoped to **library code** (test modules, `tests/`
//! directories, benches, and `src/bin/` drivers are exempt):
//!
//! * **`no-unwrap`** — no `unwrap()` / `expect()` on user-reachable paths in
//!   library crates. Engine-invariant sites may opt out with a
//!   `lint:allow(unwrap)` or `lint:allow(expect)` marker comment on the same
//!   or the preceding line, which doubles as an audit trail.
//! * **`no-eager-collect`** — no `Dataset::collect(rt)` inside operator
//!   closures (`map`, `filter`, `flat_map`, `map_partitions`, `map_values`,
//!   `fold`): collecting mid-operator defeats the lazy plan and runs a
//!   nested job per element. Iterator `collect()` (no runtime argument) is
//!   fine.
//! * **`no-raw-retag`** — no `with_partitioning(` outside the dataflow
//!   crate's `dataset.rs` / `keyed.rs`: partitioning claims must go through
//!   the audited elision machinery, never be stamped ad hoc.
//!
//! The linter works on masked source text: comments and string literals are
//! blanked (preserving line structure) and `#[cfg(test)]` blocks are
//! stripped before matching, so rules cannot fire on prose or test code.

use std::fmt;
use std::path::{Path, PathBuf};

/// Library crates subject to the lint rules. `bench` is a harness crate and
/// exempt from `no-unwrap` (its panics are operator-facing, not
/// user-reachable), but still subject to the dataflow-discipline rules.
const LIB_CRATES: &[&str] = &[
    "core", "dataflow", "repr", "storage", "datagen", "query", "analyzer", "server",
];

/// Crates linted for dataflow discipline (eager collect, raw retag) only.
const HARNESS_CRATES: &[&str] = &["bench"];

/// Operator entry points whose closure arguments must not call
/// `Dataset::collect(rt)`.
const OPERATOR_CALLS: &[&str] = &[
    ".map(",
    ".flat_map(",
    ".filter(",
    ".map_partitions(",
    ".map_values(",
    ".map_values_with_key(",
    ".fold(",
];

/// One lint finding.
#[derive(Clone, Debug)]
pub struct Finding {
    /// File the finding is in (workspace-relative when produced by
    /// [`lint_workspace`]).
    pub file: PathBuf,
    /// 1-based line number.
    pub line: usize,
    /// Rule code (`no-unwrap`, `no-eager-collect`, `no-raw-retag`).
    pub rule: &'static str,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file.display(),
            self.line,
            self.rule,
            self.message
        )
    }
}

/// Which rules apply to a file.
#[derive(Clone, Copy, Debug)]
pub struct RuleSet {
    /// Enforce `no-unwrap`.
    pub no_unwrap: bool,
    /// Enforce `no-eager-collect`.
    pub no_eager_collect: bool,
    /// Enforce `no-raw-retag`.
    pub no_raw_retag: bool,
}

impl RuleSet {
    /// All rules on.
    pub fn all() -> Self {
        RuleSet {
            no_unwrap: true,
            no_eager_collect: true,
            no_raw_retag: true,
        }
    }
}

/// Replaces comments, string literals, and char literals with spaces,
/// preserving line structure so findings keep accurate line numbers.
/// Handles line comments, (nested) block comments, escapes, and raw strings.
fn mask_source(src: &str) -> String {
    let b: Vec<char> = src.chars().collect();
    let mut out = String::with_capacity(src.len());
    let mut i = 0;
    let n = b.len();
    let blank = |c: char| if c == '\n' { '\n' } else { ' ' };
    while i < n {
        let c = b[i];
        if c == '/' && i + 1 < n && b[i + 1] == '/' {
            while i < n && b[i] != '\n' {
                out.push(' ');
                i += 1;
            }
        } else if c == '/' && i + 1 < n && b[i + 1] == '*' {
            let mut depth = 1;
            out.push(' ');
            out.push(' ');
            i += 2;
            while i < n && depth > 0 {
                if b[i] == '/' && i + 1 < n && b[i + 1] == '*' {
                    depth += 1;
                    out.push(' ');
                    out.push(' ');
                    i += 2;
                } else if b[i] == '*' && i + 1 < n && b[i + 1] == '/' {
                    depth -= 1;
                    out.push(' ');
                    out.push(' ');
                    i += 2;
                } else {
                    out.push(blank(b[i]));
                    i += 1;
                }
            }
        } else if c == 'r' && i + 1 < n && (b[i + 1] == '"' || b[i + 1] == '#') {
            // Raw string r"..." or r#"..."# (any hash depth).
            let start = i;
            let mut j = i + 1;
            let mut hashes = 0;
            while j < n && b[j] == '#' {
                hashes += 1;
                j += 1;
            }
            if j < n && b[j] == '"' {
                out.push(' ');
                for _ in 0..=hashes {
                    out.push(' ');
                }
                j += 1;
                // Scan for closing quote followed by `hashes` hashes.
                loop {
                    if j >= n {
                        break;
                    }
                    if b[j] == '"' {
                        let mut k = j + 1;
                        let mut h = 0;
                        while k < n && h < hashes && b[k] == '#' {
                            h += 1;
                            k += 1;
                        }
                        if h == hashes {
                            for _ in j..k {
                                out.push(' ');
                            }
                            j = k;
                            break;
                        }
                    }
                    out.push(blank(b[j]));
                    j += 1;
                }
                i = j;
            } else {
                // Not a raw string after all (e.g. `r#ident`).
                out.push(b[start]);
                i = start + 1;
            }
        } else if c == '"' {
            out.push(' ');
            i += 1;
            while i < n {
                if b[i] == '\\' && i + 1 < n {
                    out.push(' ');
                    out.push(blank(b[i + 1]));
                    i += 2;
                } else if b[i] == '"' {
                    out.push(' ');
                    i += 1;
                    break;
                } else {
                    out.push(blank(b[i]));
                    i += 1;
                }
            }
        } else if c == '\'' {
            // Char literal or lifetime. Treat as char literal only when it
            // closes within a few chars; otherwise it's a lifetime.
            let close = (i + 1..n.min(i + 5)).find(|&j| b[j] == '\'' && b[j - 1] != '\\');
            let close = match close {
                Some(j) => Some(j),
                None if i + 2 < n && b[i + 1] == '\\' => {
                    (i + 2..n.min(i + 6)).find(|&j| b[j] == '\'')
                }
                None => None,
            };
            if let Some(j) = close {
                for _ in i..=j {
                    out.push(' ');
                }
                i = j + 1;
            } else {
                out.push(c);
                i += 1;
            }
        } else {
            out.push(c);
            i += 1;
        }
    }
    out
}

/// Blanks every `#[cfg(test)] mod … { … }` (or any `#[cfg(test)]`-attributed
/// item with a brace block) in masked source.
fn strip_test_blocks(masked: &str) -> String {
    let mut text: Vec<char> = masked.chars().collect();
    let pat: Vec<char> = "#[cfg(test)]".chars().collect();
    let n = text.len();
    let mut i = 0;
    while i + pat.len() <= n {
        if text[i..i + pat.len()] == pat[..] {
            // Find the opening brace of the attributed item, then blank
            // through its matching close.
            let mut j = i + pat.len();
            while j < n && text[j] != '{' {
                j += 1;
            }
            let mut depth = 0;
            let start = i;
            while j < n {
                if text[j] == '{' {
                    depth += 1;
                } else if text[j] == '}' {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                j += 1;
            }
            let end = (j + 1).min(n);
            for c in text.iter_mut().take(end).skip(start) {
                if *c != '\n' {
                    *c = ' ';
                }
            }
            i = end;
        } else {
            i += 1;
        }
    }
    text.into_iter().collect()
}

/// Whether `raw` line `line` (or the line above) carries a
/// `lint:allow(<what>)` marker. Markers live in comments, so they are read
/// from the raw (unmasked) source.
fn allowed(raw_lines: &[&str], line: usize, what: &str) -> bool {
    let marker = format!("lint:allow({what})");
    let check = |l: usize| l >= 1 && l <= raw_lines.len() && raw_lines[l - 1].contains(&marker);
    check(line) || check(line.saturating_sub(1))
}

/// Spans (start, end) of the parenthesized argument lists of operator calls
/// in masked text — the regions where `Dataset::collect(rt)` is forbidden.
fn operator_closure_spans(masked: &str) -> Vec<(usize, usize)> {
    let bytes = masked.as_bytes();
    let mut spans = Vec::new();
    for pat in OPERATOR_CALLS {
        let mut start = 0;
        while let Some(pos) = find_from(masked, pat, start) {
            let open = pos + pat.len() - 1;
            let mut depth = 0i32;
            let mut j = open;
            while j < bytes.len() {
                match bytes[j] {
                    b'(' => depth += 1,
                    b')' => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
            spans.push((open, j.min(bytes.len())));
            start = open + 1;
        }
    }
    spans
}

/// Lints one source text. `file` is used for finding labels only.
pub fn lint_source(file: &Path, src: &str, rules: RuleSet) -> Vec<Finding> {
    let masked = strip_test_blocks(&mask_source(src));
    let raw_lines: Vec<&str> = src.lines().collect();
    let mut findings = Vec::new();

    if rules.no_unwrap {
        for pat in ["unwrap()", "expect("] {
            let what = if pat.starts_with("unwrap") {
                "unwrap"
            } else {
                "expect"
            };
            let mut start = 0;
            while let Some(pos) = find_from(&masked, pat, start) {
                start = pos + pat.len();
                // `.unwrap()` / `.expect(` method calls only.
                let prev = masked[..pos].chars().next_back();
                if prev != Some('.') {
                    continue;
                }
                let line = line_of_bytes(&masked, pos);
                if allowed(&raw_lines, line, what) {
                    continue;
                }
                findings.push(Finding {
                    file: file.to_path_buf(),
                    line,
                    rule: "no-unwrap",
                    message: format!(
                        ".{pat}…: library code must surface typed errors, not panic \
                         (add `// lint:allow({what}): <reason>` if this is an engine invariant)"
                    ),
                });
            }
        }
    }

    if rules.no_eager_collect {
        let spans = operator_closure_spans(&masked);
        let mut start = 0;
        while let Some(pos) = find_from(&masked, ".collect(", start) {
            start = pos + ".collect(".len();
            // An argument ⇒ Dataset::collect(rt); bare `.collect()` or
            // turbofished iterator collects have none.
            let after: String = masked[pos + ".collect(".len()..]
                .chars()
                .take_while(|c| c.is_whitespace())
                .collect();
            let next = masked[pos + ".collect(".len() + after.len()..]
                .chars()
                .next();
            if next == Some(')') || next.is_none() {
                continue;
            }
            if spans.iter().any(|&(s, e)| pos > s && pos < e) {
                let line = line_of_bytes(&masked, pos);
                if allowed(&raw_lines, line, "collect") {
                    continue;
                }
                findings.push(Finding {
                    file: file.to_path_buf(),
                    line,
                    rule: "no-eager-collect",
                    message: "Dataset::collect(rt) inside an operator closure runs a nested \
                              job per element; hoist the collect outside the operator \
                              (see broadcast_join) or restructure as a join"
                        .to_string(),
                });
            }
        }
    }

    if rules.no_raw_retag {
        let mut start = 0;
        while let Some(pos) = find_from(&masked, "with_partitioning(", start) {
            start = pos + "with_partitioning(".len();
            let line = line_of_bytes(&masked, pos);
            if allowed(&raw_lines, line, "retag") {
                continue;
            }
            findings.push(Finding {
                file: file.to_path_buf(),
                line,
                rule: "no-raw-retag",
                message: "partitioning tags must be established by the audited shuffle/elision \
                          machinery in dataflow's dataset.rs/keyed.rs, not stamped directly"
                    .to_string(),
            });
        }
    }

    findings
}

/// Byte-offset substring search starting at `from`.
fn find_from(haystack: &str, needle: &str, from: usize) -> Option<usize> {
    haystack.get(from..)?.find(needle).map(|p| p + from)
}

/// Like [`line_of`] but for byte offsets (ASCII-safe: masked text newlines
/// are preserved 1:1).
fn line_of_bytes(text: &str, offset: usize) -> usize {
    text.as_bytes()[..offset.min(text.len())]
        .iter()
        .filter(|&&b| b == b'\n')
        .count()
        + 1
}

/// Which rules apply to `path` (workspace-relative), or `None` if exempt.
fn rules_for(rel: &Path) -> Option<RuleSet> {
    let s = rel.to_string_lossy().replace('\\', "/");
    if !s.ends_with(".rs") {
        return None;
    }
    // Only library sources: crates/<name>/src/**, excluding bins and tests.
    let rest = s.strip_prefix("crates/")?;
    let (crate_name, in_crate) = rest.split_once('/')?;
    if !in_crate.starts_with("src/") || in_crate.starts_with("src/bin/") {
        return None;
    }
    if LIB_CRATES.contains(&crate_name) {
        let mut rules = RuleSet::all();
        // `with_partitioning` lives in (and is allowed inside) the dataflow
        // engine's own dataset/keyed modules.
        if crate_name == "dataflow" && (in_crate == "src/dataset.rs" || in_crate == "src/keyed.rs")
        {
            rules.no_raw_retag = false;
        }
        Some(rules)
    } else if HARNESS_CRATES.contains(&crate_name) {
        Some(RuleSet {
            no_unwrap: false,
            no_eager_collect: true,
            no_raw_retag: true,
        })
    } else {
        None
    }
}

/// Recursively collects `.rs` files under `dir`.
fn rust_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let entries = match std::fs::read_dir(dir) {
        Ok(e) => e,
        Err(_) => return,
    };
    let mut paths: Vec<PathBuf> = entries.flatten().map(|e| e.path()).collect();
    paths.sort();
    for p in paths {
        if p.is_dir() {
            let name = p.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if name == "target" || name.starts_with('.') {
                continue;
            }
            rust_files(&p, out);
        } else if p.extension().and_then(|e| e.to_str()) == Some("rs") {
            out.push(p);
        }
    }
}

/// Lints every in-scope source file under the workspace root. Findings use
/// workspace-relative paths.
pub fn lint_workspace(root: &Path) -> Vec<Finding> {
    let mut files = Vec::new();
    rust_files(&root.join("crates"), &mut files);
    let mut findings = Vec::new();
    for path in files {
        let rel = path.strip_prefix(root).unwrap_or(&path).to_path_buf();
        let Some(rules) = rules_for(&rel) else {
            continue;
        };
        let Ok(src) = std::fs::read_to_string(&path) else {
            continue;
        };
        findings.extend(lint_source(&rel, &src, rules));
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint(src: &str) -> Vec<Finding> {
        lint_source(Path::new("test.rs"), src, RuleSet::all())
    }

    #[test]
    fn flags_unwrap_and_expect() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n\
                   fn g(x: Option<u32>) -> u32 { x.expect(\"boom\") }\n";
        let f = lint(src);
        assert_eq!(f.len(), 2);
        assert!(f.iter().all(|f| f.rule == "no-unwrap"));
        assert_eq!(f[0].line, 1);
        assert_eq!(f[1].line, 2);
    }

    #[test]
    fn allow_marker_suppresses() {
        let src = "fn f(x: Option<u32>) -> u32 {\n\
                   // lint:allow(unwrap): invariant\n\
                   x.unwrap()\n\
                   }\n";
        assert!(lint(src).is_empty());
    }

    #[test]
    fn comments_strings_and_tests_are_ignored() {
        let src = "// x.unwrap() in a comment\n\
                   const S: &str = \"x.unwrap()\";\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                       fn t(x: Option<u32>) { x.unwrap(); }\n\
                   }\n";
        assert!(lint(src).is_empty());
    }

    #[test]
    fn flags_eager_collect_in_operator_closure() {
        let src = "fn f() {\n\
                   let out = big.flat_map(move |k| {\n\
                       small.collect(rt).into_iter().collect::<Vec<_>>()\n\
                   });\n\
                   }\n";
        let f = lint(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "no-eager-collect");
        assert_eq!(f[0].line, 3);
    }

    #[test]
    fn iterator_collect_and_toplevel_dataset_collect_are_fine() {
        let src = "fn f() {\n\
                   let v: Vec<u32> = it.map(|x| x + 1).collect();\n\
                   let w = dataset.collect(rt);\n\
                   let u = dataset.map(|x| *x).collect(&rt);\n\
                   }\n";
        // Line 4's collect is OUTSIDE the map's parens (method-chained after
        // them), so it is a legal top-level action.
        assert!(lint(src).is_empty(), "{:?}", lint(src));
    }

    #[test]
    fn flags_raw_retag() {
        let src = "fn f(d: Dataset<(u32, u32)>) {\n\
                   let t = d.with_partitioning(Partitioning::HashByKey { parts: 2 });\n\
                   }\n";
        let f = lint(src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "no-raw-retag");
    }

    #[test]
    fn rules_scope_by_path() {
        assert!(rules_for(Path::new("crates/storage/src/loader.rs")).is_some());
        assert!(rules_for(Path::new("crates/analyzer/src/bin/tgraph-lint.rs")).is_none());
        assert!(rules_for(Path::new("crates/dataflow/tests/dataflow_laziness.rs")).is_none());
        let bench = rules_for(Path::new("crates/bench/src/harness.rs")).unwrap();
        assert!(!bench.no_unwrap);
        assert!(bench.no_eager_collect);
        let ds = rules_for(Path::new("crates/dataflow/src/dataset.rs")).unwrap();
        assert!(!ds.no_raw_retag);
        assert!(ds.no_unwrap);
        assert!(rules_for(Path::new("crates/bench/src/main.rs")).is_some());
        assert!(rules_for(Path::new("DESIGN.md")).is_none());
    }

    #[test]
    fn raw_strings_are_masked() {
        let src = "const S: &str = r#\"x.unwrap() \"quoted\" \"#;\n";
        assert!(lint(src).is_empty());
    }

    #[test]
    fn seeded_violation_fixture_fails() {
        let fixture = include_str!("../tests/fixtures/seeded_violations.rs.txt");
        let f = lint_source(Path::new("crates/fake/src/lib.rs"), fixture, RuleSet::all());
        let rules: std::collections::HashSet<&str> = f.iter().map(|f| f.rule).collect();
        assert!(rules.contains("no-unwrap"), "{f:?}");
        assert!(rules.contains("no-eager-collect"), "{f:?}");
        assert!(rules.contains("no-raw-retag"), "{f:?}");
    }
}
